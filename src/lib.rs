//! # beas — Data Driven Approximation with Bounded Resources
//!
//! A from-scratch Rust implementation of **BEAS** (Cao & Fan, *Data Driven
//! Approximation with Bounded Resources*, VLDB 2017): resource-bounded
//! (approximate) query answering over relational data with a deterministic
//! accuracy lower bound.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`relal`] — the relational substrate (values, schemas, RA, evaluation);
//! * [`access`] — access schemas: templates, constraints, K-D tree indices,
//!   typed resource specs, budget-enforcing fetch;
//! * [`core`] — the session-oriented BEAS engine (builder, planner, executor,
//!   prepared queries, incremental maintenance) and the RC accuracy measure;
//! * [`slo`] — accuracy-SLO serving: online η-vs-budget curve learning
//!   ([`CurveStore`](slo::CurveStore)) and the accuracy-denominated request
//!   vocabulary ([`AccuracyTarget`](slo::AccuracyTarget)), backing
//!   [`Beas::answer_with_target`](core::Beas::answer_with_target) — ask for
//!   `eta:0.95` instead of a budget and the planner picks the cheapest
//!   budget predicted to reach it, escalating (never over-promising) when
//!   the prediction falls short;
//! * [`serve`] — the multi-tenant network serving front-end: a std-only
//!   HTTP/1.1 server exposing the engine over a JSON wire protocol, with
//!   per-tenant budget-aware admission control (token buckets in budget
//!   tuples per second, in-flight caps, bounded queues → `429` +
//!   `Retry-After`);
//! * [`cluster`] — distributed bounded execution: a coordinator plus shard
//!   nodes with budget-proportional scatter-gather, whose answers are
//!   bit-for-bit equal to a single node at the same total budget — served
//!   in-process or over TCP with deadlines, retries and η-degraded partial
//!   answers when shards die;
//! * [`baselines`] — uniform sampling, histograms and BlinkDB-style stratified
//!   sampling, for comparison;
//! * [`workloads`] — synthetic TPCH/AIRCA/TFACC-like datasets and a random
//!   query workload generator.
//!
//! The engine API follows the paper's offline/online split (Fig. 2) as a
//! session lifecycle, and the engine is `Send + Sync` — share it across
//! threads, readers run on immutable snapshots and are never blocked by
//! writers (see the `beas-core` docs for the concurrency model):
//!
//! 1. **Build** (C1): [`Beas::builder`](core::Beas::builder) takes ownership of the database,
//!    registers access constraints and produces the engine with its indices,
//!    built in parallel across `BeasBuilder::num_threads` cores with
//!    bit-identical results.
//! 2. **Maintain** (C2): [`Beas::insert_row`](core::Beas::insert_row) / [`Beas::apply_update`](core::Beas::apply_update)
//!    (both `&self`) propagate inserts into every index incrementally — no
//!    rebuild — and publish the result with one atomic snapshot swap.
//! 3. **Prepare + answer** (C3/C4): [`Beas::prepare`](core::Beas::prepare) validates a query once
//!    and caches one bounded plan per budget, so answering again at a
//!    repeated [`ResourceSpec`](access::ResourceSpec) skips planning and goes straight to bounded
//!    execution, sharded across the engine's threads deterministically.
//!
//! The most convenient entry point is [`prelude`]:
//!
//! ```
//! use beas::prelude::*;
//!
//! // build a small database
//! let schema = DatabaseSchema::new(vec![RelationSchema::new(
//!     "poi",
//!     vec![Attribute::categorical("type"), Attribute::text("city"), Attribute::double("price")],
//! )]);
//! let mut db = Database::new(schema);
//! for i in 0..200i64 {
//!     db.insert_row("poi", vec![
//!         Value::from(if i % 2 == 0 { "hotel" } else { "museum" }),
//!         Value::from(if i % 5 == 0 { "NYC" } else { "LA" }),
//!         Value::Double(40.0 + (i % 120) as f64),
//!     ]).unwrap();
//! }
//!
//! // offline (C1): the engine owns the database and its access schema
//! let engine = Beas::builder(db)
//!     .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
//!     .build()
//!     .unwrap();
//!
//! let mut q = SpcQueryBuilder::new(engine.schema());
//! let h = q.atom("poi", "h").unwrap();
//! q.bind_const(h, "type", "hotel").unwrap();
//! q.bind_const(h, "city", "NYC").unwrap();
//! q.output(h, "price", "price").unwrap();
//! let query: BeasQuery = q.build().unwrap().into();
//!
//! // online (C3 + C4): prepare once, answer under typed resource specs;
//! // repeated budgets reuse the cached plan
//! let spec = ResourceSpec::Ratio(0.1);
//! {
//!     let prepared = engine.prepare(&query).unwrap();
//!     let answer = prepared.answer(spec).unwrap();
//!     assert!(answer.accessed <= engine.catalog().budget(&spec).unwrap());
//!     assert!(answer.eta > 0.0);
//!     prepared.answer(spec).unwrap();
//!     assert_eq!(prepared.cached_plans(), 1);
//! }
//!
//! // maintenance (C2): inserts flow into the indices without a rebuild
//! engine.insert_row("poi", vec![
//!     Value::from("hotel"), Value::from("NYC"), Value::Double(55.0),
//! ]).unwrap();
//! let after = engine.answer(&query, ResourceSpec::FULL).unwrap();
//! assert!(after.answers.rows().any(|r| r == vec![Value::Double(55.0)]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use beas_access as access;
pub use beas_baselines as baselines;
pub use beas_cluster as cluster;
pub use beas_core as core;
pub use beas_relal as relal;
pub use beas_serve as serve;
pub use beas_slo as slo;
pub use beas_workloads as workloads;

/// Commonly used items from across the workspace.
pub mod prelude {
    pub use beas_access::{
        build_at, build_at_threaded, build_constraint, build_extended, build_extended_threaded,
        AtOptions, BudgetPolicy, Catalog, FetchSession, ResourceSpec,
    };
    pub use beas_baselines::{Baseline, BlinkSim, Histo, Sampl};
    pub use beas_cluster::{
        ClusterBuilder, ClusterHandle, ClusterMetrics, ClusterSession, ClusterStep, DegradedPolicy,
        FaultInjectingTransport, FaultRates, InProcessTransport, OutageReport, RetryPolicy,
        ShardOutage, ShardServer, ShardTransport, TcpShardTransport,
    };
    pub use beas_core::{
        exact_answers, f_measure, mac_accuracy, rc_accuracy, AccuracyConfig, AggQuery,
        AnswerSession, Beas, BeasAnswer, BeasBuilder, BeasQuery, BoundedPlan, ConstraintSpec,
        EngineSnapshot, EngineStats, ExecOptions, Planner, PreparedQuery, QueryFingerprint,
        RaQuery, RefinementSchedule, RefinementStep, ServeHandle, StoreOptions, TargetedAnswer,
        UpdateBatch,
    };
    pub use beas_relal::{
        aggregate_relation, AggFunc, Attribute, Column, CompareOp, Database, DatabaseSchema,
        DistanceKind, GroupByQuery, Predicate, PredicateAtom, RaExpr, Relation, RelationSchema,
        SpcQuery, SpcQueryBuilder, StrDict, Value,
    };
    pub use beas_serve::{serve, RunningServer, ServeConfig, TenantPolicy};
    pub use beas_slo::{AccuracyTarget, CurveStore, SloCounters, SloPrior};
    pub use beas_workloads::{
        airca::airca_lite,
        querygen::{generate_workload, QueryGenConfig},
        tfacc::tfacc_lite,
        tpch::tpch_lite,
        Dataset,
    };
}
