//! # beas — Data Driven Approximation with Bounded Resources
//!
//! A from-scratch Rust implementation of **BEAS** (Cao & Fan, *Data Driven
//! Approximation with Bounded Resources*, VLDB 2017): resource-bounded
//! (approximate) query answering over relational data with a deterministic
//! accuracy lower bound.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`relal`] — the relational substrate (values, schemas, RA, evaluation);
//! * [`access`] — access schemas: templates, constraints, K-D tree indices,
//!   budget-enforcing fetch;
//! * [`core`] — the BEAS planner/executor/engine and the RC accuracy measure;
//! * [`baselines`] — uniform sampling, histograms and BlinkDB-style stratified
//!   sampling, for comparison;
//! * [`workloads`] — synthetic TPCH/AIRCA/TFACC-like datasets and a random
//!   query workload generator.
//!
//! The most convenient entry point is [`prelude`]:
//!
//! ```
//! use beas::prelude::*;
//!
//! // build a small database
//! let schema = DatabaseSchema::new(vec![RelationSchema::new(
//!     "poi",
//!     vec![Attribute::categorical("type"), Attribute::text("city"), Attribute::double("price")],
//! )]);
//! let mut db = Database::new(schema);
//! for i in 0..200i64 {
//!     db.insert_row("poi", vec![
//!         Value::from(if i % 2 == 0 { "hotel" } else { "museum" }),
//!         Value::from(if i % 5 == 0 { "NYC" } else { "LA" }),
//!         Value::Double(40.0 + (i % 120) as f64),
//!     ]).unwrap();
//! }
//!
//! // offline: access schema; online: bounded answering
//! let engine = Beas::build(&db, &[ConstraintSpec::new("poi", &["type", "city"], &["price"])]).unwrap();
//! let mut q = SpcQueryBuilder::new(&db.schema);
//! let h = q.atom("poi", "h").unwrap();
//! q.bind_const(h, "type", "hotel").unwrap();
//! q.bind_const(h, "city", "NYC").unwrap();
//! q.output(h, "price", "price").unwrap();
//! let query: BeasQuery = q.build().unwrap().into();
//!
//! let answer = engine.answer(&query, 0.1).unwrap();
//! assert!(answer.accessed <= engine.catalog().budget_for(0.1));
//! assert!(answer.eta > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use beas_access as access;
pub use beas_baselines as baselines;
pub use beas_core as core;
pub use beas_relal as relal;
pub use beas_workloads as workloads;

/// Commonly used items from across the workspace.
pub mod prelude {
    pub use beas_access::{build_at, build_constraint, build_extended, AtOptions, Catalog, FetchSession};
    pub use beas_baselines::{Baseline, BlinkSim, Histo, Sampl};
    pub use beas_core::{
        exact_answers, f_measure, mac_accuracy, rc_accuracy, AccuracyConfig, AggQuery, Beas,
        BeasAnswer, BeasQuery, BoundedPlan, ConstraintSpec, Planner, RaQuery,
    };
    pub use beas_relal::{
        AggFunc, Attribute, CompareOp, Database, DatabaseSchema, DistanceKind, Relation,
        RelationSchema, SpcQuery, SpcQueryBuilder, Value,
    };
    pub use beas_workloads::{
        airca::airca_lite,
        querygen::{generate_workload, QueryGenConfig},
        tfacc::tfacc_lite,
        tpch::tpch_lite,
        Dataset,
    };
}
