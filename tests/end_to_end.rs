//! Cross-crate integration tests: the full BEAS pipeline (dataset → access
//! schema → planning → bounded execution → accuracy measurement) over the
//! synthetic workloads, checking the guarantees the paper states.

use beas::prelude::*;

/// Prepares a small TPCH-lite instance with its engine and workload.
fn prepared() -> (Dataset, Beas, Vec<beas::workloads::querygen::GeneratedQuery>) {
    let dataset = tpch_lite(1, 42);
    let engine = Beas::build(&dataset.db, &dataset.constraints).expect("catalog");
    let queries = generate_workload(
        &dataset,
        &QueryGenConfig {
            count: 8,
            seed: 9,
            ..QueryGenConfig::default()
        },
    );
    assert!(!queries.is_empty());
    (dataset, engine, queries)
}

#[test]
fn bounded_answers_respect_budget_and_eta_across_the_workload() {
    let (dataset, engine, queries) = prepared();
    let cfg = AccuracyConfig {
        relax_grid: 3,
        fallback_cap: 1000.0,
    };
    for alpha in [0.02, 0.1] {
        let budget = engine.catalog().budget_for(alpha);
        for gq in &queries {
            let answer = match engine.answer(&gq.query, alpha) {
                Ok(a) => a,
                Err(e) => panic!("answering failed at alpha {alpha}: {e}"),
            };
            assert!(
                answer.accessed <= budget,
                "accessed {} tuples with budget {budget}",
                answer.accessed
            );
            let measured = rc_accuracy(&answer.answers, &gq.query, &dataset.db, &cfg)
                .expect("accuracy computation");
            assert!(
                measured.accuracy + 1e-9 >= answer.eta,
                "measured RC accuracy {} below promised eta {}",
                measured.accuracy,
                answer.eta
            );
        }
    }
}

#[test]
fn full_ratio_reproduces_exact_answers_for_every_query() {
    let (dataset, engine, queries) = prepared();
    for gq in &queries {
        let answer = engine.answer(&gq.query, 1.0).expect("answer at alpha = 1");
        if !answer.exact {
            // even when the planner cannot prove exactness, the answers must
            // still respect the eta bound; skip the strict comparison
            continue;
        }
        let exact = exact_answers(&gq.query, &dataset.db).expect("ground truth");
        assert_eq!(
            answer.answers.clone().sorted(),
            exact.sorted(),
            "exact plan produced different answers"
        );
    }
}

#[test]
fn eta_is_monotone_in_alpha_for_every_query() {
    let (_dataset, engine, queries) = prepared();
    for gq in &queries {
        let mut last = -1.0f64;
        for alpha in [0.01, 0.05, 0.2, 1.0] {
            let plan = engine.plan(&gq.query, alpha).expect("plan");
            assert!(
                plan.eta + 1e-12 >= last,
                "eta decreased from {last} to {} at alpha {alpha}",
                plan.eta
            );
            last = plan.eta;
        }
    }
}

#[test]
fn planning_never_touches_more_than_the_declared_tariff() {
    let (_dataset, engine, queries) = prepared();
    for gq in &queries {
        let plan = engine.plan(&gq.query, 0.1).expect("plan");
        let outcome = engine.execute(&plan).expect("execute");
        assert!(
            outcome.accessed <= plan.tariff,
            "executed accesses {} exceed the estimated tariff {}",
            outcome.accessed,
            plan.tariff
        );
    }
}

#[test]
fn beas_beats_uniform_sampling_on_selective_queries() {
    // the headline comparison of Exp-1, on a deliberately selective query
    let dataset = tpch_lite(2, 11);
    let engine = Beas::build(&dataset.db, &dataset.constraints).expect("catalog");

    let mut b = SpcQueryBuilder::new(&dataset.db.schema);
    let o = b.atom("orders", "o").unwrap();
    b.filter_const(o, "o_status", CompareOp::Eq, "O").unwrap();
    b.filter_const(o, "o_year", CompareOp::Eq, 1995i64).unwrap();
    b.filter_const(o, "o_totalprice", CompareOp::Le, 20000i64).unwrap();
    b.output(o, "o_year", "year").unwrap();
    b.output(o, "o_totalprice", "total").unwrap();
    let query: BeasQuery = b.build().unwrap().into();

    let cfg = AccuracyConfig::default();
    let alpha = 0.03;
    let budget = engine.catalog().budget_for(alpha);

    let beas_answer = engine.answer(&query, alpha).expect("beas answer");
    let beas_rc = rc_accuracy(&beas_answer.answers, &query, &dataset.db, &cfg)
        .unwrap()
        .accuracy;

    let sampl = Sampl::build(&dataset.db, budget, 3).expect("sample");
    let sampl_answer = sampl
        .answer(&query.to_query_expr(&dataset.db.schema).unwrap())
        .expect("sampl answer");
    let sampl_rc = rc_accuracy(&sampl_answer, &query, &dataset.db, &cfg)
        .unwrap()
        .accuracy;

    assert!(
        beas_rc >= sampl_rc,
        "BEAS RC {beas_rc} should not be below uniform sampling RC {sampl_rc} on a selective query"
    );
    assert!(beas_rc > 0.5, "BEAS should be accurate here, got {beas_rc}");
}

#[test]
fn index_sizes_stay_within_a_small_multiple_of_the_data() {
    for dataset in [tpch_lite(1, 5), tfacc_lite(1, 5), airca_lite(1, 5)] {
        let engine = Beas::build(&dataset.db, &dataset.constraints).expect("catalog");
        let report = engine.catalog().index_size_report();
        let ratio = report.total_ratio();
        assert!(
            ratio > 0.0 && ratio < 15.0,
            "index ratio {ratio} for {} outside the expected range",
            dataset.name
        );
        assert!(report.constraint_ratio() <= ratio);
    }
}

#[test]
fn exact_ratio_shrinks_relative_to_growing_data() {
    // Exp-3: as |D| grows, the fraction needed for exact answers shrinks
    let mut b_small = None;
    let mut b_large = None;
    for (scale, slot) in [(1usize, &mut b_small), (4usize, &mut b_large)] {
        let dataset = tpch_lite(scale, 21);
        let engine = Beas::build(&dataset.db, &dataset.constraints).expect("catalog");
        let mut q = SpcQueryBuilder::new(&dataset.db.schema);
        let c = q.atom("customer", "c").unwrap();
        let o = q.atom("orders", "o").unwrap();
        q.join((o, "o_custkey"), (c, "c_custkey")).unwrap();
        q.filter_const(c, "c_custkey", CompareOp::Eq, 7i64).unwrap();
        q.output(o, "o_totalprice", "total").unwrap();
        q.output(o, "o_year", "year").unwrap();
        let query: BeasQuery = q.build().unwrap().into();
        *slot = engine.exact_ratio(&query).expect("exact ratio");
    }
    let (small, large) = (b_small.unwrap(), b_large.unwrap());
    assert!(
        large <= small + 1e-9,
        "alpha_exact should not grow with |D|: small = {small}, large = {large}"
    );
}
