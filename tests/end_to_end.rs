//! Cross-crate integration tests: the full BEAS pipeline (dataset → access
//! schema → planning → bounded execution → accuracy measurement) over the
//! synthetic workloads, checking the guarantees the paper states.

use beas::prelude::*;

/// Prepares a small TPCH-lite instance with its engine and workload.
fn prepared() -> (Beas, Vec<beas::workloads::querygen::GeneratedQuery>) {
    let dataset = tpch_lite(1, 42);
    let queries = generate_workload(
        &dataset,
        &QueryGenConfig {
            count: 8,
            seed: 9,
            ..QueryGenConfig::default()
        },
    );
    assert!(!queries.is_empty());
    let engine = Beas::builder(dataset.db)
        .constraints(dataset.constraints)
        .build()
        .expect("catalog");
    (engine, queries)
}

#[test]
fn bounded_answers_respect_budget_and_eta_across_the_workload() {
    let (engine, queries) = prepared();
    let cfg = AccuracyConfig {
        relax_grid: 3,
        fallback_cap: 1000.0,
    };
    for alpha in [0.02, 0.1] {
        let spec = ResourceSpec::ratio(alpha).expect("valid ratio");
        let budget = engine.catalog().budget(&spec).expect("budget");
        for gq in &queries {
            let answer = match engine.answer(&gq.query, spec) {
                Ok(a) => a,
                Err(e) => panic!("answering failed at alpha {alpha}: {e}"),
            };
            // when the budget is below one tuple per relation atom, the plan
            // of last resort may estimate slightly more and its own tariff is
            // enforced instead (see `execute_plan`); the bound is the max
            assert!(
                answer.accessed <= budget.max(answer.planned_tariff),
                "accessed {} tuples with budget {budget} (tariff {})",
                answer.accessed,
                answer.planned_tariff
            );
            let measured = engine
                .accuracy(&answer.answers, &gq.query, &cfg)
                .expect("accuracy computation");
            assert!(
                measured.accuracy + 1e-9 >= answer.eta,
                "measured RC accuracy {} below promised eta {}",
                measured.accuracy,
                answer.eta
            );
        }
    }
}

#[test]
fn full_ratio_reproduces_exact_answers_for_every_query() {
    let (engine, queries) = prepared();
    for gq in &queries {
        let answer = engine
            .answer(&gq.query, ResourceSpec::FULL)
            .expect("answer at alpha = 1");
        if !answer.exact {
            // even when the planner cannot prove exactness, the answers must
            // still respect the eta bound; skip the strict comparison
            continue;
        }
        let exact = engine.exact_answers(&gq.query).expect("ground truth");
        assert_eq!(
            answer.answers.clone().sorted(),
            exact.sorted(),
            "exact plan produced different answers"
        );
    }
}

#[test]
fn eta_is_monotone_in_alpha_for_every_query() {
    let (engine, queries) = prepared();
    for gq in &queries {
        let mut last = -1.0f64;
        for alpha in [0.01, 0.05, 0.2, 1.0] {
            let plan = engine
                .plan(&gq.query, ResourceSpec::Ratio(alpha))
                .expect("plan");
            assert!(
                plan.eta + 1e-12 >= last,
                "eta decreased from {last} to {} at alpha {alpha}",
                plan.eta
            );
            last = plan.eta;
        }
    }
}

#[test]
fn planning_never_touches_more_than_the_declared_tariff() {
    let (engine, queries) = prepared();
    for gq in &queries {
        let plan = engine
            .plan(&gq.query, ResourceSpec::Ratio(0.1))
            .expect("plan");
        let outcome = engine.execute(&plan).expect("execute");
        assert!(
            outcome.accessed <= plan.tariff,
            "executed accesses {} exceed the estimated tariff {}",
            outcome.accessed,
            plan.tariff
        );
    }
}

#[test]
fn prepared_queries_reuse_plans_across_the_workload() {
    let (engine, queries) = prepared();
    let spec = ResourceSpec::Ratio(0.1);
    for gq in &queries {
        let prepared = engine.prepare(&gq.query).expect("prepare");
        let direct = engine.answer(&gq.query, spec).expect("direct answer");
        let first = prepared.answer(spec).expect("prepared answer");
        let second = prepared.answer(spec).expect("cached answer");
        assert_eq!(
            prepared.cached_plans(),
            1,
            "one budget must produce exactly one cached plan"
        );
        assert_eq!(
            direct.answers.clone().sorted(),
            first.answers.clone().sorted()
        );
        assert_eq!(
            first.answers.clone().sorted(),
            second.answers.clone().sorted()
        );
        assert_eq!(first.eta, second.eta);
    }
}

#[test]
fn inserts_after_build_keep_serving_without_a_rebuild() {
    // C2 end to end: build once, insert a season of new orders through the
    // incremental path, and check bounded answering stays consistent with a
    // freshly rebuilt engine over the same data.
    let dataset = tpch_lite(1, 42);
    let constraints = dataset.constraints.clone();
    let engine = Beas::builder(dataset.db)
        .constraints(constraints.clone())
        .build()
        .expect("catalog");
    let before = engine.database().total_tuples();

    for i in 0..40i64 {
        engine
            .insert_row(
                "orders",
                vec![
                    Value::Int(100_000 + i),
                    Value::Int(7), // customer 7 gets all the new orders
                    Value::from("O"),
                    Value::Double(100.0 + i as f64),
                    Value::Int(1997),
                    Value::from("1-URGENT"),
                ],
            )
            .expect("incremental insert");
    }
    assert_eq!(engine.database().total_tuples(), before + 40);
    assert_eq!(engine.catalog().db_size, before + 40);

    // customer 7's orders — the inserted rows must be visible
    let query: BeasQuery = {
        let mut b = SpcQueryBuilder::new(engine.schema());
        let o = b.atom("orders", "o").unwrap();
        b.filter_const(o, "o_custkey", CompareOp::Eq, 7i64).unwrap();
        b.output(o, "o_orderkey", "key").unwrap();
        b.output(o, "o_totalprice", "total").unwrap();
        b.build().unwrap().into()
    };
    let incremental = engine.answer(&query, ResourceSpec::FULL).expect("answer");
    let truth = engine.exact_answers(&query).expect("truth");
    assert!(incremental.answers.len() >= 40);
    assert_eq!(incremental.answers.clone().sorted(), truth.clone().sorted());

    // a freshly rebuilt engine over the same (updated) data agrees
    let rebuilt = Beas::builder(engine.database_arc())
        .constraints(constraints)
        .build()
        .expect("rebuild");
    let fresh = rebuilt.answer(&query, ResourceSpec::FULL).expect("answer");
    assert_eq!(
        incremental.answers.clone().sorted(),
        fresh.answers.clone().sorted()
    );

    // budgets derived from the grown |D| keep being enforced
    let spec = ResourceSpec::Ratio(0.05);
    let approx = engine.answer(&query, spec).expect("bounded answer");
    assert!(approx.accessed <= engine.catalog().budget(&spec).unwrap());
}

#[test]
fn beas_beats_uniform_sampling_on_selective_queries() {
    // the headline comparison of Exp-1, on a deliberately selective query
    let dataset = tpch_lite(2, 11);
    let engine = Beas::builder(dataset.db)
        .constraints(dataset.constraints)
        .build()
        .expect("catalog");
    let db = engine.database();

    let mut b = SpcQueryBuilder::new(&db.schema);
    let o = b.atom("orders", "o").unwrap();
    b.filter_const(o, "o_status", CompareOp::Eq, "O").unwrap();
    b.filter_const(o, "o_year", CompareOp::Eq, 1995i64).unwrap();
    b.filter_const(o, "o_totalprice", CompareOp::Le, 20000i64)
        .unwrap();
    b.output(o, "o_year", "year").unwrap();
    b.output(o, "o_totalprice", "total").unwrap();
    let query: BeasQuery = b.build().unwrap().into();

    let cfg = AccuracyConfig::default();
    let spec = ResourceSpec::Ratio(0.03);

    let beas_answer = engine.answer(&query, spec).expect("beas answer");
    let beas_rc = engine
        .accuracy(&beas_answer.answers, &query, &cfg)
        .unwrap()
        .accuracy;

    let sampl = Sampl::build(&db, &spec, 3).expect("sample");
    let sampl_answer = sampl
        .answer(&query.to_query_expr(&db.schema).unwrap())
        .expect("sampl answer");
    let sampl_rc = rc_accuracy(&sampl_answer, &query, &db, &cfg)
        .unwrap()
        .accuracy;

    assert!(
        beas_rc >= sampl_rc,
        "BEAS RC {beas_rc} should not be below uniform sampling RC {sampl_rc} on a selective query"
    );
    assert!(beas_rc > 0.5, "BEAS should be accurate here, got {beas_rc}");
}

#[test]
fn index_sizes_stay_within_a_small_multiple_of_the_data() {
    for dataset in [tpch_lite(1, 5), tfacc_lite(1, 5), airca_lite(1, 5)] {
        let name = dataset.name.clone();
        let engine = Beas::builder(dataset.db)
            .constraints(dataset.constraints)
            .build()
            .expect("catalog");
        let report = engine.catalog().index_size_report();
        let ratio = report.total_ratio();
        assert!(
            ratio > 0.0 && ratio < 15.0,
            "index ratio {ratio} for {name} outside the expected range"
        );
        assert!(report.constraint_ratio() <= ratio);
    }
}

#[test]
fn exact_ratio_shrinks_relative_to_growing_data() {
    // Exp-3: as |D| grows, the fraction needed for exact answers shrinks
    let mut b_small = None;
    let mut b_large = None;
    for (scale, slot) in [(1usize, &mut b_small), (4usize, &mut b_large)] {
        let dataset = tpch_lite(scale, 21);
        let engine = Beas::builder(dataset.db)
            .constraints(dataset.constraints)
            .build()
            .expect("catalog");
        let mut q = SpcQueryBuilder::new(engine.schema());
        let c = q.atom("customer", "c").unwrap();
        let o = q.atom("orders", "o").unwrap();
        q.join((o, "o_custkey"), (c, "c_custkey")).unwrap();
        q.filter_const(c, "c_custkey", CompareOp::Eq, 7i64).unwrap();
        q.output(o, "o_totalprice", "total").unwrap();
        q.output(o, "o_year", "year").unwrap();
        let query: BeasQuery = q.build().unwrap().into();
        *slot = engine.exact_ratio(&query).expect("exact ratio");
    }
    let (small, large) = (b_small.unwrap(), b_large.unwrap());
    assert!(
        large <= small + 1e-9,
        "alpha_exact should not grow with |D|: small = {small}, large = {large}"
    );
}
