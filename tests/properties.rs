//! Property-based tests of the core invariants, across crates:
//!
//! * index conformance (`D |= ψ`): every tuple is within the level resolution
//!   of some representative, at every level;
//! * the resource bound: executed plans never access more than the budget the
//!   spec resolves to;
//! * the accuracy guarantee: the measured RC accuracy is never below the
//!   reported η;
//! * monotonicity of η in α;
//! * component C2: engines maintained incrementally under random insert
//!   batches agree with freshly rebuilt engines and keep every bound;
//! * total order / hashing consistency of values.
//!
//! The cases are driven by a seeded in-workspace PRNG (the environment has no
//! registry access for `proptest`); every failure message carries the seed, so
//! a failing case replays deterministically.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use beas::access::{
    build_extended, build_extended_threaded, multilevel_partition, multilevel_partition_threaded,
};
use beas::prelude::*;
use rand::prelude::*;

/// Runs `case` for `cases` different seeds (the workspace's stand-in for a
/// proptest runner).
fn forall_seeds(cases: u64, mut case: impl FnMut(u64, &mut StdRng)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xBEA5_0000 + seed);
        case(seed, &mut rng);
    }
}

/// Generates random `(type, city, price)` triples.
fn random_rows(rng: &mut StdRng, min: usize, max: usize) -> Vec<(u8, u8, i32)> {
    let n = rng.gen_range(min..=max);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0u8..3),
                rng.gen_range(0u8..4),
                rng.gen_range(0i32..500),
            )
        })
        .collect()
}

/// Builds a small POI-style database from generated rows.
fn poi_db(rows: &[(u8, u8, i32)]) -> Database {
    let schema = DatabaseSchema::new(vec![RelationSchema::new(
        "poi",
        vec![
            Attribute::categorical("type"),
            Attribute::text("city"),
            Attribute::double("price"),
        ],
    )]);
    let mut db = Database::new(schema);
    for &(t, c, p) in rows {
        db.insert_row("poi", poi_row(t, c, p)).unwrap();
    }
    db
}

/// One POI row from the generated triple.
fn poi_row(t: u8, c: u8, p: i32) -> Vec<Value> {
    let types = ["hotel", "museum", "cafe"];
    let cities = ["NYC", "LA", "Chicago", "Boston"];
    vec![
        Value::from(types[(t as usize) % types.len()]),
        Value::from(cities[(c as usize) % cities.len()]),
        Value::Double(p as f64),
    ]
}

/// Asserts the η guarantee against a *measured* RC accuracy.
///
/// `rc_accuracy` probes relaxation radii on a finite grid, so the measured
/// accuracy is a pessimistic approximation of the true one: it can fall short
/// of η by up to a couple of grid steps even when the guarantee holds. The
/// comparison therefore happens in distance space (`d = 1/acc − 1`) with a
/// slack of two grid steps; genuine violations (wrong bounds, lost tuples)
/// overshoot this by orders of magnitude.
fn assert_eta_holds(seed: u64, measured_accuracy: f64, eta: f64, relax_grid: usize) {
    if eta <= 0.0 {
        return; // no bound promised
    }
    let d_eta = 1.0 / eta - 1.0;
    let d_measured = if measured_accuracy > 0.0 {
        1.0 / measured_accuracy - 1.0
    } else {
        f64::INFINITY
    };
    let slack = 1.0 + 2.0 / relax_grid as f64;
    assert!(
        d_measured <= d_eta * slack + 1e-6,
        "seed {seed}: measured accuracy {measured_accuracy} (distance {d_measured}) \
         violates eta {eta} (distance {d_eta}) beyond the measurement slack"
    );
}

/// Conformance of the multi-resolution partitioning (Sec. 2.1): at every
/// level, every input tuple is within the level's resolution of some
/// representative, and representative counts add up to the input size.
#[test]
fn partition_levels_conform() {
    forall_seeds(24, |seed, rng| {
        let n = rng.gen_range(1usize..60);
        let tuples: Vec<Vec<Value>> = (0..n)
            .map(|_| vec![Value::Double(rng.gen_range(-1000i32..1000) as f64)])
            .collect();
        let levels = multilevel_partition(&tuples, &[DistanceKind::Numeric]);
        assert!(!levels.is_empty(), "seed {seed}");
        assert!(levels.last().unwrap().is_exact(), "seed {seed}");
        for level in &levels {
            let total: u64 = level.reps.iter().map(|r| r.count).sum();
            assert_eq!(total as usize, tuples.len(), "seed {seed}");
            for t in &tuples {
                let covered = level.reps.iter().any(|r| {
                    DistanceKind::Numeric.distance(&r.values[0], &t[0])
                        <= level.resolution[0] + 1e-9
                });
                assert!(
                    covered,
                    "seed {seed}: uncovered tuple at resolution {:?}",
                    level.resolution
                );
            }
        }
    });
}

/// Executed plans respect the access budget and the reported η for a simple
/// selective query over random data.
#[test]
fn budget_and_eta_hold_on_random_data() {
    forall_seeds(24, |seed, rng| {
        let rows = random_rows(rng, 20, 120);
        let alpha = rng.gen_range(20u32..500) as f64 / 1000.0;
        let engine = Beas::builder(poi_db(&rows))
            .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
            .build()
            .unwrap();

        let mut b = SpcQueryBuilder::new(engine.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 250i64).unwrap();
        b.output(h, "price", "price").unwrap();
        let query: BeasQuery = b.build().unwrap().into();

        let spec = ResourceSpec::ratio(alpha).unwrap();
        let answer = engine.answer(&query, spec).unwrap();
        assert!(
            answer.accessed <= engine.catalog().budget(&spec).unwrap(),
            "seed {seed}"
        );

        let cfg = AccuracyConfig {
            relax_grid: 6,
            fallback_cap: 1000.0,
        };
        let measured = engine.accuracy(&answer.answers, &query, &cfg).unwrap();
        assert_eta_holds(seed, measured.accuracy, answer.eta, cfg.relax_grid);
    });
}

/// η never decreases when the ratio grows (Theorem 5(3) / Theorem 1).
#[test]
fn eta_monotone_in_alpha() {
    forall_seeds(24, |seed, rng| {
        let rows = random_rows(rng, 30, 100);
        let engine = Beas::builder(poi_db(&rows))
            .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
            .build()
            .unwrap();
        let mut b = SpcQueryBuilder::new(engine.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "museum").unwrap();
        b.bind_const(h, "city", "LA").unwrap();
        b.output(h, "price", "price").unwrap();
        let query: BeasQuery = b.build().unwrap().into();

        let mut last = -1.0f64;
        for alpha in [0.02, 0.1, 0.4, 1.0] {
            let plan = engine.plan(&query, ResourceSpec::Ratio(alpha)).unwrap();
            assert!(plan.eta + 1e-12 >= last, "seed {seed}");
            last = plan.eta;
        }
    });
}

/// Component C2: after a random batch of inserts through the incremental
/// maintenance path, (1) full-spec answers agree with a freshly rebuilt
/// engine over the same data, (2) bounded answers keep respecting the budget
/// the spec resolves to, and (3) the measured accuracy still dominates η.
#[test]
fn incremental_inserts_agree_with_rebuild_and_keep_bounds() {
    forall_seeds(16, |seed, rng| {
        let base = random_rows(rng, 15, 60);
        let constraint = || ConstraintSpec::new("poi", &["type", "city"], &["price"]);
        let engine = Beas::builder(poi_db(&base))
            .constraint(constraint())
            .build()
            .unwrap();

        // a random insert batch through the C2 path
        let inserts = random_rows(rng, 1, 30);
        let batch = inserts.iter().fold(UpdateBatch::new(), |b, &(t, c, p)| {
            b.insert("poi", poi_row(t, c, p))
        });
        assert_eq!(engine.apply_update(&batch).unwrap(), inserts.len());
        assert_eq!(
            engine.database().total_tuples(),
            base.len() + inserts.len(),
            "seed {seed}"
        );
        assert_eq!(engine.catalog().db_size, base.len() + inserts.len());

        // a fresh engine rebuilt over the same (updated) database
        let rebuilt = Beas::builder(engine.database_arc())
            .constraint(constraint())
            .build()
            .unwrap();

        let mut b = SpcQueryBuilder::new(engine.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 400i64).unwrap();
        b.output(h, "price", "price").unwrap();
        let query: BeasQuery = b.build().unwrap().into();

        // (1) exact answers: incremental == rebuilt == ground truth
        let incremental = engine.answer(&query, ResourceSpec::FULL).unwrap();
        let fresh = rebuilt.answer(&query, ResourceSpec::FULL).unwrap();
        let truth = engine.exact_answers(&query).unwrap();
        assert_eq!(
            incremental.answers.clone().sorted(),
            fresh.answers.clone().sorted(),
            "seed {seed}: incremental and rebuilt engines disagree"
        );
        assert_eq!(
            incremental.answers.clone().sorted(),
            truth.sorted(),
            "seed {seed}: inserted tuples lost"
        );

        // (2) + (3) bounded answering under a random spec
        let spec = ResourceSpec::ratio(rng.gen_range(20u32..800) as f64 / 1000.0).unwrap();
        let answer = engine.answer(&query, spec).unwrap();
        assert!(
            answer.accessed <= engine.catalog().budget(&spec).unwrap(),
            "seed {seed}: budget violated after inserts"
        );
        let cfg = AccuracyConfig {
            relax_grid: 6,
            fallback_cap: 1000.0,
        };
        let measured = engine.accuracy(&answer.answers, &query, &cfg).unwrap();
        assert_eta_holds(seed, measured.accuracy, answer.eta, cfg.relax_grid);
    });
}

/// Extended template families built from data always conform: every base
/// tuple's Y-projection is within the level resolution of a representative
/// returned for its X-value — and stay conforming after absorbing inserts.
#[test]
fn extended_families_conform_before_and_after_absorb() {
    forall_seeds(24, |seed, rng| {
        let rows = random_rows(rng, 5, 80);
        let db = poi_db(&rows);
        let mut family = build_extended(&db, "poi", &["city"], &["price"]).unwrap();

        // absorb a few extra tuples through the C2 hook
        let extra = random_rows(rng, 1, 10);
        let mut all_rows: Vec<Vec<Value>> = db.relation("poi").unwrap().to_rows();
        for &(t, c, p) in &extra {
            let row = poi_row(t, c, p);
            family.absorb(
                std::slice::from_ref(&row[1]),
                std::slice::from_ref(&row[2]),
                &[DistanceKind::Numeric],
            );
            all_rows.push(row);
        }

        for level in 0..family.num_levels() {
            let res = family.levels[level].resolution[0];
            for row in &all_rows {
                let key = vec![row[1].clone()];
                let reps = family.lookup(level, &key).unwrap();
                let covered = reps
                    .iter()
                    .any(|r| DistanceKind::Numeric.distance(&r.values[0], &row[2]) <= res + 1e-9);
                assert!(covered, "seed {seed}: level {level} lost conformance");
            }
        }
    });
}

/// Parallel index builds are byte-identical to sequential ones: the K-D tree
/// partitioning and the extended-family construction return the same levels,
/// resolutions and representatives for every thread count — so η bounds never
/// depend on the machine's core count.
#[test]
fn parallel_index_build_is_byte_identical_to_sequential() {
    forall_seeds(12, |seed, rng| {
        let rows = random_rows(rng, 10, 150);
        let db = poi_db(&rows);
        let threads = *[2usize, 3, 5, 8].choose(rng).unwrap();

        // raw K-D tree partitioning of one random numeric group
        let tuples: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(_, _, p)| vec![Value::Double(p as f64)])
            .collect();
        let seq_levels = multilevel_partition(&tuples, &[DistanceKind::Numeric]);
        let par_levels = multilevel_partition_threaded(&tuples, &[DistanceKind::Numeric], threads);
        assert_eq!(par_levels, seq_levels, "seed {seed}: partition differs");

        // extended family build over grouped data
        let seq_family = build_extended(&db, "poi", &["type", "city"], &["price"]).unwrap();
        let par_family =
            build_extended_threaded(&db, "poi", &["type", "city"], &["price"], threads).unwrap();
        assert_eq!(par_family, seq_family, "seed {seed}: family differs");

        // whole engines built at different thread counts answer identically
        let constraint = || ConstraintSpec::new("poi", &["type", "city"], &["price"]);
        let seq_engine = Beas::builder(db.clone())
            .constraint(constraint())
            .num_threads(1)
            .build()
            .unwrap();
        let par_engine = Beas::builder(db)
            .constraint(constraint())
            .num_threads(threads)
            .build()
            .unwrap();
        let mut b = SpcQueryBuilder::new(seq_engine.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.output(h, "price", "price").unwrap();
        let query: BeasQuery = b.build().unwrap().into();
        let alpha = rng.gen_range(10u32..1000) as f64 / 1000.0;
        let spec = ResourceSpec::ratio(alpha).unwrap();
        let seq_answer = seq_engine.answer(&query, spec).unwrap();
        let par_answer = par_engine.answer(&query, spec).unwrap();
        assert_eq!(
            seq_answer.answers, par_answer.answers,
            "seed {seed}: answers differ at {threads} threads (α = {alpha})"
        );
        assert_eq!(seq_answer.eta, par_answer.eta, "seed {seed}");
        assert_eq!(seq_answer.accessed, par_answer.accessed, "seed {seed}");
    });
}

// ---------------------------------------------------------------------------
// columnar / row equivalence
// ---------------------------------------------------------------------------

/// A random [`Value`] covering every variant, including floats with special
/// bit patterns (NaN, ±0.0, ±∞) that distinguish bit-level from approximate
/// equality.
fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0u8..10) {
        0..=2 => Value::Int(rng.gen_range(-40i64..40)),
        3 | 4 => Value::Double(rng.gen_range(-200i32..200) as f64 / 4.0),
        5 => [
            Value::Double(f64::NAN),
            Value::Double(0.0),
            Value::Double(-0.0),
            Value::Double(f64::INFINITY),
            Value::Double(f64::NEG_INFINITY),
        ]
        .choose(rng)
        .unwrap()
        .clone(),
        6 | 7 => Value::from(*["NYC", "LA", "Chicago", "Boston", ""].choose(rng).unwrap()),
        8 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Null,
    }
}

/// A random relation whose columns are either homogeneously typed (hitting
/// the typed kernels) or heterogeneous (hitting the `Mixed` fallback).
fn random_relation(rng: &mut StdRng, names: &[&str]) -> Relation {
    let n = rng.gen_range(0usize..60);
    let col_kind: Vec<u8> = names.iter().map(|_| rng.gen_range(0u8..5)).collect();
    let mut rel = Relation::empty(names.iter().map(|s| s.to_string()).collect());
    for _ in 0..n {
        let row: Vec<Value> = col_kind
            .iter()
            .map(|&k| match k {
                0 => Value::Int(rng.gen_range(-40i64..40)),
                1 => {
                    if rng.gen_bool(0.05) {
                        Value::Double(f64::NAN)
                    } else {
                        Value::Double(rng.gen_range(-200i32..200) as f64 / 4.0)
                    }
                }
                2 => Value::from(*["NYC", "LA", "Chicago", "Boston"].choose(rng).unwrap()),
                3 => Value::Bool(rng.gen_bool(0.5)),
                _ => random_value(rng),
            })
            .collect();
        rel.push_row(row).unwrap();
    }
    rel
}

fn random_op(rng: &mut StdRng) -> CompareOp {
    *[
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ]
    .choose(rng)
    .unwrap()
}

fn random_distance(rng: &mut StdRng) -> DistanceKind {
    *[
        DistanceKind::Numeric,
        DistanceKind::Scaled(10),
        DistanceKind::Trivial,
        DistanceKind::Categorical,
    ]
    .choose(rng)
    .unwrap()
}

/// A random predicate atom over the given column names (constant or
/// column-column, any operator, exact or relaxed under any distance kind).
fn random_atom(rng: &mut StdRng, names: &[&str]) -> PredicateAtom {
    let tol = *[0.0, 0.5, 1.0, 7.5].choose(rng).unwrap();
    let dk = random_distance(rng);
    if rng.gen_bool(0.6) {
        PredicateAtom::ColConst {
            col: names.choose(rng).unwrap().to_string(),
            op: random_op(rng),
            value: random_value(rng),
            distance: dk,
            tol,
        }
    } else {
        PredicateAtom::ColCol {
            left: names.choose(rng).unwrap().to_string(),
            op: random_op(rng),
            right: names.choose(rng).unwrap().to_string(),
            distance: dk,
            tol,
        }
    }
}

/// **Columnar/row equivalence (selection):** the vectorized predicate
/// kernels must keep exactly the rows the row-at-a-time evaluator keeps —
/// bit-for-bit, over every value type, operator, distance kind and
/// relaxation, including NaN/±0.0 floats, nulls and mixed-type columns.
#[test]
fn columnar_selection_matches_row_reference() {
    let names = ["a", "b", "c"];
    forall_seeds(60, |seed, rng| {
        let rel = random_relation(rng, &names);
        let rows = rel.to_rows();
        for _ in 0..6 {
            let atoms = (0..rng.gen_range(1usize..3))
                .map(|_| random_atom(rng, &names))
                .collect::<Vec<_>>();
            let pred = Predicate::all(atoms);
            let fast = pred.filter(&rel).unwrap();
            // the row-oriented reference: evaluate every atom on every
            // materialised row, exactly as the pre-columnar storage did
            let expect: Vec<Vec<Value>> = rows
                .iter()
                .filter(|row| pred.eval(&rel.columns, row).unwrap())
                .cloned()
                .collect();
            assert_eq!(
                fast.to_rows(),
                expect,
                "seed {seed}: kernel disagrees with the row reference for {pred:?}"
            );
        }
    });
}

/// **Columnar/row equivalence (aggregation):** the typed-column aggregation
/// produces bit-identical sums, counts, extrema and row order to the
/// row-at-a-time reference (same accumulation order, same float bits).
#[test]
fn columnar_aggregation_matches_row_reference() {
    let names = ["g", "v", "w"];
    forall_seeds(40, |seed, rng| {
        let rel = random_relation(rng, &names);
        let agg = *[
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ]
        .choose(rng)
        .unwrap();
        let mut q = GroupByQuery::new(
            RaExpr::scan("unused", "u"),
            if rng.gen_bool(0.7) {
                vec!["g".to_string()]
            } else {
                vec![]
            },
            agg,
            "v",
            "out",
        );
        if rng.gen_bool(0.5) {
            q.weight_col = Some("w".to_string());
        }
        let fast = aggregate_relation(&rel, &q);

        // the row-oriented reference, replicating the pre-columnar algorithm
        // (same iteration order, so float accumulation is bit-identical)
        let reference = row_reference_aggregate(&rel.to_rows(), &q);
        match (fast, reference) {
            (Ok(f), Ok(r)) => assert_eq!(
                f.to_rows(),
                r,
                "seed {seed}: aggregate {agg} disagrees with the row reference"
            ),
            (Err(_), Err(_)) => {}
            (f, r) => panic!("seed {seed}: divergent outcome fast={f:?} ref={r:?}"),
        }
    });
}

/// The pre-columnar row-at-a-time aggregation, kept verbatim as the
/// reference semantics of [`aggregate_relation`]. Returns the sorted output
/// rows or a type error (sum/avg over non-numeric data).
fn row_reference_aggregate(rows: &[Vec<Value>], q: &GroupByQuery) -> Result<Vec<Vec<Value>>, ()> {
    use std::collections::HashMap;
    // columns are fixed by the callers of this test: g=0, v=1, w=2
    let group_idx: Vec<usize> = q.group_by.iter().map(|_| 0usize).collect();
    let agg_idx = 1usize;
    let weight_idx = q.weight_col.as_ref().map(|_| 2usize);

    #[derive(Default)]
    struct Acc {
        count: f64,
        sum: f64,
        min: Option<Value>,
        max: Option<Value>,
        non_numeric: bool,
    }
    let mut groups: HashMap<Vec<Value>, Acc> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let weight = match weight_idx {
            Some(i) => row[i].as_f64().unwrap_or(1.0).max(0.0),
            None => 1.0,
        };
        let v = &row[agg_idx];
        let acc = groups.entry(key).or_default();
        acc.count += weight;
        match v.as_f64() {
            Some(x) => acc.sum += x * weight,
            None => acc.non_numeric = true,
        }
        if acc.min.as_ref().is_none_or(|m| v < m) {
            acc.min = Some(v.clone());
        }
        if acc.max.as_ref().is_none_or(|m| v > m) {
            acc.max = Some(v.clone());
        }
    }
    let mut out: Vec<Vec<Value>> = Vec::new();
    if groups.is_empty() && q.group_by.is_empty() {
        match q.agg {
            AggFunc::Count => out.push(vec![Value::Int(0)]),
            AggFunc::Sum => out.push(vec![Value::Double(0.0)]),
            _ => {}
        }
        return Ok(out);
    }
    for (key, acc) in groups {
        let agg_value = match q.agg {
            AggFunc::Count => Value::Double(acc.count),
            AggFunc::Sum => {
                if acc.non_numeric {
                    return Err(());
                }
                Value::Double(acc.sum)
            }
            AggFunc::Avg => {
                if acc.non_numeric {
                    return Err(());
                }
                if acc.count == 0.0 {
                    Value::Null
                } else {
                    Value::Double(acc.sum / acc.count)
                }
            }
            AggFunc::Min => acc.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => acc.max.clone().unwrap_or(Value::Null),
        };
        let mut row = key;
        row.push(agg_value);
        out.push(row);
    }
    out.sort();
    Ok(out)
}

/// **Columnar/row equivalence (end to end):** a database loaded row by row
/// (`push_row`) and one loaded in bulk (`Relation::new` from rows) are
/// logically identical; engines built over them — at different thread
/// counts — produce byte-identical index structures, answers, float
/// aggregate sums and η, before and after random insert batches.
#[test]
fn columnar_engine_identical_across_build_paths_and_threads() {
    forall_seeds(8, |seed, rng| {
        let rows = random_rows(rng, 20, 80);
        // path 1: row-at-a-time conversion boundary
        let db1 = poi_db(&rows);
        // path 2: bulk conversion boundary
        let schema = db1.schema.clone();
        let mut db2 = Database::new(schema);
        db2.insert_relation(
            "poi",
            Relation::new(
                vec!["type".into(), "city".into(), "price".into()],
                rows.iter().map(|&(t, c, p)| poi_row(t, c, p)).collect(),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            db1.relation("poi").unwrap(),
            db2.relation("poi").unwrap(),
            "seed {seed}: build paths disagree"
        );

        let constraint = || ConstraintSpec::new("poi", &["type", "city"], &["price"]);
        let threads = *[2usize, 4, 8].choose(rng).unwrap();
        let e1 = Beas::builder(db1)
            .constraint(constraint())
            .num_threads(1)
            .build()
            .unwrap();
        let e2 = Beas::builder(db2)
            .constraint(constraint())
            .num_threads(threads)
            .build()
            .unwrap();
        // identical index structure (levels, resolutions, representatives)
        assert_eq!(
            e1.catalog().families(),
            e2.catalog().families(),
            "seed {seed}: index structure differs"
        );

        let queries = |engine: &Beas| -> Vec<BeasQuery> {
            let mut b = SpcQueryBuilder::new(engine.schema());
            let h = b.atom("poi", "h").unwrap();
            b.bind_const(h, "type", "hotel").unwrap();
            b.filter_const(h, "city", CompareOp::Eq, "NYC").unwrap();
            b.filter_const(h, "price", CompareOp::Le, 400i64).unwrap();
            b.output(h, "city", "city").unwrap();
            b.output(h, "price", "price").unwrap();
            let ra = b.build().unwrap();
            let agg: BeasQuery = AggQuery::new(
                RaQuery::spc(ra.clone()),
                vec!["city".into()],
                AggFunc::Sum,
                "price",
                "total",
            )
            .unwrap()
            .into();
            vec![ra.into(), agg]
        };

        let check = |seed: u64, e1: &Beas, e2: &Beas| {
            for (q1, q2) in queries(e1).iter().zip(queries(e2).iter()) {
                for alpha in [0.05, 0.3, 1.0] {
                    let spec = ResourceSpec::Ratio(alpha);
                    let a1 = e1.answer(q1, spec).unwrap();
                    let a2 = e2.answer(q2, spec).unwrap();
                    // Value equality on Doubles is IEEE-754 total-order
                    // equality, so this compares float sums bit for bit
                    assert_eq!(a1.answers, a2.answers, "seed {seed} α={alpha}");
                    assert!(
                        a1.eta == a2.eta || (a1.eta.is_nan() && a2.eta.is_nan()),
                        "seed {seed} α={alpha}: η {} vs {}",
                        a1.eta,
                        a2.eta
                    );
                    assert_eq!(a1.accessed, a2.accessed, "seed {seed} α={alpha}");
                }
            }
        };
        check(seed, &e1, &e2);

        // random insert batch through C2 on both engines
        let extra = random_rows(rng, 1, 20);
        let batch = extra.iter().fold(UpdateBatch::new(), |b, &(t, c, p)| {
            b.insert("poi", poi_row(t, c, p))
        });
        e1.apply_update(&batch).unwrap();
        e2.apply_update(&batch).unwrap();
        assert_eq!(
            e1.catalog().families(),
            e2.catalog().families(),
            "seed {seed}: index structure differs after inserts"
        );
        check(seed, &e1, &e2);
    });
}

// ---------------------------------------------------------------------------
// progressive refinement sessions
// ---------------------------------------------------------------------------

/// Random `(type, city, price)` rows whose price column includes non-finite
/// floats (NaN, ±∞) — the refinement guarantees must hold bit-for-bit even
/// when resolutions and η degrade to their non-finite edge cases.
fn random_float_rows(rng: &mut StdRng, min: usize, max: usize) -> Vec<(u8, u8, f64)> {
    let n = rng.gen_range(min..=max);
    (0..n)
        .map(|_| {
            let price = match rng.gen_range(0u8..20) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => rng.gen_range(-4000i32..4000) as f64 / 8.0,
            };
            (rng.gen_range(0u8..3), rng.gen_range(0u8..4), price)
        })
        .collect()
}

fn poi_db_f64(rows: &[(u8, u8, f64)]) -> Database {
    let schema = DatabaseSchema::new(vec![RelationSchema::new(
        "poi",
        vec![
            Attribute::categorical("type"),
            Attribute::text("city"),
            Attribute::double("price"),
        ],
    )]);
    let mut db = Database::new(schema);
    let types = ["hotel", "museum", "cafe"];
    let cities = ["NYC", "LA", "Chicago", "Boston"];
    for &(t, c, p) in rows {
        db.insert_row(
            "poi",
            vec![
                Value::from(types[(t as usize) % types.len()]),
                Value::from(cities[(c as usize) % cities.len()]),
                Value::Double(p),
            ],
        )
        .unwrap();
    }
    db
}

/// A random SPC or aggregate query over the float db (aggregates exercise
/// the weighted float-sum accumulation the bit-for-bit claim covers).
fn random_session_query(rng: &mut StdRng, engine: &Beas) -> BeasQuery {
    let mut b = SpcQueryBuilder::new(engine.schema());
    let h = b.atom("poi", "h").unwrap();
    b.bind_const(h, "type", *["hotel", "museum"].choose(rng).unwrap())
        .unwrap();
    b.bind_const(h, "city", *["NYC", "LA"].choose(rng).unwrap())
        .unwrap();
    b.output(h, "price", "price").unwrap();
    let spc = b.build().unwrap();
    if rng.gen_bool(0.4) {
        AggQuery::new(RaQuery::spc(spc), vec![], AggFunc::Sum, "price", "total")
            .unwrap()
            .into()
    } else {
        spc.into()
    }
}

/// A random strictly-increasing ratio schedule ending at `final_alpha`.
fn random_schedule(rng: &mut StdRng, final_alpha: f64) -> RefinementSchedule {
    let mut ratios: Vec<f64> = (0..rng.gen_range(1usize..4))
        .map(|_| rng.gen_range(5u32..800) as f64 / 1000.0 * final_alpha)
        .filter(|&a| a > 0.0 && a < final_alpha)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ratios.push(final_alpha);
    RefinementSchedule::ratios(&ratios).unwrap()
}

/// **Session determinism:** the final step of a refinement session is
/// bit-for-bit equal — relation digest, float aggregate sums, η — to a
/// one-shot `PreparedQuery::answer` at the same spec, at thread counts 1 and
/// 4, on random databases including NaN/∞ float columns. This is the
/// anytime-API guarantee: refining is never a different computation, only a
/// cheaper route to the same one.
#[test]
fn refinement_session_final_step_is_bit_for_bit_one_shot() {
    forall_seeds(12, |seed, rng| {
        let rows = random_float_rows(rng, 40, 200);
        let final_alpha = rng.gen_range(300u32..=1000) as f64 / 1000.0;
        let constraint = || ConstraintSpec::new("poi", &["type", "city"], &["price"]);
        for threads in [1usize, 4] {
            let engine = Beas::builder(poi_db_f64(&rows))
                .constraint(constraint())
                .num_threads(threads)
                .build()
                .unwrap();
            let query = random_session_query(rng, &engine);
            let prepared = engine.prepare(&query).unwrap();
            let one_shot = prepared.answer(ResourceSpec::Ratio(final_alpha)).unwrap();

            let session = prepared.session(random_schedule(rng, final_alpha)).unwrap();
            let steps: Vec<_> = session.map(|s| s.unwrap()).collect();
            let last = steps.last().expect("non-empty schedule");

            // Value equality on Doubles is IEEE-754 total-order equality, so
            // this compares relations (including NaN cells and float sums)
            // bit for bit; the digest doubles as the wire-visible witness
            assert_eq!(
                last.answer.answers, one_shot.answers,
                "seed {seed} threads {threads}: final step diverged from one-shot"
            );
            assert_eq!(
                last.answer.answers.digest(),
                one_shot.answers.digest(),
                "seed {seed} threads {threads}: digest diverged"
            );
            assert_eq!(
                last.answer.eta.to_bits(),
                one_shot.eta.to_bits(),
                "seed {seed} threads {threads}: eta diverged"
            );
            assert_eq!(
                last.answer.accessed, one_shot.accessed,
                "seed {seed} threads {threads}: access accounting diverged"
            );
            assert_eq!(last.answer.exact, one_shot.exact, "seed {seed}");
        }
    });
}

/// **Session monotonicity:** across a refinement session, η never decreases
/// (answers only get more accurate as the budget grows) and the cumulative
/// tuple spend never decreases — on random databases including NaN/∞ float
/// columns, where η may sit at its degenerate 0 for coarse steps.
#[test]
fn refinement_session_eta_and_spend_are_monotone() {
    forall_seeds(16, |seed, rng| {
        let rows = random_float_rows(rng, 30, 160);
        let engine = Beas::builder(poi_db_f64(&rows))
            .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
            .build()
            .unwrap();
        let query = random_session_query(rng, &engine);
        let prepared = engine.prepare(&query).unwrap();
        let session = prepared.session(random_schedule(rng, 1.0)).unwrap();
        let mut last_eta = -1.0f64;
        let mut last_spent = 0usize;
        let mut last_budget = 0usize;
        let mut steps = 0usize;
        for step in session {
            let step = step.unwrap();
            assert!(
                step.eta >= last_eta,
                "seed {seed}: eta decreased {last_eta} -> {} at step {}",
                step.eta,
                step.step
            );
            assert!(
                step.budget_spent >= last_spent,
                "seed {seed}: spend decreased {last_spent} -> {} at step {}",
                step.budget_spent,
                step.step
            );
            assert!(
                step.budget > last_budget,
                "seed {seed}: budgets must strictly increase after dedup"
            );
            // every step's own answer honours its budget
            assert!(step.answer.accessed <= step.budget.max(step.answer.planned_tariff));
            last_eta = step.eta;
            last_spent = step.budget_spent;
            last_budget = step.budget;
            steps = step.step;
        }
        assert!(steps >= 1, "seed {seed}: the session must run");
    });
}

/// Value ordering is antisymmetric and consistent with equality/hashing.
#[test]
fn value_order_and_hash_consistent() {
    forall_seeds(200, |seed, rng| {
        let a = rng.gen_range(-1000i64..1000);
        let b = rng.gen_range(-1000i64..1000);
        let (va, vb) = (Value::Int(a), Value::Double(b as f64));
        if va == vb {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            va.hash(&mut ha);
            vb.hash(&mut hb);
            assert_eq!(ha.finish(), hb.finish(), "seed {seed}");
        }
        assert_eq!(va < vb, vb > va.clone(), "seed {seed}");
        assert_eq!(va.cmp(&vb).reverse(), vb.cmp(&va), "seed {seed}");
    });
}

/// Relation dedup is idempotent and never grows the relation.
#[test]
fn dedup_is_idempotent() {
    forall_seeds(50, |seed, rng| {
        let n = rng.gen_range(0usize..100);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| vec![Value::Int(rng.gen_range(0i64..50))])
            .collect();
        let rel = Relation::new(vec!["v".into()], rows).unwrap();
        let once = rel.clone().deduped();
        let twice = once.clone().deduped();
        assert!(once.len() <= rel.len(), "seed {seed}");
        assert_eq!(once.clone().sorted(), twice.sorted(), "seed {seed}");
    });
}

// ---------------------------------------------------------------------------
// kernel equivalence (chunked mask kernels vs the scalar reference)
// ---------------------------------------------------------------------------

/// **Kernel equivalence (random shapes):** the fused chunked/bitmask
/// selection ([`Predicate::selection`]) emits exactly the indices of the
/// row-at-a-time `Box<dyn Fn>` reference ([`Predicate::selection_scalar`])
/// and of the per-row evaluator, over random relations covering every value
/// type — including NaN/±0.0/±∞ floats, nulls, dictionary-coded strings and
/// mixed-type columns — every operator, distance kind and relaxation.
#[test]
fn chunked_selection_matches_scalar_reference() {
    let names = ["a", "b", "c"];
    forall_seeds(80, |seed, rng| {
        let rel = random_relation(rng, &names);
        let rows = rel.to_rows();
        for _ in 0..6 {
            let atoms = (0..rng.gen_range(1usize..4))
                .map(|_| random_atom(rng, &names))
                .collect::<Vec<_>>();
            let pred = Predicate::all(atoms);
            let chunked = pred.selection(&rel).unwrap();
            let scalar = pred.selection_scalar(&rel).unwrap();
            assert_eq!(
                chunked, scalar,
                "seed {seed}: chunked kernels diverge from the scalar reference for {pred:?}"
            );
            let by_row: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, row)| pred.eval(&rel.columns, row).unwrap())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(
                chunked, by_row,
                "seed {seed}: chunked kernels diverge from the per-row evaluator for {pred:?}"
            );
        }
    });
}

/// **Kernel equivalence (mask tails and degenerate masks):** selection over
/// row counts that straddle the lane and mask-word boundaries
/// (`n mod 8 ∈ {0, 1, 7}`, `n ∈ {63, 64, 65}`), with all-true, all-false
/// and mixed predicates — the remainder-tail paths of every kernel must
/// agree with the scalar reference bit for bit, and the degenerate masks
/// must select everything / nothing exactly.
#[test]
fn chunked_selection_handles_mask_tails_and_degenerate_masks() {
    for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 127, 128, 129] {
        let mut rel = Relation::empty(vec!["i".into(), "x".into()]);
        for k in 0..n {
            let x = match k % 5 {
                0 => f64::NAN,
                1 => 0.0,
                2 => -0.0,
                3 => f64::INFINITY,
                _ => k as f64 - 3.0,
            };
            rel.push_row(vec![Value::Int(k as i64 % 13), Value::Double(x)])
                .unwrap();
        }
        let all_true = Predicate::all(vec![PredicateAtom::col_cmp_const(
            "i",
            CompareOp::Ge,
            -1i64,
        )]);
        let all_false = Predicate::all(vec![PredicateAtom::col_cmp_const(
            "i",
            CompareOp::Lt,
            -1i64,
        )]);
        let mixed = Predicate::all(vec![
            PredicateAtom::col_cmp_const("i", CompareOp::Lt, 7i64),
            PredicateAtom::col_cmp_const("x", CompareOp::Ge, Value::Double(0.0)),
        ]);
        for pred in [&all_true, &all_false, &mixed] {
            assert_eq!(
                pred.selection(&rel).unwrap(),
                pred.selection_scalar(&rel).unwrap(),
                "n={n}: tail handling diverges for {pred:?}"
            );
        }
        assert_eq!(all_true.selection(&rel).unwrap().len(), n, "n={n}");
        assert!(all_false.selection(&rel).unwrap().is_empty(), "n={n}");
    }
}

/// **Zero-conversion materialize:** at every level of a built family, the
/// columnar [`materialize`] (pure code/slice copies) equals the relation
/// assembled row by row from [`lookup`]'s `Rep`s — the pre-columnar fetch
/// path — including the `__weight` counts column.
///
/// [`materialize`]: beas::access::TemplateFamily::materialize
/// [`lookup`]: beas::access::TemplateFamily::lookup
#[test]
fn materialize_matches_rep_based_reconstruction() {
    forall_seeds(24, |seed, rng| {
        let rows = random_rows(rng, 5, 80);
        let db = poi_db(&rows);
        let family = build_extended(&db, "poi", &["city"], &["price"]).unwrap();
        for k in 0..family.num_levels() {
            let xkeys = family.levels[k].xkeys();
            let fast = family.materialize(k, &xkeys).unwrap();
            let mut reference = Relation::empty(family.output_columns());
            for key in &xkeys {
                for rep in family.lookup(k, key).unwrap() {
                    let mut row = key.clone();
                    row.extend(rep.values.iter().cloned());
                    row.push(Value::Int(rep.count as i64));
                    reference.push_row(row).unwrap();
                }
            }
            assert_eq!(
                fast.to_rows(),
                reference.to_rows(),
                "seed {seed}: level {k} materialize diverges from the Rep path"
            );
        }
    });
}

/// **Kernel equivalence across shard counts:** engines pinned to 1 and 4
/// intra-query threads answer with bit-identical relations and digests —
/// the mask kernels run per shard, so shard boundaries (aligned to the mask
/// word) must never leak into the answers.
#[test]
fn kernel_answers_identical_at_one_and_four_threads() {
    let mut rng = StdRng::seed_from_u64(0xBEA5_CAFE);
    let rows = random_rows(&mut rng, 2500, 3000);
    let db = poi_db(&rows);
    let constraint = || ConstraintSpec::new("poi", &["type", "city"], &["price"]);
    let one = Beas::builder(db.clone())
        .constraint(constraint())
        .num_threads(1)
        .build()
        .unwrap();
    let four = Beas::builder(db)
        .constraint(constraint())
        .num_threads(4)
        .build()
        .unwrap();

    let mut b = SpcQueryBuilder::new(one.schema());
    let h = b.atom("poi", "h").unwrap();
    b.bind_const(h, "type", "hotel").unwrap();
    b.bind_const(h, "city", "NYC").unwrap();
    b.filter_const(h, "price", CompareOp::Le, 400i64).unwrap();
    b.output(h, "price", "price").unwrap();
    let query: BeasQuery = b.build().unwrap().into();

    for spec in [
        ResourceSpec::Ratio(0.05),
        ResourceSpec::Ratio(0.3),
        ResourceSpec::FULL,
    ] {
        let a1 = one.answer(&query, spec).unwrap();
        let a4 = four.answer(&query, spec).unwrap();
        assert_eq!(
            a1.answers, a4.answers,
            "answers differ between 1 and 4 threads (spec {spec})"
        );
        assert_eq!(
            a1.answers.digest(),
            a4.answers.digest(),
            "digests differ between 1 and 4 threads (spec {spec})"
        );
        assert_eq!(a1.eta, a4.eta, "eta differs (spec {spec})");
    }
}

/// The η-vs-budget curve is learned from served answers, and serving is
/// deterministic (same data, same specs ⇒ same η at every budget) — so two
/// engines over the same database, run at different thread counts through the
/// same warm-up sequence, must plan bit-identical budgets for every
/// accuracy target afterwards.
#[test]
fn slo_curve_learning_identical_across_thread_counts() {
    forall_seeds(8, |seed, rng| {
        let rows = random_rows(rng, 800, 1500);
        let constraint = || ConstraintSpec::new("poi", &["type", "city"], &["price"]);
        let one = Beas::builder(poi_db(&rows))
            .constraint(constraint())
            .num_threads(1)
            .build()
            .unwrap();
        let four = Beas::builder(poi_db(&rows))
            .constraint(constraint())
            .num_threads(4)
            .build()
            .unwrap();

        let mut b = SpcQueryBuilder::new(one.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.output(h, "price", "price").unwrap();
        let query: BeasQuery = b.build().unwrap().into();

        // the same warm-up trace through both engines
        for _ in 0..2 {
            for ratio in [0.05, 0.1, 0.25, 0.5, 1.0] {
                let a1 = one.answer(&query, ResourceSpec::Ratio(ratio)).unwrap();
                let a4 = four.answer(&query, ResourceSpec::Ratio(ratio)).unwrap();
                assert_eq!(a1.eta, a4.eta, "seed {seed}: eta differs at ratio {ratio}");
            }
        }

        // the learned curves must now plan the same budget for every target
        for eta in [0.3, 0.5, 0.7, 0.9, 0.95, 1.0] {
            let target = AccuracyTarget::new(eta).unwrap();
            let p1 = one.predict_target_cost(&query, &target).unwrap();
            let p4 = four.predict_target_cost(&query, &target).unwrap();
            assert_eq!(
                p1, p4,
                "seed {seed}: planned budget differs between 1 and 4 threads (eta {eta})"
            );
        }
        let (c1, c4) = (one.slo_counters(), four.slo_counters());
        assert_eq!(c1.fingerprints, c4.fingerprints, "seed {seed}");
        assert_eq!(c1.observations, c4.observations, "seed {seed}");
    });
}

/// C2 invalidation: a learned curve speaks for one catalog version. After
/// `apply_update` bumps the version, targeted answers must stop planning off
/// the stale curve (fall back to the conservative prior) until the new
/// version has been observed — and must still meet their target through the
/// escalation fallback.
#[test]
fn slo_curve_invalidated_by_catalog_version_change() {
    forall_seeds(8, |seed, rng| {
        let rows = random_rows(rng, 800, 1500);
        let engine = Beas::builder(poi_db(&rows))
            .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
            .build()
            .unwrap();

        let mut b = SpcQueryBuilder::new(engine.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.output(h, "price", "price").unwrap();
        let query: BeasQuery = b.build().unwrap().into();

        // warm the curve until the target plans off it
        for _ in 0..2 {
            for ratio in [0.05, 0.1, 0.25, 0.5, 1.0] {
                engine.answer(&query, ResourceSpec::Ratio(ratio)).unwrap();
            }
        }
        let target = AccuracyTarget::new(0.9).unwrap();
        let warm = engine.answer_with_target(&query, &target).unwrap();
        assert!(
            warm.curve_backed,
            "seed {seed}: warm answer must plan off the curve"
        );
        assert!(warm.feasible && warm.answer.eta >= 0.9, "seed {seed}");

        // C2: the update bumps Catalog::version, stale observations no
        // longer apply
        let version_before = engine.catalog().version;
        let inserts = random_rows(rng, 5, 25);
        let batch = inserts.iter().fold(UpdateBatch::new(), |b, &(t, c, p)| {
            b.insert("poi", poi_row(t, c, p))
        });
        engine.apply_update(&batch).unwrap();
        assert!(
            engine.catalog().version > version_before,
            "seed {seed}: apply_update must bump the catalog version"
        );

        let after = engine.answer_with_target(&query, &target).unwrap();
        assert!(
            !after.curve_backed,
            "seed {seed}: a version change must invalidate the learned curve"
        );
        assert!(
            after.feasible && after.answer.eta >= 0.9,
            "seed {seed}: the prior fallback still meets the target \
             (eta {}, feasible {})",
            after.answer.eta,
            after.feasible
        );
    });
}
