//! Property-based tests of the core invariants, across crates:
//!
//! * index conformance (`D |= ψ`): every tuple is within the level resolution
//!   of some representative, at every level;
//! * the resource bound: executed plans never access more than `α·|D|` tuples;
//! * the accuracy guarantee: the measured RC accuracy is never below the
//!   reported η;
//! * monotonicity of η in α;
//! * total order / hashing consistency of values.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use beas::access::{build_extended, multilevel_partition};
use beas::prelude::*;
use proptest::prelude::*;

/// Builds a small POI-style database from generated rows.
fn poi_db(rows: &[(u8, u8, i32)]) -> Database {
    let schema = DatabaseSchema::new(vec![RelationSchema::new(
        "poi",
        vec![
            Attribute::categorical("type"),
            Attribute::text("city"),
            Attribute::double("price"),
        ],
    )]);
    let types = ["hotel", "museum", "cafe"];
    let cities = ["NYC", "LA", "Chicago", "Boston"];
    let mut db = Database::new(schema);
    for (t, c, p) in rows {
        db.insert_row(
            "poi",
            vec![
                Value::from(types[(*t as usize) % types.len()]),
                Value::from(cities[(*c as usize) % cities.len()]),
                Value::Double(*p as f64),
            ],
        )
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conformance of the multi-resolution partitioning (Sec. 2.1): at every
    /// level, every input tuple is within the level's resolution of some
    /// representative, and representative counts add up to the input size.
    #[test]
    fn partition_levels_conform(values in prop::collection::vec(-1000i32..1000, 1..60)) {
        let tuples: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Double(v as f64)]).collect();
        let levels = multilevel_partition(&tuples, &[DistanceKind::Numeric]);
        prop_assert!(!levels.is_empty());
        prop_assert!(levels.last().unwrap().is_exact());
        for level in &levels {
            let total: u64 = level.reps.iter().map(|r| r.count).sum();
            prop_assert_eq!(total as usize, tuples.len());
            for t in &tuples {
                let covered = level.reps.iter().any(|r| {
                    DistanceKind::Numeric.distance(&r.values[0], &t[0]) <= level.resolution[0] + 1e-9
                });
                prop_assert!(covered, "uncovered tuple at resolution {:?}", level.resolution);
            }
        }
    }

    /// Executed plans respect the access budget and the reported η for a
    /// simple selective query over random data.
    #[test]
    fn budget_and_eta_hold_on_random_data(
        rows in prop::collection::vec((0u8..3, 0u8..4, 0i32..500), 20..120),
        alpha_milli in 20u32..500,
    ) {
        let db = poi_db(&rows);
        let alpha = alpha_milli as f64 / 1000.0;
        let engine = Beas::build(&db, &[ConstraintSpec::new("poi", &["type", "city"], &["price"])]).unwrap();

        let mut b = SpcQueryBuilder::new(&db.schema);
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 250i64).unwrap();
        b.output(h, "price", "price").unwrap();
        let query: BeasQuery = b.build().unwrap().into();

        let answer = engine.answer(&query, alpha).unwrap();
        prop_assert!(answer.accessed <= engine.catalog().budget_for(alpha));

        let cfg = AccuracyConfig { relax_grid: 3, fallback_cap: 1000.0 };
        let measured = rc_accuracy(&answer.answers, &query, &db, &cfg).unwrap();
        prop_assert!(
            measured.accuracy + 1e-9 >= answer.eta,
            "measured {} < eta {}", measured.accuracy, answer.eta
        );
    }

    /// η never decreases when the ratio grows (Theorem 5(3) / Theorem 1).
    #[test]
    fn eta_monotone_in_alpha(
        rows in prop::collection::vec((0u8..3, 0u8..4, 0i32..500), 30..100),
    ) {
        let db = poi_db(&rows);
        let engine = Beas::build(&db, &[ConstraintSpec::new("poi", &["type", "city"], &["price"])]).unwrap();
        let mut b = SpcQueryBuilder::new(&db.schema);
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "museum").unwrap();
        b.bind_const(h, "city", "LA").unwrap();
        b.output(h, "price", "price").unwrap();
        let query: BeasQuery = b.build().unwrap().into();

        let mut last = -1.0f64;
        for alpha in [0.02, 0.1, 0.4, 1.0] {
            let plan = engine.plan(&query, alpha).unwrap();
            prop_assert!(plan.eta + 1e-12 >= last);
            last = plan.eta;
        }
    }

    /// Extended template families built from data always conform: every base
    /// tuple's Y-projection is within the level resolution of a representative
    /// returned for its X-value.
    #[test]
    fn extended_families_conform(
        rows in prop::collection::vec((0u8..3, 0u8..4, 0i32..300), 5..80),
    ) {
        let db = poi_db(&rows);
        let family = build_extended(&db, "poi", &["city"], &["price"]).unwrap();
        let rel = db.relation("poi").unwrap();
        for level in 0..family.num_levels() {
            let res = family.levels[level].resolution[0];
            for row in &rel.rows {
                let key = vec![row[1].clone()];
                let reps = family.lookup(level, &key).unwrap();
                let covered = reps.iter().any(|r| {
                    DistanceKind::Numeric.distance(&r.values[0], &row[2]) <= res + 1e-9
                });
                prop_assert!(covered);
            }
        }
    }

    /// Value ordering is antisymmetric and consistent with equality/hashing.
    #[test]
    fn value_order_and_hash_consistent(a in -1000i64..1000, b in -1000i64..1000) {
        let (va, vb) = (Value::Int(a), Value::Double(b as f64));
        if va == vb {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            va.hash(&mut ha);
            vb.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
        prop_assert_eq!(va < vb, vb > va.clone());
        prop_assert_eq!(va.cmp(&vb).reverse(), vb.cmp(&va));
    }

    /// Relation dedup is idempotent and never grows the relation.
    #[test]
    fn dedup_is_idempotent(values in prop::collection::vec(0i64..50, 0..100)) {
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v)]).collect();
        let rel = Relation::new(vec!["v".into()], rows).unwrap();
        let once = rel.clone().deduped();
        let twice = once.clone().deduped();
        prop_assert!(once.len() <= rel.len());
        prop_assert_eq!(once.clone().sorted(), twice.sorted());
    }
}
