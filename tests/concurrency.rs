//! Concurrency tests of the serving core:
//!
//! * compile-time `Send + Sync` assertions for every type the serving path
//!   shares across threads;
//! * a concurrency oracle: N client threads calling `PreparedQuery::answer`
//!   while a writer thread applies update batches — every observed answer
//!   must equal the single-threaded answer of *some* consistent state (the
//!   snapshot isolation guarantee), and the final state must agree with a
//!   freshly built single-threaded engine;
//! * determinism: sharded execution returns bit-identical answers for every
//!   thread count, on plain and aggregate queries alike.

use std::sync::Arc;

use beas::core::EngineSnapshot;
use beas::prelude::*;

/// Compile-time proof that the serving path is `Send + Sync`: the engine,
/// prepared handles, snapshots, the catalog and its families, and plans.
#[test]
fn serving_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Beas>();
    assert_send_sync::<PreparedQuery<'static>>();
    assert_send_sync::<EngineSnapshot>();
    assert_send_sync::<Catalog>();
    assert_send_sync::<beas::access::TemplateFamily>();
    assert_send_sync::<beas::access::Level>();
    assert_send_sync::<BoundedPlan>();
    assert_send_sync::<BeasAnswer>();
    assert_send_sync::<UpdateBatch>();
    assert_send_sync::<Database>();
    assert_send_sync::<Relation>();
}

fn poi_db(n: i64) -> Database {
    let schema = DatabaseSchema::new(vec![RelationSchema::new(
        "poi",
        vec![
            Attribute::categorical("type"),
            Attribute::text("city"),
            Attribute::double("price"),
        ],
    )]);
    let mut db = Database::new(schema);
    let cities = ["NYC", "LA", "Chicago"];
    for i in 0..n {
        db.insert_row(
            "poi",
            vec![
                Value::from(if i % 2 == 0 { "hotel" } else { "museum" }),
                Value::from(cities[(i % 3) as usize]),
                Value::Double(30.0 + ((i * 7) % 160) as f64 / 2.0),
            ],
        )
        .unwrap();
    }
    db
}

fn constraint() -> ConstraintSpec {
    ConstraintSpec::new("poi", &["type", "city"], &["price"])
}

fn nyc_hotels(schema: &DatabaseSchema) -> BeasQuery {
    let mut b = SpcQueryBuilder::new(schema);
    let h = b.atom("poi", "h").unwrap();
    b.bind_const(h, "type", "hotel").unwrap();
    b.bind_const(h, "city", "NYC").unwrap();
    b.output(h, "price", "price").unwrap();
    b.build().unwrap().into()
}

/// The concurrency oracle. Readers answer at the full spec (exact answers,
/// so each answer characterizes one database state) while a writer applies
/// update batches; snapshot isolation means every observed answer must match
/// the exact answers of one of the `k + 1` states the writer steps through.
#[test]
fn concurrent_answers_agree_with_some_consistent_state() {
    const READERS: usize = 4;
    const ANSWERS_PER_READER: usize = 40;
    const BATCHES: usize = 8;

    let base = poi_db(600);
    let query = nyc_hotels(&base.schema);

    // the writer's batches: distinct new NYC hotels so every state has a
    // distinct exact answer set
    let batches: Vec<UpdateBatch> = (0..BATCHES as i64)
        .map(|b| {
            (0..5i64).fold(UpdateBatch::new(), |batch, i| {
                batch.insert(
                    "poi",
                    vec![
                        Value::from("hotel"),
                        Value::from("NYC"),
                        Value::Double(1000.0 + (b * 5 + i) as f64 + 0.25),
                    ],
                )
            })
        })
        .collect();

    // expected exact answers at every state the engine can pass through
    let mut expected: Vec<Relation> = Vec::with_capacity(BATCHES + 1);
    let mut state = base.clone();
    expected.push(beas::core::exact_answers(&query, &state).unwrap().sorted());
    for batch in &batches {
        for (relation, row) in batch.inserts() {
            state.insert_row(relation, row.clone()).unwrap();
        }
        expected.push(beas::core::exact_answers(&query, &state).unwrap().sorted());
    }

    let engine = Arc::new(
        Beas::builder(base)
            .constraint(constraint())
            .num_threads(2)
            .build()
            .unwrap(),
    );
    let prepared = engine.prepare(&query).unwrap();

    std::thread::scope(|scope| {
        // the writer: applies every batch through the C2 snapshot-swap path
        let writer_engine = Arc::clone(&engine);
        let writer_batches = &batches;
        scope.spawn(move || {
            for batch in writer_batches {
                writer_engine.apply_update(batch).unwrap();
                std::thread::yield_now();
            }
        });
        // the readers: concurrent prepared answers, each checked against the
        // set of consistent states
        for _ in 0..READERS {
            let prepared = &prepared;
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..ANSWERS_PER_READER {
                    let answer = prepared.answer(ResourceSpec::FULL).unwrap();
                    assert!(answer.exact, "full-spec answers must be exact");
                    let sorted = answer.answers.sorted();
                    assert!(
                        expected.contains(&sorted),
                        "a concurrent answer matches no consistent database state \
                         ({} rows observed)",
                        sorted.len()
                    );
                }
            });
        }
    });

    // quiesced: the engine agrees with a fresh single-threaded engine built
    // over the final data
    let rebuilt = Beas::builder(engine.database())
        .constraint(constraint())
        .num_threads(1)
        .build()
        .unwrap();
    let final_live = engine.answer(&query, ResourceSpec::FULL).unwrap();
    let final_rebuilt = rebuilt.answer(&query, ResourceSpec::FULL).unwrap();
    assert_eq!(
        final_live.answers.clone().sorted(),
        final_rebuilt.answers.clone().sorted()
    );
    assert_eq!(
        final_live.answers.clone().sorted(),
        expected.last().unwrap().clone()
    );
}

/// Sharded execution must be bit-for-bit deterministic: the same query under
/// the same spec returns identical relations (rows, order, floats) for every
/// thread count, on selection and aggregate queries alike.
#[test]
fn sharded_execution_is_identical_across_thread_counts() {
    let db = poi_db(3000);
    let query = nyc_hotels(&db.schema);
    let agg: BeasQuery = {
        let inner = match nyc_hotels(&db.schema) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        beas::core::AggQuery::new(inner, vec![], AggFunc::Sum, "price", "total")
            .unwrap()
            .into()
    };

    let engines: Vec<Beas> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            Beas::builder(db.clone())
                .constraint(constraint())
                .num_threads(threads)
                .build()
                .unwrap()
        })
        .collect();

    for q in [&query, &agg] {
        for spec in [
            ResourceSpec::Ratio(0.02),
            ResourceSpec::Ratio(0.2),
            ResourceSpec::FULL,
        ] {
            let reference = engines[0].answer(q, spec).unwrap();
            for engine in &engines[1..] {
                let answer = engine.answer(q, spec).unwrap();
                assert_eq!(
                    answer.answers,
                    reference.answers,
                    "answers differ at {} threads (spec {spec})",
                    engine.num_threads()
                );
                assert_eq!(answer.eta, reference.eta);
                assert_eq!(answer.accessed, reference.accessed);
                assert_eq!(answer.budget, reference.budget);
                assert_eq!(answer.exact, reference.exact);
            }
        }
    }
}

/// Concurrent plan-cache fills on one prepared handle must stay consistent:
/// many threads racing on the same budgets end with one plan per budget and
/// identical answers.
#[test]
fn racing_plan_cache_fills_stay_consistent() {
    let db = poi_db(500);
    let query = nyc_hotels(&db.schema);
    let engine = Beas::builder(db)
        .constraint(constraint())
        .num_threads(1)
        .build()
        .unwrap();
    let prepared = engine.prepare(&query).unwrap();
    let specs = [
        ResourceSpec::Ratio(0.05),
        ResourceSpec::Ratio(0.2),
        ResourceSpec::FULL,
    ];

    let reference: Vec<Relation> = specs
        .iter()
        .map(|&s| engine.answer(&query, s).unwrap().answers.sorted())
        .collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let prepared = &prepared;
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..20 {
                    let which = (t + round) % specs.len();
                    let answer = prepared.answer(specs[which]).unwrap();
                    assert_eq!(
                        answer.answers.sorted(),
                        reference[which],
                        "thread {t} round {round}"
                    );
                }
            });
        }
    });
    assert_eq!(
        prepared.cached_plans(),
        specs.len(),
        "racing fills must end with exactly one plan per budget"
    );
}
