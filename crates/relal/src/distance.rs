//! Per-attribute distance functions and tuple distance (Sec. 3.1 of the paper).
//!
//! Every attribute `A` of a relation carries a distance function
//! `dis_A : U_A × U_A → ℝ≥0 ∪ {+∞}` satisfying the triangle inequality. The
//! default is the *trivial* distance (`0` if equal, `+∞` otherwise), used for
//! identifiers and categorical attributes; numeric attributes typically use
//! the absolute difference.
//!
//! The distance between two tuples is the worst attribute difference,
//! `d(t, t') = max_A dis_A(t[A], t'[A])`.

use crate::value::Value;

/// The kind of distance function attached to an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceKind {
    /// `|a - b|` on numeric values; `+∞` across types or on non-numeric data.
    Numeric,
    /// `|a - b| / scale` on numeric values: the absolute difference normalised
    /// by a characteristic scale of the attribute (typically its range), so
    /// that a full-range error counts as distance 1. This keeps distances of
    /// attributes with very different magnitudes (delays in minutes, prices in
    /// dollars) comparable, which is what the paper's accuracy numbers assume.
    Scaled(u32),
    /// `0` if equal, `+∞` otherwise (the paper's default, e.g. for IDs).
    #[default]
    Trivial,
    /// `0` if equal, `1` otherwise. Useful for categorical attributes where a
    /// mismatch should count as a bounded error instead of `+∞` (e.g. POI
    /// `type` in Example 1 when approximate categories are acceptable).
    Categorical,
}

impl DistanceKind {
    /// Distance between two values under this kind.
    ///
    /// `Null` is at distance `0` from `Null` and `+∞` from everything else
    /// (except under [`DistanceKind::Categorical`], where it is `1`).
    pub fn distance(&self, a: &Value, b: &Value) -> f64 {
        if a == b {
            return 0.0;
        }
        match self {
            DistanceKind::Numeric => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x - y).abs(),
                _ => f64::INFINITY,
            },
            DistanceKind::Scaled(scale) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x - y).abs() / (*scale).max(1) as f64,
                _ => f64::INFINITY,
            },
            DistanceKind::Trivial => f64::INFINITY,
            DistanceKind::Categorical => 1.0,
        }
    }

    /// Returns `true` when the distance is the trivial 0/∞ metric.
    pub fn is_trivial(&self) -> bool {
        matches!(self, DistanceKind::Trivial)
    }

    /// Returns `true` for distances defined through numeric differences
    /// ([`DistanceKind::Numeric`] and [`DistanceKind::Scaled`]).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DistanceKind::Numeric | DistanceKind::Scaled(_))
    }

    /// The distance contributed by two *value-unequal* numeric operands —
    /// the non-equal branch of [`DistanceKind::distance`] on floats. Used by
    /// the columnar kernels, which test value equality on the raw column
    /// data before falling into this.
    #[inline]
    pub fn numeric_gap(&self, x: f64, y: f64) -> f64 {
        match self {
            DistanceKind::Numeric => (x - y).abs(),
            DistanceKind::Scaled(scale) => (x - y).abs() / (*scale).max(1) as f64,
            DistanceKind::Trivial => f64::INFINITY,
            DistanceKind::Categorical => 1.0,
        }
    }

    /// The length (in raw value units) that corresponds to a distance of 1.
    /// Used to convert distance-space tolerances back into value-space slack
    /// when relaxing inequality comparisons.
    pub fn unit(&self) -> f64 {
        match self {
            DistanceKind::Scaled(scale) => (*scale).max(1) as f64,
            _ => 1.0,
        }
    }
}

/// Distance between two tuples given per-position distance kinds:
/// `d(t, t') = max_i dis_i(t[i], t'[i])` (the worst attribute difference).
///
/// Tuples of different arities are at distance `+∞`.
pub fn tuple_distance(kinds: &[DistanceKind], a: &[Value], b: &[Value]) -> f64 {
    if a.len() != b.len() || kinds.len() != a.len() {
        return f64::INFINITY;
    }
    let mut worst: f64 = 0.0;
    for ((kind, x), y) in kinds.iter().zip(a.iter()).zip(b.iter()) {
        let d = kind.distance(x, y);
        if d > worst {
            worst = d;
        }
        if worst.is_infinite() {
            return f64::INFINITY;
        }
    }
    worst
}

/// Distance between two tuples restricted to a subset of positions.
///
/// `positions` indexes into both tuples; the distance kind of each selected
/// position is taken from `kinds` at the same index into `positions`.
pub fn tuple_distance_on(
    kinds: &[DistanceKind],
    positions: &[usize],
    a: &[Value],
    b: &[Value],
) -> f64 {
    debug_assert_eq!(kinds.len(), positions.len());
    let mut worst: f64 = 0.0;
    for (kind, &pos) in kinds.iter().zip(positions.iter()) {
        let (Some(x), Some(y)) = (a.get(pos), b.get(pos)) else {
            return f64::INFINITY;
        };
        let d = kind.distance(x, y);
        if d > worst {
            worst = d;
        }
        if worst.is_infinite() {
            return f64::INFINITY;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_distance_is_absolute_difference() {
        let d = DistanceKind::Numeric;
        assert_eq!(d.distance(&Value::Int(95), &Value::Int(99)), 4.0);
        assert_eq!(d.distance(&Value::Double(1.5), &Value::Int(1)), 0.5);
        assert_eq!(d.distance(&Value::Int(7), &Value::Int(7)), 0.0);
    }

    #[test]
    fn numeric_distance_on_strings_is_infinite() {
        let d = DistanceKind::Numeric;
        assert!(d
            .distance(&Value::from("a"), &Value::from("b"))
            .is_infinite());
        assert!(d.distance(&Value::from("a"), &Value::Int(1)).is_infinite());
    }

    #[test]
    fn trivial_distance_is_zero_or_infinity() {
        let d = DistanceKind::Trivial;
        assert_eq!(d.distance(&Value::from("x"), &Value::from("x")), 0.0);
        assert!(d
            .distance(&Value::from("x"), &Value::from("y"))
            .is_infinite());
        assert!(d.distance(&Value::Int(1), &Value::Int(2)).is_infinite());
    }

    #[test]
    fn categorical_distance_is_zero_or_one() {
        let d = DistanceKind::Categorical;
        assert_eq!(
            d.distance(&Value::from("hotel"), &Value::from("hotel")),
            0.0
        );
        assert_eq!(
            d.distance(&Value::from("hotel"), &Value::from("motel")),
            1.0
        );
    }

    #[test]
    fn null_distance_behaviour() {
        assert_eq!(
            DistanceKind::Numeric.distance(&Value::Null, &Value::Null),
            0.0
        );
        assert!(DistanceKind::Numeric
            .distance(&Value::Null, &Value::Int(0))
            .is_infinite());
        assert_eq!(
            DistanceKind::Categorical.distance(&Value::Null, &Value::Int(0)),
            1.0
        );
    }

    #[test]
    fn tuple_distance_takes_worst_attribute() {
        let kinds = [DistanceKind::Numeric, DistanceKind::Numeric];
        let a = [Value::Int(10), Value::Int(100)];
        let b = [Value::Int(12), Value::Int(103)];
        assert_eq!(tuple_distance(&kinds, &a, &b), 3.0);
    }

    #[test]
    fn tuple_distance_is_infinite_on_arity_mismatch() {
        let kinds = [DistanceKind::Numeric];
        assert!(tuple_distance(&kinds, &[Value::Int(1)], &[]).is_infinite());
    }

    #[test]
    fn tuple_distance_short_circuits_on_infinity() {
        let kinds = [DistanceKind::Trivial, DistanceKind::Numeric];
        let a = [Value::from("x"), Value::Int(0)];
        let b = [Value::from("y"), Value::Int(0)];
        assert!(tuple_distance(&kinds, &a, &b).is_infinite());
    }

    #[test]
    fn tuple_distance_on_subset_of_positions() {
        let kinds = [DistanceKind::Numeric];
        let a = [Value::from("x"), Value::Int(5), Value::Int(100)];
        let b = [Value::from("y"), Value::Int(8), Value::Int(100)];
        assert_eq!(tuple_distance_on(&kinds, &[1], &a, &b), 3.0);
        assert_eq!(tuple_distance_on(&kinds, &[2], &a, &b), 0.0);
    }

    #[test]
    fn distance_satisfies_triangle_inequality_numeric() {
        // spot check the triangle inequality for the numeric metric
        let d = DistanceKind::Numeric;
        let (a, b, c) = (Value::Int(1), Value::Int(50), Value::Int(30));
        assert!(d.distance(&a, &b) <= d.distance(&a, &c) + d.distance(&c, &b) + 1e-9);
    }
}
