//! SPC (select–project–Cartesian-product) queries in conjunctive, tableau-friendly form.
//!
//! The chase of Sec. 5 operates on the *tableau* of an SPC query: one tuple
//! template per relation atom, with variables shared across positions encoding
//! equality joins. [`SpcQuery`] is exactly that representation; it converts
//! losslessly to an [`RaExpr`] for evaluation.

use std::collections::BTreeMap;

use crate::distance::DistanceKind;
use crate::error::{RelalError, Result};
use crate::expr::RaExpr;
use crate::predicate::{CompareOp, Predicate, PredicateAtom};
use crate::schema::DatabaseSchema;
use crate::value::Value;

/// A relation atom of an SPC query: a relation occurrence under an alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpcAtom {
    /// Relation name.
    pub relation: String,
    /// Alias (unique within the query); output columns are `"{alias}.{attr}"`.
    pub alias: String,
}

/// A term filling one position of a tuple template: a constant or a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A constant from the query.
    Const(Value),
    /// A variable, identified by index.
    Var(usize),
}

impl Term {
    /// The variable index if this term is a variable.
    pub fn var(&self) -> Option<usize> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Returns `true` for constants.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

/// A non-join selection condition over variables.
#[derive(Debug, Clone, PartialEq)]
pub enum SelCond {
    /// `var op constant` (e.g. `price ≤ 95`).
    VarConst {
        /// Variable index.
        var: usize,
        /// Comparison operator.
        op: CompareOp,
        /// Constant operand.
        value: Value,
    },
    /// `left op right` between two variables (e.g. `a.delay ≥ b.delay`).
    VarVar {
        /// Left variable index.
        left: usize,
        /// Comparison operator.
        op: CompareOp,
        /// Right variable index.
        right: usize,
    },
}

/// One output column of an SPC query.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputCol {
    /// Output column name.
    pub name: String,
    /// The variable projected into this column.
    pub var: usize,
}

/// A position in the tableau: `(atom index, attribute index)`.
pub type Position = (usize, usize);

/// An SPC query in conjunctive form: atoms, tuple templates (terms), extra
/// selection conditions, and the output tuple `u(Q)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpcQuery {
    /// Relation atoms.
    pub atoms: Vec<SpcAtom>,
    /// `terms[i][j]` fills attribute `j` of atom `i`. Every position has a
    /// term; unconstrained positions hold fresh variables.
    pub terms: Vec<Vec<Term>>,
    /// Selection conditions that are not encoded by constants/shared variables.
    pub selections: Vec<SelCond>,
    /// The output tuple (projected variables).
    pub output: Vec<OutputCol>,
}

impl SpcQuery {
    /// Number of variables used by the query (`max var index + 1`).
    pub fn num_vars(&self) -> usize {
        let mut max = None;
        for t in self.terms.iter().flatten() {
            if let Term::Var(v) = t {
                max = Some(max.map_or(*v, |m: usize| m.max(*v)));
            }
        }
        for s in &self.selections {
            match s {
                SelCond::VarConst { var, .. } => {
                    max = Some(max.map_or(*var, |m: usize| m.max(*var)))
                }
                SelCond::VarVar { left, right, .. } => {
                    let v = (*left).max(*right);
                    max = Some(max.map_or(v, |m: usize| m.max(v)));
                }
            }
        }
        for o in &self.output {
            max = Some(max.map_or(o.var, |m: usize| m.max(o.var)));
        }
        max.map_or(0, |m| m + 1)
    }

    /// `||Q||`: the number of relation atoms.
    pub fn relation_count(&self) -> usize {
        self.atoms.len()
    }

    /// All positions (atom, attribute) where each variable occurs.
    pub fn var_positions(&self) -> BTreeMap<usize, Vec<Position>> {
        let mut map: BTreeMap<usize, Vec<Position>> = BTreeMap::new();
        for (ai, terms) in self.terms.iter().enumerate() {
            for (pi, term) in terms.iter().enumerate() {
                if let Term::Var(v) = term {
                    map.entry(*v).or_default().push((ai, pi));
                }
            }
        }
        map
    }

    /// The qualified column name of a position, e.g. `"h.price"`.
    pub fn position_column(&self, pos: Position) -> Result<String> {
        let atom = self
            .atoms
            .get(pos.0)
            .ok_or_else(|| RelalError::InvalidQuery(format!("no atom {}", pos.0)))?;
        Ok(format!("{}.attr{}", atom.alias, pos.1))
    }

    /// The qualified column name of a position using real attribute names from
    /// the schema.
    pub fn position_column_named(&self, schema: &DatabaseSchema, pos: Position) -> Result<String> {
        let atom = self
            .atoms
            .get(pos.0)
            .ok_or_else(|| RelalError::InvalidQuery(format!("no atom {}", pos.0)))?;
        let rel = schema.relation(&atom.relation)?;
        let attr = rel
            .attributes
            .get(pos.1)
            .ok_or_else(|| RelalError::UnknownColumn(format!("{}[{}]", atom.relation, pos.1)))?;
        Ok(format!("{}.{}", atom.alias, attr.name))
    }

    /// The first position of a variable (its canonical occurrence).
    pub fn var_first_position(&self, var: usize) -> Option<Position> {
        for (ai, terms) in self.terms.iter().enumerate() {
            for (pi, term) in terms.iter().enumerate() {
                if term == &Term::Var(var) {
                    return Some((ai, pi));
                }
            }
        }
        None
    }

    /// The distance kind of the attribute at a position.
    pub fn position_distance(
        &self,
        schema: &DatabaseSchema,
        pos: Position,
    ) -> Result<DistanceKind> {
        let atom = &self.atoms[pos.0];
        let rel = schema.relation(&atom.relation)?;
        Ok(rel
            .attributes
            .get(pos.1)
            .ok_or_else(|| RelalError::UnknownColumn(format!("{}[{}]", atom.relation, pos.1)))?
            .distance)
    }

    /// Number of selection predicates in the query: constants in the tableau,
    /// explicit selection conditions, and one per extra occurrence of a shared
    /// variable (equality joins). This is the `#-sel` knob of the evaluation.
    pub fn selection_count(&self) -> usize {
        let consts = self.terms.iter().flatten().filter(|t| t.is_const()).count();
        let joins: usize = self
            .var_positions()
            .values()
            .map(|ps| ps.len().saturating_sub(1))
            .sum();
        consts + joins + self.selections.len()
    }

    /// Validates structural well-formedness against a schema: alias
    /// uniqueness, term arity, variable references.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        if self.atoms.len() != self.terms.len() {
            return Err(RelalError::InvalidQuery(
                "atoms and terms length mismatch".into(),
            ));
        }
        if self.output.is_empty() {
            return Err(RelalError::InvalidQuery("empty output".into()));
        }
        let mut seen_alias = Vec::new();
        for (atom, terms) in self.atoms.iter().zip(self.terms.iter()) {
            if seen_alias.contains(&atom.alias) {
                return Err(RelalError::InvalidQuery(format!(
                    "duplicate alias {}",
                    atom.alias
                )));
            }
            seen_alias.push(atom.alias.clone());
            let rel = schema.relation(&atom.relation)?;
            if terms.len() != rel.arity() {
                return Err(RelalError::InvalidQuery(format!(
                    "atom {} has {} terms but {} has arity {}",
                    atom.alias,
                    terms.len(),
                    atom.relation,
                    rel.arity()
                )));
            }
        }
        let vars = self.var_positions();
        let check_var = |v: usize| -> Result<()> {
            if vars.contains_key(&v) {
                Ok(())
            } else {
                Err(RelalError::InvalidQuery(format!(
                    "variable {v} does not occur in any atom"
                )))
            }
        };
        for s in &self.selections {
            match s {
                SelCond::VarConst { var, .. } => check_var(*var)?,
                SelCond::VarVar { left, right, .. } => {
                    check_var(*left)?;
                    check_var(*right)?;
                }
            }
        }
        for o in &self.output {
            check_var(o.var)?;
        }
        Ok(())
    }

    /// Converts the conjunctive query to a relational-algebra expression:
    /// a product of scans, a selection encoding constants / shared variables /
    /// explicit conditions, and the output projection.
    pub fn to_ra(&self, schema: &DatabaseSchema) -> Result<RaExpr> {
        self.validate(schema)?;
        // product of scans
        let mut expr: Option<RaExpr> = None;
        for atom in &self.atoms {
            let scan = RaExpr::scan(atom.relation.clone(), atom.alias.clone());
            expr = Some(match expr {
                None => scan,
                Some(e) => e.product(scan),
            });
        }
        let mut expr = expr.ok_or_else(|| RelalError::InvalidQuery("no atoms".into()))?;

        let mut atoms: Vec<PredicateAtom> = Vec::new();
        // constants in the tableau
        for (ai, terms) in self.terms.iter().enumerate() {
            for (pi, term) in terms.iter().enumerate() {
                if let Term::Const(v) = term {
                    let col = self.position_column_named(schema, (ai, pi))?;
                    let dk = self.position_distance(schema, (ai, pi))?;
                    atoms.push(PredicateAtom::ColConst {
                        col,
                        op: CompareOp::Eq,
                        value: v.clone(),
                        distance: dk,
                        tol: 0.0,
                    });
                }
            }
        }
        // equality joins from shared variables
        for (_, positions) in self.var_positions() {
            if positions.len() > 1 {
                let first = self.position_column_named(schema, positions[0])?;
                let dk = self.position_distance(schema, positions[0])?;
                for &p in &positions[1..] {
                    let other = self.position_column_named(schema, p)?;
                    atoms.push(PredicateAtom::ColCol {
                        left: first.clone(),
                        op: CompareOp::Eq,
                        right: other,
                        distance: dk,
                        tol: 0.0,
                    });
                }
            }
        }
        // explicit selection conditions
        for sel in &self.selections {
            match sel {
                SelCond::VarConst { var, op, value } => {
                    let pos = self
                        .var_first_position(*var)
                        .ok_or_else(|| RelalError::InvalidQuery(format!("unbound var {var}")))?;
                    let col = self.position_column_named(schema, pos)?;
                    let dk = self.position_distance(schema, pos)?;
                    atoms.push(PredicateAtom::ColConst {
                        col,
                        op: *op,
                        value: value.clone(),
                        distance: dk,
                        tol: 0.0,
                    });
                }
                SelCond::VarVar { left, op, right } => {
                    let lpos = self
                        .var_first_position(*left)
                        .ok_or_else(|| RelalError::InvalidQuery(format!("unbound var {left}")))?;
                    let rpos = self
                        .var_first_position(*right)
                        .ok_or_else(|| RelalError::InvalidQuery(format!("unbound var {right}")))?;
                    let dk = self.position_distance(schema, lpos)?;
                    atoms.push(PredicateAtom::ColCol {
                        left: self.position_column_named(schema, lpos)?,
                        op: *op,
                        right: self.position_column_named(schema, rpos)?,
                        distance: dk,
                        tol: 0.0,
                    });
                }
            }
        }
        if !atoms.is_empty() {
            expr = expr.select(Predicate::all(atoms));
        }
        // output projection
        let mut proj = Vec::new();
        for out in &self.output {
            let pos = self.var_first_position(out.var).ok_or_else(|| {
                RelalError::InvalidQuery(format!("unbound output var {}", out.var))
            })?;
            proj.push((out.name.clone(), self.position_column_named(schema, pos)?));
        }
        Ok(expr.project(proj))
    }

    /// The distance kinds of the output columns, in output order.
    pub fn output_distances(&self, schema: &DatabaseSchema) -> Result<Vec<DistanceKind>> {
        self.output
            .iter()
            .map(|o| {
                let pos = self
                    .var_first_position(o.var)
                    .ok_or_else(|| RelalError::InvalidQuery(format!("unbound var {}", o.var)))?;
                self.position_distance(schema, pos)
            })
            .collect()
    }
}

/// A convenience builder for [`SpcQuery`] that manages fresh variables and
/// attribute-name resolution against a schema.
#[derive(Debug, Clone)]
pub struct SpcQueryBuilder<'a> {
    schema: &'a DatabaseSchema,
    atoms: Vec<SpcAtom>,
    terms: Vec<Vec<Term>>,
    selections: Vec<SelCond>,
    output: Vec<OutputCol>,
    next_var: usize,
}

impl<'a> SpcQueryBuilder<'a> {
    /// Starts building a query over `schema`.
    pub fn new(schema: &'a DatabaseSchema) -> Self {
        SpcQueryBuilder {
            schema,
            atoms: Vec::new(),
            terms: Vec::new(),
            selections: Vec::new(),
            output: Vec::new(),
            next_var: 0,
        }
    }

    /// Adds a relation atom with fresh variables in every position and returns
    /// its atom index.
    pub fn atom(&mut self, relation: &str, alias: &str) -> Result<usize> {
        let rel = self.schema.relation(relation)?;
        let terms = (0..rel.arity())
            .map(|_| {
                let v = self.next_var;
                self.next_var += 1;
                Term::Var(v)
            })
            .collect();
        self.atoms.push(SpcAtom {
            relation: relation.to_string(),
            alias: alias.to_string(),
        });
        self.terms.push(terms);
        Ok(self.atoms.len() - 1)
    }

    /// The variable at `(atom, attribute-name)`.
    pub fn var_of(&self, atom: usize, attr: &str) -> Result<usize> {
        let rel = self.schema.relation(&self.atoms[atom].relation)?;
        let idx = rel.attr_index(attr)?;
        self.terms[atom][idx]
            .var()
            .ok_or_else(|| RelalError::InvalidQuery(format!("{attr} of atom {atom} is a constant")))
    }

    /// Binds an attribute of an atom to a constant (`σ_{A=c}` folded into the
    /// tableau).
    pub fn bind_const(
        &mut self,
        atom: usize,
        attr: &str,
        value: impl Into<Value>,
    ) -> Result<&mut Self> {
        let rel = self.schema.relation(&self.atoms[atom].relation)?;
        let idx = rel.attr_index(attr)?;
        self.terms[atom][idx] = Term::Const(value.into());
        Ok(self)
    }

    /// Makes two positions share a variable (equality join).
    pub fn join(&mut self, a: (usize, &str), b: (usize, &str)) -> Result<&mut Self> {
        let va = self.var_of(a.0, a.1)?;
        let vb = self.var_of(b.0, b.1)?;
        // rewrite every occurrence of vb to va
        for terms in &mut self.terms {
            for term in terms {
                if *term == Term::Var(vb) {
                    *term = Term::Var(va);
                }
            }
        }
        for sel in &mut self.selections {
            match sel {
                SelCond::VarConst { var, .. } => {
                    if *var == vb {
                        *var = va;
                    }
                }
                SelCond::VarVar { left, right, .. } => {
                    if *left == vb {
                        *left = va;
                    }
                    if *right == vb {
                        *right = va;
                    }
                }
            }
        }
        for out in &mut self.output {
            if out.var == vb {
                out.var = va;
            }
        }
        Ok(self)
    }

    /// Adds a `attr op constant` selection condition.
    pub fn filter_const(
        &mut self,
        atom: usize,
        attr: &str,
        op: CompareOp,
        value: impl Into<Value>,
    ) -> Result<&mut Self> {
        let var = self.var_of(atom, attr)?;
        self.selections.push(SelCond::VarConst {
            var,
            op,
            value: value.into(),
        });
        Ok(self)
    }

    /// Adds a `left-attr op right-attr` selection condition.
    pub fn filter_cols(
        &mut self,
        a: (usize, &str),
        op: CompareOp,
        b: (usize, &str),
    ) -> Result<&mut Self> {
        let left = self.var_of(a.0, a.1)?;
        let right = self.var_of(b.0, b.1)?;
        self.selections.push(SelCond::VarVar { left, op, right });
        Ok(self)
    }

    /// Adds an output column projecting `atom.attr` under `name`.
    pub fn output(&mut self, atom: usize, attr: &str, name: &str) -> Result<&mut Self> {
        let var = self.var_of(atom, attr)?;
        self.output.push(OutputCol {
            name: name.to_string(),
            var,
        });
        Ok(self)
    }

    /// Finishes the build, validating the query.
    pub fn build(self) -> Result<SpcQuery> {
        let q = SpcQuery {
            atoms: self.atoms,
            terms: self.terms,
            selections: self.selections,
            output: self.output,
        };
        q.validate(self.schema)?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, RelationSchema};

    /// The Example 1 schema of the paper: person, friend, poi.
    pub fn example1_schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![
            RelationSchema::new(
                "person",
                vec![
                    Attribute::id("pid"),
                    Attribute::text("city"),
                    Attribute::text("address"),
                ],
            ),
            RelationSchema::new("friend", vec![Attribute::id("pid"), Attribute::id("fid")]),
            RelationSchema::new(
                "poi",
                vec![
                    Attribute::text("address"),
                    Attribute::categorical("type"),
                    Attribute::text("city"),
                    Attribute::double("price"),
                ],
            ),
        ])
    }

    /// Q1 of Example 1: hotels ≤ $95 in a city where a friend of p0 lives.
    pub fn example1_q1(schema: &DatabaseSchema, p0: i64) -> SpcQuery {
        let mut b = SpcQueryBuilder::new(schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(f, "pid", p0).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.join((p, "city"), (h, "city")).unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 95i64).unwrap();
        b.output(h, "address", "address").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_constructs_q1_with_expected_shape() {
        let schema = example1_schema();
        let q = example1_q1(&schema, 1);
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.output.len(), 2);
        // constants: f.pid = p0, h.type = hotel → 2; joins: 2; explicit: 1
        assert_eq!(q.selection_count(), 5);
        assert_eq!(q.relation_count(), 3);
        q.validate(&schema).unwrap();
    }

    #[test]
    fn var_positions_capture_joins() {
        let schema = example1_schema();
        let q = example1_q1(&schema, 1);
        let shared: Vec<_> = q
            .var_positions()
            .into_iter()
            .filter(|(_, ps)| ps.len() > 1)
            .collect();
        // two join variables: fid=pid and city=city
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn to_ra_produces_product_select_project() {
        let schema = example1_schema();
        let q = example1_q1(&schema, 1);
        let ra = q.to_ra(&schema).unwrap();
        assert_eq!(ra.relation_count(), 3);
        match &ra {
            RaExpr::Project { input, columns } => {
                assert_eq!(columns.len(), 2);
                assert!(matches!(**input, RaExpr::Select { .. }));
            }
            other => panic!("unexpected root: {other:?}"),
        }
    }

    #[test]
    fn position_column_named_uses_schema_names() {
        let schema = example1_schema();
        let q = example1_q1(&schema, 1);
        // atom 2 is poi AS h; attribute 3 is price
        assert_eq!(q.position_column_named(&schema, (2, 3)).unwrap(), "h.price");
        assert!(q.position_column_named(&schema, (2, 9)).is_err());
    }

    #[test]
    fn validate_rejects_duplicate_aliases_and_bad_arity() {
        let schema = example1_schema();
        let mut q = example1_q1(&schema, 1);
        q.atoms[1].alias = "f".into();
        assert!(q.validate(&schema).is_err());

        let mut q2 = example1_q1(&schema, 1);
        q2.terms[0].pop();
        assert!(q2.validate(&schema).is_err());
    }

    #[test]
    fn validate_rejects_unbound_output_var() {
        let schema = example1_schema();
        let mut q = example1_q1(&schema, 1);
        q.output.push(OutputCol {
            name: "ghost".into(),
            var: 999,
        });
        assert!(q.validate(&schema).is_err());
    }

    #[test]
    fn validate_rejects_empty_output() {
        let schema = example1_schema();
        let mut q = example1_q1(&schema, 1);
        q.output.clear();
        assert!(q.validate(&schema).is_err());
    }

    #[test]
    fn output_distances_follow_schema() {
        let schema = example1_schema();
        let q = example1_q1(&schema, 1);
        let d = q.output_distances(&schema).unwrap();
        assert_eq!(d, vec![DistanceKind::Trivial, DistanceKind::Numeric]);
    }

    #[test]
    fn num_vars_counts_all_variables() {
        let schema = example1_schema();
        let q = example1_q1(&schema, 1);
        // 3 + 2 + 4 = 9 positions created; two joins merge two pairs → but
        // num_vars counts the max index + 1 (fresh vars are not renumbered)
        assert!(q.num_vars() >= 7);
    }

    #[test]
    fn selection_count_tracks_explicit_conditions() {
        let schema = example1_schema();
        let mut b = SpcQueryBuilder::new(&schema);
        let p = b.atom("person", "p").unwrap();
        b.output(p, "city", "city").unwrap();
        let q = b.build().unwrap();
        assert_eq!(q.selection_count(), 0);
    }
}
