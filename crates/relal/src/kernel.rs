//! Fixed-width chunked selection kernels: branchless compare-to-bitmask over
//! the raw typed column slices.
//!
//! This is the hot half of the predicate evaluator. Each [`PredicateAtom`] is
//! compiled once per relation into an `AtomMask`: a typed kernel that fills
//! one `u64` *mask word* per [`MASK_CHUNK`] = 64 consecutive rows (bit `j` set
//! ⇔ the atom holds on row `base + j`). Inside a word, rows are processed in
//! lanes of [`LANE_WIDTH`] via `chunks_exact`, so the compare loops are
//! fixed-width, branch-free and autovectorizable on stable Rust (no
//! `std::simd`); the tail of a word (and the final partial word of a
//! relation) falls back to the same scalar compare, bit-packed at the correct
//! lane offset, so masks are identical for every `n mod LANE_WIDTH`.
//!
//! The fused driver (`fused_selection`) evaluates a conjunction one word at
//! a time: the first atom's word is ANDed with each further atom's word,
//! short-circuiting to the next chunk as soon as a word reaches zero, and
//! selected row indices are emitted from the surviving bits
//! (`trailing_zeros`). This replaces the per-row `Box<dyn Fn(usize) -> bool>`
//! chain of the row-at-a-time path (kept as [`PredicateAtom::kernel`], the
//! scalar reference the property suite and the `figures kernel` table compare
//! against) with one indirect dispatch per atom per 64 rows.
//!
//! Float comparisons under the exact (`tol ≤ 0`) predicates use the total
//! order of [`Value`]: a float is mapped to its monotone total-order integer
//! key ([`f64_total_key`]), so `-0.0 < +0.0` and the NaN ordering of
//! `f64::total_cmp` are preserved bit for bit while the compare itself is a
//! branchless integer compare. Relaxed inequalities compare raw floats
//! against a bound precomputed exactly as the row evaluator computes it
//! (`c ± tol·unit`), so the admitted row set is bit-identical.

use std::sync::Arc;

use crate::distance::DistanceKind;
use crate::error::Result;
use crate::predicate::{col_col_kernel, const_kernel, CompareOp, PredicateAtom};
use crate::storage::{Column, Relation};
use crate::value::Value;

/// Number of values processed per fixed-width inner lane loop. The compare
/// loops run over `chunks_exact(LANE_WIDTH)` sub-blocks of each mask word, so
/// the compiler sees a constant-trip-count, branch-free loop body.
pub const LANE_WIDTH: usize = 8;

/// Number of rows covered by one `u64` mask word — the unit of the fused
/// conjunction evaluator and of the executor's shard alignment.
pub const MASK_CHUNK: usize = 64;

// The word loops place LANE_WIDTH-bit groups at lane offsets inside a mask
// word; a lane width that does not divide the word stride would misalign the
// packed bits.
const _: () = assert!(MASK_CHUNK.is_multiple_of(LANE_WIDTH));
const _: () = assert!(MASK_CHUNK == u64::BITS as usize);

/// The monotone integer key of a float under IEEE-754 total order:
/// `f64_total_key(a) < f64_total_key(b)` ⇔ `a.total_cmp(&b) == Less` (and
/// equality of keys ⇔ equality of bit patterns). Self-inverse modulo the bit
/// transmutation — see [`f64_from_total_key`].
#[inline(always)]
pub fn f64_total_key(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    b ^ (((b >> 63) as u64) >> 1) as i64
}

/// Inverse of [`f64_total_key`].
#[inline(always)]
pub fn f64_from_total_key(k: i64) -> f64 {
    let b = k ^ (((k >> 63) as u64) >> 1) as i64;
    f64::from_bits(b as u64)
}

/// A full mask word for `len` rows (`len ≤ 64`).
#[inline(always)]
fn full_word(len: usize) -> u64 {
    debug_assert!(len <= MASK_CHUNK);
    if len >= MASK_CHUNK {
        !0
    } else {
        (1u64 << len) - 1
    }
}

/// Packs `f` over one slice into a mask word: bit `j` ⇔ `f(s[j])`. Lanes of
/// [`LANE_WIDTH`] via `chunks_exact`; the remainder is packed at the next
/// lane offset.
#[inline(always)]
fn pack1<T: Copy>(s: &[T], f: impl Fn(T) -> bool) -> u64 {
    debug_assert!(s.len() <= MASK_CHUNK);
    let mut w = 0u64;
    let mut lane = 0u32;
    let mut it = s.chunks_exact(LANE_WIDTH);
    for chunk in it.by_ref() {
        let mut bits = 0u64;
        for (j, &x) in chunk.iter().enumerate() {
            bits |= (f(x) as u64) << j;
        }
        w |= bits << lane;
        lane += LANE_WIDTH as u32;
    }
    for (j, &x) in it.remainder().iter().enumerate() {
        w |= (f(x) as u64) << (lane as usize + j);
    }
    w
}

/// Packs `f` over two equal-length slices into a mask word.
#[inline(always)]
fn pack2<A: Copy, B: Copy>(a: &[A], b: &[B], f: impl Fn(A, B) -> bool) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() <= MASK_CHUNK);
    let mut w = 0u64;
    let mut lane = 0u32;
    let mut ia = a.chunks_exact(LANE_WIDTH);
    let mut ib = b.chunks_exact(LANE_WIDTH);
    for (ca, cb) in ia.by_ref().zip(ib.by_ref()) {
        let mut bits = 0u64;
        for j in 0..LANE_WIDTH {
            bits |= (f(ca[j], cb[j]) as u64) << j;
        }
        w |= bits << lane;
        lane += LANE_WIDTH as u32;
    }
    for (j, (&x, &y)) in ia.remainder().iter().zip(ib.remainder()).enumerate() {
        w |= (f(x, y) as u64) << (lane as usize + j);
    }
    w
}

/// Applies `op` to `key(x)` vs a constant, packing one word. `K` is an
/// integer total-order key (or a raw float for the relaxed bound compares,
/// which only ever use the inequality operators).
#[inline(always)]
fn pack_cmp<T: Copy, K: PartialOrd + PartialEq + Copy>(
    s: &[T],
    op: CompareOp,
    key: impl Fn(T) -> K + Copy,
    c: K,
) -> u64 {
    match op {
        CompareOp::Eq => pack1(s, |x| key(x) == c),
        CompareOp::Ne => pack1(s, |x| key(x) != c),
        CompareOp::Lt => pack1(s, |x| key(x) < c),
        CompareOp::Le => pack1(s, |x| key(x) <= c),
        CompareOp::Gt => pack1(s, |x| key(x) > c),
        CompareOp::Ge => pack1(s, |x| key(x) >= c),
    }
}

/// Applies `op` to `ka(x)` vs `kb(y)` pairwise, packing one word.
#[inline(always)]
fn pack2_cmp<A: Copy, B: Copy, K: PartialOrd + PartialEq + Copy>(
    a: &[A],
    b: &[B],
    op: CompareOp,
    ka: impl Fn(A) -> K + Copy,
    kb: impl Fn(B) -> K + Copy,
) -> u64 {
    match op {
        CompareOp::Eq => pack2(a, b, |x, y| ka(x) == kb(y)),
        CompareOp::Ne => pack2(a, b, |x, y| ka(x) != kb(y)),
        CompareOp::Lt => pack2(a, b, |x, y| ka(x) < kb(y)),
        CompareOp::Le => pack2(a, b, |x, y| ka(x) <= kb(y)),
        CompareOp::Gt => pack2(a, b, |x, y| ka(x) > kb(y)),
        CompareOp::Ge => pack2(a, b, |x, y| ka(x) >= kb(y)),
    }
}

/// Relaxed inequality band over two float projections: `x op (y ± slack)`
/// with the raw float comparisons of `CompareOp::eval_relaxed`.
#[inline(always)]
fn pack2_band<A: Copy, B: Copy>(
    a: &[A],
    b: &[B],
    op: CompareOp,
    fa: impl Fn(A) -> f64 + Copy,
    fb: impl Fn(B) -> f64 + Copy,
    slack: f64,
) -> u64 {
    match op {
        CompareOp::Lt => pack2(a, b, |x, y| fa(x) < fb(y) + slack),
        CompareOp::Le => pack2(a, b, |x, y| fa(x) <= fb(y) + slack),
        CompareOp::Gt => pack2(a, b, |x, y| fa(x) > fb(y) - slack),
        CompareOp::Ge => pack2(a, b, |x, y| fa(x) >= fb(y) - slack),
        CompareOp::Eq | CompareOp::Ne => unreachable!("bands are built for inequalities only"),
    }
}

/// A raw numeric column slice (the two typed sources of float-interpreted
/// compares).
#[derive(Clone, Copy)]
pub(crate) enum NumSlice<'a> {
    /// An `i64` column read as `x as f64` where a float view is needed.
    I(&'a [i64]),
    /// An `f64` column.
    F(&'a [f64]),
}

/// One compiled predicate atom: fills one mask word per call. All variants
/// reproduce the row-at-a-time evaluator ([`PredicateAtom::eval`]) bit for
/// bit; the `Scalar` fallback *is* the row evaluator, packed into words.
pub(crate) enum AtomMask<'a> {
    /// The constantly-true atom (e.g. a categorical relaxation that admits
    /// every pair).
    True,
    /// Dictionary-coded string column vs constant: one verdict per distinct
    /// string, looked up by code.
    StrTable { codes: &'a [u32], table: Vec<bool> },
    /// String column = string column on dictionary codes (`map` translates
    /// right codes into the left dictionary's id space; `u32::MAX` marks a
    /// right string absent from the left dictionary).
    SSEq {
        la: &'a [u32],
        ra: &'a [u32],
        map: Option<Vec<u32>>,
    },
    /// String column ≠ string column on dictionary codes.
    SSNe {
        la: &'a [u32],
        ra: &'a [u32],
        map: Option<Vec<u32>>,
    },
    /// Integer column vs integer constant under the exact integer order.
    IntCmp {
        xs: &'a [i64],
        op: CompareOp,
        c: i64,
    },
    /// Numeric column vs numeric constant under the float total order
    /// (branchless integer compare on [`f64_total_key`]s).
    KeyCmpConst {
        xs: NumSlice<'a>,
        op: CompareOp,
        key: i64,
    },
    /// Relaxed inequality vs a precomputed bound `c ± tol·unit` (raw float
    /// compare, exactly as the row evaluator widens thresholds).
    BoundConst {
        xs: NumSlice<'a>,
        op: CompareOp,
        bound: f64,
    },
    /// Relaxed equality of an integer column vs an integer constant:
    /// `x = c ∨ gap(x, c) ≤ tol`.
    RelaxedEqConstI {
        xs: &'a [i64],
        c: i64,
        cf: f64,
        dk: DistanceKind,
        tol: f64,
    },
    /// Relaxed equality of a numeric column vs a float constant (equality on
    /// float bit patterns ⇔ `total_cmp == Equal`).
    RelaxedEqConstF {
        xs: NumSlice<'a>,
        cbits: u64,
        cf: f64,
        dk: DistanceKind,
        tol: f64,
    },
    /// Integer column vs integer column under the exact integer order.
    IICmp {
        xs: &'a [i64],
        ys: &'a [i64],
        op: CompareOp,
    },
    /// Relaxed equality of two integer columns.
    IIRelaxedEq {
        xs: &'a [i64],
        ys: &'a [i64],
        dk: DistanceKind,
        tol: f64,
    },
    /// Numeric column vs numeric column under the float total order (at
    /// least one side is a float column).
    KeyCmp2 {
        a: NumSlice<'a>,
        b: NumSlice<'a>,
        op: CompareOp,
    },
    /// Relaxed equality of two numeric columns, at least one a float column
    /// (equality on the float bit patterns of both sides).
    RelaxedEq2 {
        a: NumSlice<'a>,
        b: NumSlice<'a>,
        dk: DistanceKind,
        tol: f64,
    },
    /// Relaxed inequality band between two numeric columns:
    /// `x op (y ± tol·unit)`.
    Band2 {
        a: NumSlice<'a>,
        b: NumSlice<'a>,
        op: CompareOp,
        slack: f64,
    },
    /// Row-at-a-time fallback (Bool/Mixed columns, non-numeric constants,
    /// lexicographic string inequalities): the scalar kernel packed into
    /// words.
    Scalar(Box<dyn Fn(usize) -> bool + 'a>),
}

impl AtomMask<'_> {
    /// The mask word for rows `base .. base + len` (`len ≤ 64`).
    pub(crate) fn word(&self, base: usize, len: usize) -> u64 {
        debug_assert!((1..=MASK_CHUNK).contains(&len));
        let r = base..base + len;
        match self {
            AtomMask::True => full_word(len),
            AtomMask::StrTable { codes, table } => pack1(&codes[r], |c| table[c as usize]),
            AtomMask::SSEq { la, ra, map } => match map {
                None => pack2(&la[r.clone()], &ra[r], |a, b| a == b),
                Some(m) => pack2(&la[r.clone()], &ra[r], |a, b| a == m[b as usize]),
            },
            AtomMask::SSNe { la, ra, map } => match map {
                None => pack2(&la[r.clone()], &ra[r], |a, b| a != b),
                Some(m) => pack2(&la[r.clone()], &ra[r], |a, b| a != m[b as usize]),
            },
            AtomMask::IntCmp { xs, op, c } => pack_cmp(&xs[r], *op, |x| x, *c),
            AtomMask::KeyCmpConst { xs, op, key } => match xs {
                NumSlice::I(s) => pack_cmp(&s[r], *op, |x| f64_total_key(x as f64), *key),
                NumSlice::F(s) => pack_cmp(&s[r], *op, f64_total_key, *key),
            },
            AtomMask::BoundConst { xs, op, bound } => match xs {
                NumSlice::I(s) => pack_cmp(&s[r], *op, |x| x as f64, *bound),
                NumSlice::F(s) => pack_cmp(&s[r], *op, |x| x, *bound),
            },
            AtomMask::RelaxedEqConstI { xs, c, cf, dk, tol } => {
                let (c, cf, dk, tol) = (*c, *cf, *dk, *tol);
                pack1(&xs[r], |x| x == c || dk.numeric_gap(x as f64, cf) <= tol)
            }
            AtomMask::RelaxedEqConstF {
                xs,
                cbits,
                cf,
                dk,
                tol,
            } => {
                let (cbits, cf, dk, tol) = (*cbits, *cf, *dk, *tol);
                match xs {
                    NumSlice::I(s) => pack1(&s[r], |x| {
                        let xf = x as f64;
                        xf.to_bits() == cbits || dk.numeric_gap(xf, cf) <= tol
                    }),
                    NumSlice::F(s) => pack1(&s[r], |x| {
                        x.to_bits() == cbits || dk.numeric_gap(x, cf) <= tol
                    }),
                }
            }
            AtomMask::IICmp { xs, ys, op } => pack2_cmp(&xs[r.clone()], &ys[r], *op, |x| x, |y| y),
            AtomMask::IIRelaxedEq { xs, ys, dk, tol } => {
                let (dk, tol) = (*dk, *tol);
                pack2(&xs[r.clone()], &ys[r], |x, y| {
                    x == y || dk.numeric_gap(x as f64, y as f64) <= tol
                })
            }
            AtomMask::KeyCmp2 { a, b, op } => match (a, b) {
                (NumSlice::I(x), NumSlice::I(y)) => pack2_cmp(
                    &x[r.clone()],
                    &y[r],
                    *op,
                    |v| f64_total_key(v as f64),
                    |v| f64_total_key(v as f64),
                ),
                (NumSlice::I(x), NumSlice::F(y)) => pack2_cmp(
                    &x[r.clone()],
                    &y[r],
                    *op,
                    |v| f64_total_key(v as f64),
                    f64_total_key,
                ),
                (NumSlice::F(x), NumSlice::I(y)) => {
                    pack2_cmp(&x[r.clone()], &y[r], *op, f64_total_key, |v| {
                        f64_total_key(v as f64)
                    })
                }
                (NumSlice::F(x), NumSlice::F(y)) => {
                    pack2_cmp(&x[r.clone()], &y[r], *op, f64_total_key, f64_total_key)
                }
            },
            AtomMask::RelaxedEq2 { a, b, dk, tol } => {
                let (dk, tol) = (*dk, *tol);
                let eq_gap = move |xf: f64, yf: f64| {
                    xf.to_bits() == yf.to_bits() || dk.numeric_gap(xf, yf) <= tol
                };
                match (a, b) {
                    (NumSlice::I(x), NumSlice::I(y)) => {
                        pack2(&x[r.clone()], &y[r], |x, y| eq_gap(x as f64, y as f64))
                    }
                    (NumSlice::I(x), NumSlice::F(y)) => {
                        pack2(&x[r.clone()], &y[r], |x, y| eq_gap(x as f64, y))
                    }
                    (NumSlice::F(x), NumSlice::I(y)) => {
                        pack2(&x[r.clone()], &y[r], |x, y| eq_gap(x, y as f64))
                    }
                    (NumSlice::F(x), NumSlice::F(y)) => pack2(&x[r.clone()], &y[r], eq_gap),
                }
            }
            AtomMask::Band2 { a, b, op, slack } => {
                let slack = *slack;
                match (a, b) {
                    (NumSlice::I(x), NumSlice::I(y)) => {
                        pack2_band(&x[r.clone()], &y[r], *op, |v| v as f64, |v| v as f64, slack)
                    }
                    (NumSlice::I(x), NumSlice::F(y)) => {
                        pack2_band(&x[r.clone()], &y[r], *op, |v| v as f64, |v| v, slack)
                    }
                    (NumSlice::F(x), NumSlice::I(y)) => {
                        pack2_band(&x[r.clone()], &y[r], *op, |v| v, |v| v as f64, slack)
                    }
                    (NumSlice::F(x), NumSlice::F(y)) => {
                        pack2_band(&x[r.clone()], &y[r], *op, |v| v, |v| v, slack)
                    }
                }
            }
            AtomMask::Scalar(f) => {
                let mut w = 0u64;
                for j in 0..len {
                    w |= (f(base + j) as u64) << j;
                }
                w
            }
        }
    }
}

/// `true` when the operator is one of the four inequalities.
fn is_ineq(op: CompareOp) -> bool {
    matches!(
        op,
        CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge
    )
}

/// The relaxed bound `c ± tol·unit` for an inequality against constant `c` —
/// computed with the exact expression the row evaluator uses per row.
fn relaxed_bound(op: CompareOp, c: f64, dk: DistanceKind, tol: f64) -> f64 {
    match op {
        CompareOp::Lt | CompareOp::Le => c + tol * dk.unit(),
        CompareOp::Gt | CompareOp::Ge => c - tol * dk.unit(),
        _ => unreachable!("bounds are built for inequalities only"),
    }
}

/// Compiles one atom into its mask kernel over the columns of `rel`.
/// Column resolution errors are exactly those of [`PredicateAtom::kernel`].
pub(crate) fn compile_atom<'a>(atom: &'a PredicateAtom, rel: &'a Relation) -> Result<AtomMask<'a>> {
    match atom {
        PredicateAtom::ColConst {
            col,
            op,
            value,
            distance,
            tol,
        } => {
            let c = rel.col(rel.column_index(col)?);
            let (op, dk, tol) = (*op, *distance, *tol);
            Ok(match c {
                Column::Str { codes, dict } => {
                    let table: Vec<bool> = dict
                        .strings()
                        .iter()
                        .map(|s| op.eval_relaxed(&Value::Str(s.clone()), value, dk, tol))
                        .collect();
                    AtomMask::StrTable { codes, table }
                }
                Column::Int(xs) => match value {
                    Value::Int(c0) if tol <= 0.0 => AtomMask::IntCmp { xs, op, c: *c0 },
                    Value::Int(c0) => match op {
                        CompareOp::Eq => AtomMask::RelaxedEqConstI {
                            xs,
                            c: *c0,
                            cf: *c0 as f64,
                            dk,
                            tol,
                        },
                        CompareOp::Ne => AtomMask::IntCmp { xs, op, c: *c0 },
                        _ => AtomMask::BoundConst {
                            xs: NumSlice::I(xs),
                            op,
                            bound: relaxed_bound(op, *c0 as f64, dk, tol),
                        },
                    },
                    Value::Double(c0) => num_const_mask(NumSlice::I(xs), op, *c0, dk, tol),
                    _ => AtomMask::Scalar(const_kernel(c, op, value, dk, tol)),
                },
                Column::Float(xs) => match value.as_f64() {
                    Some(cf) if value.is_numeric() => {
                        num_const_mask(NumSlice::F(xs), op, cf, dk, tol)
                    }
                    _ => AtomMask::Scalar(const_kernel(c, op, value, dk, tol)),
                },
                Column::Bool(_) | Column::Mixed(_) => {
                    AtomMask::Scalar(const_kernel(c, op, value, dk, tol))
                }
            })
        }
        PredicateAtom::ColCol {
            left,
            op,
            right,
            distance,
            tol,
        } => {
            let lc = rel.col(rel.column_index(left)?);
            let rc = rel.col(rel.column_index(right)?);
            let (op, dk, tol) = (*op, *distance, *tol);
            Ok(match (lc, rc) {
                (Column::Int(xs), Column::Int(ys)) => {
                    if tol <= 0.0 || op == CompareOp::Ne {
                        AtomMask::IICmp { xs, ys, op }
                    } else if op == CompareOp::Eq {
                        AtomMask::IIRelaxedEq { xs, ys, dk, tol }
                    } else {
                        AtomMask::Band2 {
                            a: NumSlice::I(xs),
                            b: NumSlice::I(ys),
                            op,
                            slack: tol * dk.unit(),
                        }
                    }
                }
                (Column::Int(xs), Column::Float(ys)) => {
                    num_col_mask(NumSlice::I(xs), NumSlice::F(ys), op, dk, tol)
                }
                (Column::Float(xs), Column::Int(ys)) => {
                    num_col_mask(NumSlice::F(xs), NumSlice::I(ys), op, dk, tol)
                }
                (Column::Float(xs), Column::Float(ys)) => {
                    num_col_mask(NumSlice::F(xs), NumSlice::F(ys), op, dk, tol)
                }
                (
                    Column::Str {
                        codes: la,
                        dict: ld,
                    },
                    Column::Str {
                        codes: ra,
                        dict: rd,
                    },
                ) => {
                    if is_ineq(op) {
                        // lexicographic string inequalities stay row-at-a-time
                        AtomMask::Scalar(col_col_kernel(lc, rc, op, dk, tol))
                    } else {
                        let map = if Arc::ptr_eq(ld, rd) {
                            None
                        } else {
                            Some(
                                rd.strings()
                                    .iter()
                                    .map(|s| ld.code_of(s).unwrap_or(u32::MAX))
                                    .collect::<Vec<u32>>(),
                            )
                        };
                        match op {
                            CompareOp::Ne => AtomMask::SSNe { la, ra, map },
                            CompareOp::Eq => {
                                if tol > 0.0 && dk == DistanceKind::Categorical && 1.0 <= tol {
                                    // the categorical relaxation admits every
                                    // pair of strings
                                    AtomMask::True
                                } else {
                                    AtomMask::SSEq { la, ra, map }
                                }
                            }
                            _ => unreachable!("inequalities handled above"),
                        }
                    }
                }
                _ => AtomMask::Scalar(col_col_kernel(lc, rc, op, dk, tol)),
            })
        }
    }
}

/// Mask for a numeric column vs a float constant (the shared tail of the
/// `Int`-column-vs-`Double` and `Float`-column-vs-numeric dispatches).
fn num_const_mask(
    xs: NumSlice<'_>,
    op: CompareOp,
    cf: f64,
    dk: DistanceKind,
    tol: f64,
) -> AtomMask<'_> {
    if tol <= 0.0 || op == CompareOp::Ne {
        AtomMask::KeyCmpConst {
            xs,
            op,
            key: f64_total_key(cf),
        }
    } else if op == CompareOp::Eq {
        AtomMask::RelaxedEqConstF {
            xs,
            cbits: cf.to_bits(),
            cf,
            dk,
            tol,
        }
    } else {
        AtomMask::BoundConst {
            xs,
            op,
            bound: relaxed_bound(op, cf, dk, tol),
        }
    }
}

/// Mask for a numeric column vs a numeric column with at least one float
/// side (total-order key compares when exact, bit-equality + gap when a
/// relaxed equality, a float band when a relaxed inequality).
fn num_col_mask<'a>(
    a: NumSlice<'a>,
    b: NumSlice<'a>,
    op: CompareOp,
    dk: DistanceKind,
    tol: f64,
) -> AtomMask<'a> {
    if tol <= 0.0 || op == CompareOp::Ne {
        AtomMask::KeyCmp2 { a, b, op }
    } else if op == CompareOp::Eq {
        AtomMask::RelaxedEq2 { a, b, dk, tol }
    } else {
        AtomMask::Band2 {
            a,
            b,
            op,
            slack: tol * dk.unit(),
        }
    }
}

/// Evaluates a compiled conjunction over `n` rows, emitting the selected row
/// indices in row order. One mask word at a time: the first atom's word is
/// ANDed with the remaining atoms' words, skipping to the next chunk as soon
/// as the word dies; indices are emitted from the surviving bits.
pub(crate) fn fused_selection(masks: &[AtomMask<'_>], n: usize) -> Vec<usize> {
    if masks.is_empty() {
        return (0..n).collect();
    }
    let (first, rest) = masks.split_first().expect("non-empty masks");
    let mut out = Vec::new();
    let mut base = 0usize;
    while base < n {
        let len = (n - base).min(MASK_CHUNK);
        let mut w = first.word(base, len);
        for m in rest {
            if w == 0 {
                break;
            }
            w &= m.word(base, len);
        }
        while w != 0 {
            let j = w.trailing_zeros() as usize;
            out.push(base + j);
            w &= w - 1;
        }
        base += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_key_orders_like_total_cmp() {
        let vals = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1.0e-300,
            2.5,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        for &a in &vals {
            assert_eq!(a.to_bits(), f64_from_total_key(f64_total_key(a)).to_bits());
            for &b in &vals {
                assert_eq!(
                    f64_total_key(a).cmp(&f64_total_key(b)),
                    a.total_cmp(&b),
                    "key order must match total_cmp for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn pack_handles_all_tail_lengths() {
        for n in 0..=MASK_CHUNK {
            let xs: Vec<i64> = (0..n as i64).collect();
            let w = pack1(&xs, |x| x % 2 == 0);
            for (j, &x) in xs.iter().enumerate() {
                assert_eq!((w >> j) & 1 == 1, x % 2 == 0, "n={n} j={j}");
            }
            // bits beyond n must be zero
            if n < MASK_CHUNK {
                assert_eq!(w >> n, 0, "high bits must be clear at n={n}");
            }
        }
    }

    #[test]
    fn full_word_masks_exactly_len_bits() {
        assert_eq!(full_word(0), 0);
        assert_eq!(full_word(1), 1);
        assert_eq!(full_word(63), (1u64 << 63) - 1);
        assert_eq!(full_word(64), !0);
    }
}
