//! Attribute values and value types.
//!
//! Values are the atoms stored in tuples. They need a *total* order and a
//! stable hash (doubles are ordered/hashed through their IEEE-754 total order)
//! because they are used as keys of access-schema indices and as members of
//! set-semantics relations.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of an attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point.
    Double,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Double => write!(f, "double"),
            ValueType::Str => write!(f, "str"),
            ValueType::Bool => write!(f, "bool"),
        }
    }
}

/// A single attribute value.
///
/// `Null` is included for completeness (outer data sources may have missing
/// values); the evaluator treats `Null` as distinct from every non-null value
/// and comparable only through the trivial distance.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Ordered and hashed via the IEEE-754 total order so the
    /// value can be used as an index key.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Missing value.
    Null,
}

impl Value {
    /// Returns the [`ValueType`] of this value, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Int(_) => Some(ValueType::Int),
            Value::Double(_) => Some(ValueType::Double),
            Value::Str(_) => Some(ValueType::Str),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Null => None,
        }
    }

    /// Interprets the value as a float if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Interprets the value as an integer if it is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interprets the value as a string slice if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns `true` if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` if the value is numeric (`Int` or `Double`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Double(_))
    }

    /// Canonical discriminant used for cross-type ordering.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 2, // numeric values compare among themselves
            Value::Str(_) => 3,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Numeric comparison helper: `Int` and `Double` compare by numeric value.
fn numeric_cmp(a: &Value, b: &Value) -> Option<Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        _ => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            Some(x.total_cmp(&y))
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.is_numeric() && other.is_numeric() {
            return numeric_cmp(self, other).expect("both numeric");
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // hash Int and Double compatibly when the double is integral, so
            // that Int(3) == Double(3.0) implies equal hashes.
            Value::Int(i) => {
                state.write_u8(2);
                state.write_i64(*i);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Double(d) => {
                state.write_u8(2);
                if d.fract() == 0.0 && *d >= i64::MIN as f64 && *d <= i64::MAX as f64 {
                    state.write_i64(*d as i64);
                } else {
                    state.write_i64(i64::MIN);
                }
                state.write_u64(d.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Null => state.write_u8(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashSet;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn value_type_reports_correct_type() {
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
        assert_eq!(Value::Double(1.0).value_type(), Some(ValueType::Double));
        assert_eq!(Value::from("x").value_type(), Some(ValueType::Str));
        assert_eq!(Value::Bool(true).value_type(), Some(ValueType::Bool));
        assert_eq!(Value::Null.value_type(), None);
    }

    #[test]
    fn numeric_values_compare_across_int_and_double() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert!(Value::Int(3) < Value::Double(3.5));
        assert!(Value::Double(2.5) < Value::Int(3));
        assert_eq!(Value::Int(3).cmp(&Value::Double(3.0)), Ordering::Equal);
    }

    #[test]
    fn equal_int_and_double_hash_identically_when_integral() {
        // Not required by Rust, but required for our hash-join correctness:
        // equal values must have equal hashes.
        assert_eq!(Value::Int(42), Value::Double(42.0));
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Double(42.0)));
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert!(Value::from("abc") < Value::from("abd"));
        assert_eq!(Value::from("abc"), Value::from("abc"));
    }

    #[test]
    fn nulls_are_equal_to_each_other_only() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Null, Value::from(""));
    }

    #[test]
    fn values_usable_in_hash_sets() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::Double(1.0));
        set.insert(Value::from("1"));
        // Int(1) and Double(1.0) are equal, so only two distinct members.
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn as_f64_and_as_i64_conversions() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Double(7.25).as_f64(), Some(7.25));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Double(7.0).as_i64(), None);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut vals = [
            Value::from("z"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Double(0.5),
        ];
        vals.sort();
        // Null < Bool < numerics < Str per type_rank.
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[4], Value::from("z"));
    }
}
