//! # beas-relal — relational substrate for BEAS
//!
//! This crate provides the relational machinery that the BEAS reproduction is
//! built on: typed [`Value`]s, per-attribute [`distance`] functions, relation
//! and database [`schema`]s, **columnar** in-memory [`storage`] (one typed
//! [`Column`] vector per attribute, dictionary-coded strings, rows only at
//! the conversion boundary), relational-algebra [`expr`]essions (selection,
//! projection, Cartesian product, union, set difference, renaming),
//! conjunctive ([`spc`]) queries, aggregate queries and an exact
//! [`eval`]uator used both for ground truth and for executing the evaluation
//! part of bounded query plans. Selection predicates compile to vectorized
//! per-column kernels ([`predicate`]), hash joins key on dictionary codes,
//! and numeric band joins sort raw `f64` columns.
//!
//! The paper ("Data Driven Approximation with Bounded Resources", VLDB 2017)
//! runs BEAS on top of a commercial DBMS; this crate plays that role here so
//! that the whole system is self-contained.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod error;
pub mod eval;
pub mod expr;
pub mod fasthash;
pub mod predicate;
pub mod schema;
pub mod spc;
pub mod storage;
pub mod value;

pub use distance::{tuple_distance, DistanceKind};
pub use error::{RelalError, Result};
pub use eval::{
    aggregate_relation, eval_aggregate, eval_bag, eval_query, eval_set, OverlayProvider,
    RelationProvider,
};
pub use expr::{AggFunc, GroupByQuery, QueryExpr, RaExpr};
pub use fasthash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use predicate::{CompareOp, Predicate, PredicateAtom};
pub use schema::{Attribute, DatabaseSchema, RelationSchema};
pub use spc::{OutputCol, Position, SelCond, SpcAtom, SpcQuery, SpcQueryBuilder, Term};
pub use storage::{Column, Database, Relation, Row, StrDict};
pub use value::{Value, ValueType};
