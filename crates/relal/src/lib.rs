//! # beas-relal — relational substrate for BEAS
//!
//! This crate provides the relational machinery that the BEAS reproduction is
//! built on: typed [`Value`]s, per-attribute [`distance`] functions, relation
//! and database [`schema`]s, **columnar** in-memory [`storage`] (one typed
//! [`Column`] vector per attribute, dictionary-coded strings, rows only at
//! the conversion boundary), relational-algebra [`expr`]essions (selection,
//! projection, Cartesian product, union, set difference, renaming),
//! conjunctive ([`spc`]) queries, aggregate queries and an exact
//! [`eval`]uator used both for ground truth and for executing the evaluation
//! part of bounded query plans. Selection predicates compile to fixed-width
//! chunked mask kernels ([`kernel`]): each atom fills one `u64` bitmask per
//! 64 rows straight off the raw `&[i64]`/`&[f64]`/`&[u32]` column slices
//! (branchless compare-to-bitmask in lanes of [`kernel::LANE_WIDTH`], scalar
//! tail at the same lane offsets), the conjunction ANDs mask words
//! chunk-by-chunk, and selected row indices are emitted from the surviving
//! bits. Hash joins key on dictionary codes, and numeric band joins sort
//! monotone integer total-order keys of the raw `f64` columns.
//!
//! The paper ("Data Driven Approximation with Bounded Resources", VLDB 2017)
//! runs BEAS on top of a commercial DBMS; this crate plays that role here so
//! that the whole system is self-contained.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod error;
pub mod eval;
pub mod expr;
pub mod fasthash;
pub mod kernel;
pub mod predicate;
pub mod schema;
pub mod spc;
pub mod storage;
pub mod value;

pub use distance::{tuple_distance, DistanceKind};
pub use error::{RelalError, Result};
pub use eval::{
    aggregate_relation, eval_aggregate, eval_bag, eval_query, eval_set, qualify_relation,
    OverlayProvider, RelationProvider,
};
pub use expr::{AggFunc, GroupByQuery, QueryExpr, RaExpr};
pub use fasthash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use predicate::{CompareOp, Predicate, PredicateAtom};
pub use schema::{Attribute, DatabaseSchema, RelationSchema};
pub use spc::{OutputCol, Position, SelCond, SpcAtom, SpcQuery, SpcQueryBuilder, Term};
pub use storage::{Column, Database, Relation, Row, StrDict};
pub use value::{Value, ValueType};
