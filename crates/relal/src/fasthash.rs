//! A fast, non-cryptographic hasher for the columnar hot paths.
//!
//! The evaluator's inner loops are dominated by hash-map operations over
//! short keys: dictionary interning (`&str` of a few bytes), join keys
//! (small `Vec`s of codes/values), group-by keys and index-bucket lookups.
//! `std`'s default SipHash is DoS-resistant but pays several rounds per
//! word, which is the wrong trade for these process-internal, short-lived
//! maps. This module provides the rustc-style multiply-rotate hash (FxHash):
//! one rotate + xor + multiply per word, with specialised integer methods so
//! `Value`'s `write_u64`/`write_i64` calls never fall back to byte loops.
//!
//! Quality is adequate for `HashMap` bucketing of the key shapes above; none
//! of these maps is exposed to untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            word[7] = rest.len() as u8; // length tag disambiguates padding
            self.add(u64::from_ne_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_short_strings_hash_differently() {
        let words = ["NYC", "LA", "Chicago", "Boston", "", "a", "b", "ab", "ba"];
        let hashes: FxHashSet<u64> = words.iter().map(hash_of).collect();
        assert_eq!(hashes.len(), words.len());
    }

    #[test]
    fn padding_is_length_tagged() {
        fn raw(bytes: &[u8]) -> u64 {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        }
        // a trailing zero byte must not collide with its absence
        assert_ne!(raw(&[0u8]), raw(&[]));
        assert_ne!(raw(&[1u8, 0]), raw(&[1u8]));
    }

    #[test]
    fn equal_values_hash_equal_in_fx_maps() {
        use crate::value::Value;
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Double(42.0)));
        let mut m: FxHashMap<Value, i32> = FxHashMap::default();
        m.insert(Value::Int(7), 1);
        assert_eq!(m.get(&Value::Double(7.0)), Some(&1));
    }
}
