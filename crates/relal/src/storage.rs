//! In-memory storage: rows, relations and databases.
//!
//! Relations are self-describing (they carry their column names) because the
//! evaluator produces intermediate relations whose columns are qualified by
//! the query's aliases (e.g. `"h.price"`). A [`Database`] binds base relations
//! to a [`DatabaseSchema`].

use std::collections::{BTreeSet, HashMap};

use crate::error::{RelalError, Result};
use crate::schema::DatabaseSchema;
use crate::value::Value;

/// A row of attribute values.
pub type Row = Vec<Value>;

/// A named-column, row-oriented relation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Column names, possibly qualified (e.g. `"h.price"`).
    pub columns: Vec<String>,
    /// Rows; each row has exactly `columns.len()` values.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Creates an empty relation with the given column names.
    pub fn empty(columns: Vec<String>) -> Self {
        Relation {
            columns,
            rows: Vec::new(),
        }
    }

    /// Creates a relation from columns and rows, validating row arity. The
    /// error names the first offending row by index so a bad bulk load can be
    /// traced back to its source record.
    pub fn new(columns: Vec<String>, rows: Vec<Row>) -> Result<Self> {
        let arity = columns.len();
        if let Some((i, bad)) = rows.iter().enumerate().find(|(_, r)| r.len() != arity) {
            return Err(RelalError::SchemaMismatch(format!(
                "row {i} of arity {} in relation of arity {}",
                bad.len(),
                arity
            )));
        }
        Ok(Relation { columns, rows })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| RelalError::UnknownColumn(name.to_string()))
    }

    /// Appends a row, validating its arity.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.arity() {
            return Err(RelalError::SchemaMismatch(format!(
                "row of arity {} pushed into relation of arity {}",
                row.len(),
                self.arity()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Appends all rows of `other` to this relation.
    ///
    /// This is the hot shard-merge path of parallel plan execution: arity
    /// compatibility is only debug-asserted (shards are produced by evaluating
    /// the same expression, so their shapes agree by construction) and the
    /// release build pays no per-row validation.
    pub fn append(&mut self, other: Relation) {
        debug_assert_eq!(
            self.arity(),
            other.arity(),
            "appending a {}-ary shard to a {}-ary relation",
            other.arity(),
            self.arity()
        );
        debug_assert!(other.rows.iter().all(|r| r.len() == other.columns.len()));
        self.rows.extend(other.rows);
    }

    /// Removes duplicate rows (set semantics). Row order is not preserved.
    pub fn dedup(&mut self) {
        let set: BTreeSet<Row> = std::mem::take(&mut self.rows).into_iter().collect();
        self.rows = set.into_iter().collect();
    }

    /// Returns a copy of this relation with duplicates removed.
    pub fn deduped(mut self) -> Self {
        self.dedup();
        self
    }

    /// Projects the relation onto the given columns (by name), renaming them
    /// to `out_names` when provided.
    pub fn project(&self, cols: &[String], out_names: Option<&[String]>) -> Result<Relation> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|c| self.column_index(c))
            .collect::<Result<_>>()?;
        let columns = match out_names {
            Some(names) => names.to_vec(),
            None => cols.to_vec(),
        };
        let rows = self
            .rows
            .iter()
            .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Ok(Relation { columns, rows })
    }

    /// Renames the columns of this relation in place.
    pub fn rename_columns(&mut self, names: Vec<String>) -> Result<()> {
        if names.len() != self.arity() {
            return Err(RelalError::SchemaMismatch(format!(
                "renaming {} columns of a {}-ary relation",
                names.len(),
                self.arity()
            )));
        }
        self.columns = names;
        Ok(())
    }

    /// Iterates over the values of one column.
    pub fn column_values(&self, name: &str) -> Result<Vec<Value>> {
        let i = self.column_index(name)?;
        Ok(self.rows.iter().map(|r| r[i].clone()).collect())
    }

    /// Sorts rows lexicographically; handy for deterministic test assertions.
    pub fn sorted(mut self) -> Self {
        self.rows.sort();
        self
    }
}

/// An in-memory database: a schema plus one relation instance per schema
/// relation.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// The database schema.
    pub schema: DatabaseSchema,
    relations: HashMap<String, Relation>,
}

impl Database {
    /// Creates an empty database over the given schema with empty instances
    /// for every relation.
    pub fn new(schema: DatabaseSchema) -> Self {
        let mut relations = HashMap::new();
        for r in &schema.relations {
            relations.insert(r.name.clone(), Relation::empty(r.attr_names()));
        }
        Database { schema, relations }
    }

    /// Replaces the instance of `name` with `relation`.
    ///
    /// The relation's columns must match the schema attribute names.
    pub fn insert_relation(&mut self, name: &str, relation: Relation) -> Result<()> {
        let schema = self.schema.relation(name)?;
        if relation.columns != schema.attr_names() {
            return Err(RelalError::SchemaMismatch(format!(
                "columns {:?} do not match schema of {}",
                relation.columns, name
            )));
        }
        self.relations.insert(name.to_string(), relation);
        Ok(())
    }

    /// Appends a row to the instance of `name`.
    pub fn insert_row(&mut self, name: &str, row: Row) -> Result<()> {
        self.schema.relation(name)?;
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| RelalError::UnknownRelation(name.to_string()))?;
        rel.push_row(row)
    }

    /// The instance of relation `name`.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelalError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to the instance of relation `name`.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelalError::UnknownRelation(name.to_string()))
    }

    /// Total number of tuples across all relations (the `|D|` of the paper).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Iterates over `(name, relation)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.schema
            .relations
            .iter()
            .filter_map(move |rs| self.relations.get(&rs.name).map(|r| (rs.name.as_str(), r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, RelationSchema};

    fn friend_db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::new(
            "friend",
            vec![Attribute::id("pid"), Attribute::id("fid")],
        )]);
        Database::new(schema)
    }

    #[test]
    fn relation_new_validates_arity() {
        assert!(Relation::new(vec!["a".into()], vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
        let r = Relation::new(
            vec!["a".into(), "b".into()],
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), 2);
    }

    #[test]
    fn relation_new_reports_offending_row_index() {
        let err = Relation::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(3), Value::Int(4)],
                vec![Value::Int(5)], // arity 1 at index 2
            ],
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("row 2"), "message should name row 2: {msg}");
        assert!(msg.contains("arity 1"), "message should name arity: {msg}");
    }

    #[test]
    fn append_merges_shards_without_revalidation() {
        let mut a = Relation::new(vec!["v".into()], vec![vec![Value::Int(1)]]).unwrap();
        let b = Relation::new(
            vec!["v".into()],
            vec![vec![Value::Int(2)], vec![Value::Int(3)]],
        )
        .unwrap();
        a.append(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.rows[2], vec![Value::Int(3)]);
    }

    #[test]
    fn push_row_validates_arity() {
        let mut r = Relation::empty(vec!["a".into()]);
        assert!(r.push_row(vec![Value::Int(1)]).is_ok());
        assert!(r.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn dedup_removes_duplicate_rows() {
        let mut r = Relation::empty(vec!["a".into()]);
        for v in [1, 2, 1, 3, 2] {
            r.push_row(vec![Value::Int(v)]).unwrap();
        }
        r.dedup();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn project_selects_and_renames_columns() {
        let r = Relation::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        let p = r
            .project(&["b".to_string()], Some(&["out".to_string()]))
            .unwrap();
        assert_eq!(p.columns, vec!["out"]);
        assert_eq!(p.rows, vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
        assert!(r.project(&["zzz".to_string()], None).is_err());
    }

    #[test]
    fn database_insert_and_lookup() {
        let mut db = friend_db();
        db.insert_row("friend", vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        db.insert_row("friend", vec![Value::Int(1), Value::Int(3)])
            .unwrap();
        assert_eq!(db.relation("friend").unwrap().len(), 2);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.relation("poi").is_err());
        assert!(db.insert_row("poi", vec![]).is_err());
    }

    #[test]
    fn insert_relation_checks_columns_against_schema() {
        let mut db = friend_db();
        let good = Relation::empty(vec!["pid".into(), "fid".into()]);
        assert!(db.insert_relation("friend", good).is_ok());
        let bad = Relation::empty(vec!["x".into(), "y".into()]);
        assert!(db.insert_relation("friend", bad).is_err());
    }

    #[test]
    fn column_values_extracts_one_column() {
        let mut db = friend_db();
        db.insert_row("friend", vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        db.insert_row("friend", vec![Value::Int(1), Value::Int(3)])
            .unwrap();
        let vals = db.relation("friend").unwrap().column_values("fid").unwrap();
        assert_eq!(vals, vec![Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn iter_yields_relations_in_schema_order() {
        let db = friend_db();
        let names: Vec<&str> = db.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["friend"]);
    }

    #[test]
    fn sorted_orders_rows_deterministically() {
        let r = Relation::new(
            vec!["a".into()],
            vec![
                vec![Value::Int(3)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap()
        .sorted();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }
}
