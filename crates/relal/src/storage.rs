//! In-memory storage: columnar relations and databases.
//!
//! A [`Relation`] stores its data **column-oriented**: one typed vector per
//! attribute ([`Column`]), with the row count tracked once. String columns are
//! dictionary-coded (a `u32` code per row plus an interned, `Arc`-shared
//! [`StrDict`]), so equality tests, hash joins and copies of string data touch
//! only small integers. Heterogeneous or null-bearing columns degrade to a
//! [`Column::Mixed`] vector of [`Value`]s, which keeps the row-oriented
//! semantics of the original representation bit-for-bit intact.
//!
//! Rows ([`Row`] = `Vec<Value>`) remain the **conversion boundary** of the
//! public API: relations are built from rows ([`Relation::new`],
//! [`Relation::push_row`]) and iterated as rows ([`Relation::rows`]), while
//! the evaluator's hot kernels (selection, joins, aggregation — see
//! `eval.rs`/`predicate.rs`) read the typed columns directly.
//!
//! Relations are self-describing (they carry their column names) because the
//! evaluator produces intermediate relations whose columns are qualified by
//! the query's aliases (e.g. `"h.price"`). A [`Database`] binds base relations
//! to a [`DatabaseSchema`]; each relation sits behind an `Arc`, so cloning a
//! database for a copy-on-write update batch is O(#relations) and only the
//! relations actually touched by the batch are deep-copied.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{RelalError, Result};
use crate::schema::DatabaseSchema;
use crate::value::{Value, ValueType};

/// A row of attribute values — the conversion boundary of the columnar store.
pub type Row = Vec<Value>;

// ---------------------------------------------------------------------------
// string dictionary
// ---------------------------------------------------------------------------

/// An interned string table shared by the rows of a dictionary-coded string
/// column. Codes are dense indices into `strings`; interning the same string
/// twice returns the same code.
///
/// The lookup index is a hand-rolled open-addressing table of codes (not a
/// `HashMap<String, u32>`), so each distinct string is allocated exactly
/// once and interning an already-known string is one hash + probe over a
/// flat `u32` array — this sits on the fetch-materialisation hot path.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    strings: Vec<String>,
    /// Open-addressing index into `strings`; `u32::MAX` marks an empty slot,
    /// the length is a power of two.
    table: Vec<u32>,
}

const DICT_EMPTY: u32 = u32::MAX;

/// Hash used by the dictionary index (and consistent with nothing else — the
/// table is rebuilt on growth, never serialised).
#[inline]
fn dict_hash(s: &str) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fasthash::FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

impl StrDict {
    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` when no string has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The string of a code.
    pub fn get(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    /// The code of `s`, if it has been interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (dict_hash(s) as usize) & mask;
        loop {
            match self.table[slot] {
                DICT_EMPTY => return None,
                c if self.strings[c as usize] == s => return Some(c),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// All interned strings, in code order.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Rebuilds the probe table at twice the capacity.
    fn grow(&mut self) {
        let cap = (self.table.len().max(8)) * 2;
        self.table.clear();
        self.table.resize(cap, DICT_EMPTY);
        let mask = cap - 1;
        for (i, s) in self.strings.iter().enumerate() {
            let mut slot = (dict_hash(s) as usize) & mask;
            while self.table[slot] != DICT_EMPTY {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = i as u32;
        }
    }

    /// Finds the slot of `s`, or the empty slot where it belongs. Requires a
    /// non-full table.
    #[inline]
    fn probe(&self, s: &str) -> (usize, Option<u32>) {
        let mask = self.table.len() - 1;
        let mut slot = (dict_hash(s) as usize) & mask;
        loop {
            match self.table[slot] {
                DICT_EMPTY => return (slot, None),
                c if self.strings[c as usize] == s => return (slot, Some(c)),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Interns `s`, returning its (possibly pre-existing) code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if self.strings.len() * 8 >= self.table.len() * 7 {
            self.grow();
        }
        match self.probe(s) {
            (_, Some(c)) => c,
            (slot, None) => {
                let c = self.strings.len() as u32;
                self.strings.push(s.to_string());
                self.table[slot] = c;
                c
            }
        }
    }

    /// Interns an owned string without re-allocating on a dictionary miss.
    pub fn intern_owned(&mut self, s: String) -> u32 {
        if self.strings.len() * 8 >= self.table.len() * 7 {
            self.grow();
        }
        match self.probe(&s) {
            (_, Some(c)) => c,
            (slot, None) => {
                let c = self.strings.len() as u32;
                self.strings.push(s);
                self.table[slot] = c;
                c
            }
        }
    }
}

// ---------------------------------------------------------------------------
// columns
// ---------------------------------------------------------------------------

/// One typed column of a [`Relation`].
///
/// The variant is decided by the first value pushed (or by the schema for
/// base relations); pushing a value of a different type — or a `Null` —
/// degrades the column to [`Column::Mixed`], which stores plain [`Value`]s
/// and preserves the exact per-value semantics of the row representation.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// 64-bit IEEE-754 floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-coded strings: one `u32` code per row plus the shared
    /// interned string table.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The interned string table (`Arc`-shared between relations that
        /// were sliced/gathered from one another).
        dict: Arc<StrDict>,
    },
    /// Fallback for heterogeneous or null-bearing columns.
    Mixed(Vec<Value>),
}

impl Column {
    /// An empty column typed for `ty`.
    pub fn for_type(ty: ValueType) -> Column {
        match ty {
            ValueType::Int => Column::Int(Vec::new()),
            ValueType::Double => Column::Float(Vec::new()),
            ValueType::Bool => Column::Bool(Vec::new()),
            ValueType::Str => Column::Str {
                codes: Vec::new(),
                dict: Arc::new(StrDict::default()),
            },
        }
    }

    /// An empty column typed like `v` (`Null` yields a [`Column::Mixed`]).
    pub fn for_value(v: &Value) -> Column {
        match v.value_type() {
            Some(ty) => Column::for_type(ty),
            None => Column::Mixed(Vec::new()),
        }
    }

    /// An empty, untyped column (typed by the first pushed value).
    pub fn untyped() -> Column {
        Column::Mixed(Vec::new())
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// `true` when the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i` (clones strings / mixed values).
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Double(v[i]),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Str { codes, dict } => Value::Str(dict.get(codes[i]).to_string()),
            Column::Mixed(v) => v[i].clone(),
        }
    }

    /// The value at row `i` as a float, mirroring [`Value::as_f64`].
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        match self {
            Column::Int(v) => Some(v[i] as f64),
            Column::Float(v) => Some(v[i]),
            Column::Mixed(v) => v[i].as_f64(),
            Column::Bool(_) | Column::Str { .. } => None,
        }
    }

    /// The integer slice of an `Int` column.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The float slice of a `Float` column.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The bool slice of a `Bool` column.
    pub fn as_bools(&self) -> Option<&[bool]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The codes and dictionary of a `Str` column.
    pub fn as_str_codes(&self) -> Option<(&[u32], &Arc<StrDict>)> {
        match self {
            Column::Str { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// The value slice of a `Mixed` column.
    pub fn as_mixed(&self) -> Option<&[Value]> {
        match self {
            Column::Mixed(v) => Some(v),
            _ => None,
        }
    }

    /// Degrades the column to [`Column::Mixed`], materialising every value.
    pub fn make_mixed(&mut self) {
        if matches!(self, Column::Mixed(_)) {
            return;
        }
        let vals: Vec<Value> = (0..self.len()).map(|i| self.value(i)).collect();
        *self = Column::Mixed(vals);
    }

    /// Appends one value, degrading to `Mixed` on a type mismatch. An *empty*
    /// column re-types itself to the pushed value's type instead (the column
    /// was only provisionally typed, e.g. by [`Relation::empty`]).
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (Column::Int(col), Value::Int(x)) => col.push(x),
            (Column::Float(col), Value::Double(x)) => col.push(x),
            (Column::Bool(col), Value::Bool(x)) => col.push(x),
            (Column::Str { codes, dict }, Value::Str(s)) => {
                codes.push(Arc::make_mut(dict).intern_owned(s));
            }
            (Column::Mixed(col), v) => {
                if col.is_empty() && !v.is_null() {
                    *self = Column::for_value(&v);
                    self.push(v);
                } else {
                    col.push(v);
                }
            }
            (_, v) => {
                if self.is_empty() {
                    *self = Column::for_value(&v);
                } else {
                    self.make_mixed();
                }
                self.push(v);
            }
        }
    }

    /// Reserves capacity for `n` further values.
    pub fn reserve(&mut self, n: usize) {
        match self {
            Column::Int(v) => v.reserve(n),
            Column::Float(v) => v.reserve(n),
            Column::Bool(v) => v.reserve(n),
            Column::Str { codes, .. } => codes.reserve(n),
            Column::Mixed(v) => v.reserve(n),
        }
    }

    /// Appends a borrowed value, cloning only when the column actually has to
    /// store an owned copy (a dictionary hit on a string column allocates
    /// nothing). Typing/degradation rules are identical to [`Column::push`].
    pub fn push_ref(&mut self, v: &Value) {
        match (&mut *self, v) {
            (Column::Int(col), Value::Int(x)) => col.push(*x),
            (Column::Float(col), Value::Double(x)) => col.push(*x),
            (Column::Bool(col), Value::Bool(x)) => col.push(*x),
            (Column::Str { codes, dict }, Value::Str(s)) => {
                codes.push(Arc::make_mut(dict).intern(s));
            }
            _ => self.push(v.clone()),
        }
    }

    /// Appends `v` `n` times (one intern / type decision, then a contiguous
    /// extend). Used by fetch materialisation, where an X-key value repeats
    /// for every representative returned under it.
    pub fn push_repeat(&mut self, v: Value, n: usize) {
        if n == 0 {
            return;
        }
        self.push(v);
        if n == 1 {
            return;
        }
        match self {
            Column::Int(c) => {
                let x = *c.last().expect("just pushed");
                c.extend(std::iter::repeat_n(x, n - 1));
            }
            Column::Float(c) => {
                let x = *c.last().expect("just pushed");
                c.extend(std::iter::repeat_n(x, n - 1));
            }
            Column::Bool(c) => {
                let x = *c.last().expect("just pushed");
                c.extend(std::iter::repeat_n(x, n - 1));
            }
            Column::Str { codes, .. } => {
                let x = *codes.last().expect("just pushed");
                codes.extend(std::iter::repeat_n(x, n - 1));
            }
            Column::Mixed(c) => {
                let x = c.last().expect("just pushed").clone();
                c.extend(std::iter::repeat_n(x, n - 1));
            }
        }
    }

    /// Appends the value at `other[i]`, avoiding materialisation when the
    /// variants agree.
    pub fn push_from(&mut self, other: &Column, i: usize) {
        match (&mut *self, other) {
            (Column::Int(a), Column::Int(b)) => a.push(b[i]),
            (Column::Float(a), Column::Float(b)) => a.push(b[i]),
            (Column::Bool(a), Column::Bool(b)) => a.push(b[i]),
            (
                Column::Str { codes, dict },
                Column::Str {
                    codes: oc,
                    dict: od,
                },
            ) => {
                if Arc::ptr_eq(dict, od) {
                    codes.push(oc[i]);
                } else {
                    let code = Arc::make_mut(dict).intern(od.get(oc[i]));
                    codes.push(code);
                }
            }
            _ => self.push(other.value(i)),
        }
    }

    /// Appends all of `other`'s values. Matching variants extend contiguously
    /// (string codes are translated between dictionaries once per distinct
    /// code); mismatches degrade to `Mixed`.
    pub fn extend_from(&mut self, other: &Column) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() && std::mem::discriminant(self) != std::mem::discriminant(other) {
            *self = other.clone();
            return;
        }
        match (&mut *self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (
                Column::Str { codes, dict },
                Column::Str {
                    codes: oc,
                    dict: od,
                },
            ) => {
                if Arc::ptr_eq(dict, od) {
                    codes.extend_from_slice(oc);
                } else {
                    let d = Arc::make_mut(dict);
                    let map: Vec<u32> = od.strings().iter().map(|s| d.intern(s)).collect();
                    codes.extend(oc.iter().map(|&c| map[c as usize]));
                }
            }
            (Column::Mixed(a), other) => a.extend((0..other.len()).map(|i| other.value(i))),
            _ => {
                self.make_mixed();
                self.extend_from(other);
            }
        }
    }

    /// Gathers the values at `idx` into a new column (dictionaries are shared,
    /// not copied).
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(idx.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(idx.iter().map(|&i| v[i]).collect()),
            Column::Str { codes, dict } => Column::Str {
                codes: idx.iter().map(|&i| codes[i]).collect(),
                dict: Arc::clone(dict),
            },
            Column::Mixed(v) => Column::Mixed(idx.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Splits the column at `at`, returning the tail (like `Vec::split_off`).
    /// String dictionaries are shared between the two halves.
    pub fn split_off(&mut self, at: usize) -> Column {
        match self {
            Column::Int(v) => Column::Int(v.split_off(at)),
            Column::Float(v) => Column::Float(v.split_off(at)),
            Column::Bool(v) => Column::Bool(v.split_off(at)),
            Column::Str { codes, dict } => Column::Str {
                codes: codes.split_off(at),
                dict: Arc::clone(dict),
            },
            Column::Mixed(v) => Column::Mixed(v.split_off(at)),
        }
    }

    /// Compares the values at rows `i` and `j` of this column with the total
    /// order of [`Value`].
    pub fn cmp_values(&self, i: usize, j: usize) -> Ordering {
        match self {
            Column::Int(v) => v[i].cmp(&v[j]),
            Column::Float(v) => v[i].total_cmp(&v[j]),
            Column::Bool(v) => v[i].cmp(&v[j]),
            Column::Str { codes, dict } => {
                if codes[i] == codes[j] {
                    Ordering::Equal
                } else {
                    dict.get(codes[i]).cmp(dict.get(codes[j]))
                }
            }
            Column::Mixed(v) => v[i].cmp(&v[j]),
        }
    }

    /// Compares `self[i]` against `other[j]` with the total order of
    /// [`Value`], without materialising either side where possible.
    pub fn cmp_across(&self, i: usize, other: &Column, j: usize) -> Ordering {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[i].cmp(&b[j]),
            (Column::Int(a), Column::Float(b)) => (a[i] as f64).total_cmp(&b[j]),
            (Column::Float(a), Column::Int(b)) => a[i].total_cmp(&(b[j] as f64)),
            (Column::Float(a), Column::Float(b)) => a[i].total_cmp(&b[j]),
            (Column::Bool(a), Column::Bool(b)) => a[i].cmp(&b[j]),
            (
                Column::Str { codes, dict },
                Column::Str {
                    codes: oc,
                    dict: od,
                },
            ) => {
                if Arc::ptr_eq(dict, od) && codes[i] == oc[j] {
                    Ordering::Equal
                } else {
                    dict.get(codes[i]).cmp(od.get(oc[j]))
                }
            }
            (a, b) => a.value(i).cmp(&b.value(j)),
        }
    }

    /// Compares `self[i]` against a [`Value`] with the total value order.
    pub fn cmp_value(&self, i: usize, v: &Value) -> Ordering {
        match (self, v) {
            (Column::Int(a), Value::Int(b)) => a[i].cmp(b),
            (Column::Int(a), Value::Double(b)) => (a[i] as f64).total_cmp(b),
            (Column::Float(a), Value::Int(b)) => a[i].total_cmp(&(*b as f64)),
            (Column::Float(a), Value::Double(b)) => a[i].total_cmp(b),
            (Column::Bool(a), Value::Bool(b)) => a[i].cmp(b),
            (Column::Str { codes, dict }, Value::Str(s)) => dict.get(codes[i]).cmp(s.as_str()),
            (Column::Mixed(a), v) => a[i].cmp(v),
            _ => self.value(i).cmp(v),
        }
    }
}

// ---------------------------------------------------------------------------
// relations
// ---------------------------------------------------------------------------

/// A named-column, **column-oriented** relation.
///
/// `columns` (the names) stays a public field for cheap renaming; the typed
/// data lives in private [`Column`] vectors accessed through [`Relation::col`]
/// and the row-conversion API. The invariant `columns.len() == #data columns`
/// is maintained by every constructor; direct assignments to `columns` must
/// preserve the length (use [`Relation::rename_columns`] for a checked
/// rename).
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Column names, possibly qualified (e.g. `"h.price"`).
    pub columns: Vec<String>,
    cols: Vec<Column>,
    nrows: usize,
}

impl PartialEq for Relation {
    /// Logical equality: same column names and the same ordered rows (under
    /// [`Value`] equality, so `Int(3)` equals `Double(3.0)` exactly as in the
    /// row representation — regardless of the physical column variants).
    fn eq(&self, other: &Self) -> bool {
        if self.columns != other.columns || self.nrows != other.nrows {
            return false;
        }
        self.cols
            .iter()
            .zip(&other.cols)
            .all(|(a, b)| (0..self.nrows).all(|i| a.cmp_across(i, b, i) == Ordering::Equal))
    }
}

impl Relation {
    /// Creates an empty relation with the given column names. Columns are
    /// typed by the first pushed row; see [`Relation::empty_typed`] for
    /// schema-typed construction.
    pub fn empty(columns: Vec<String>) -> Self {
        let cols = columns.iter().map(|_| Column::untyped()).collect();
        Relation {
            columns,
            cols,
            nrows: 0,
        }
    }

    /// Creates an empty relation with schema-typed columns.
    pub fn empty_typed(columns: Vec<String>, types: &[ValueType]) -> Self {
        debug_assert_eq!(columns.len(), types.len());
        let cols = types.iter().map(|&ty| Column::for_type(ty)).collect();
        Relation {
            columns,
            cols,
            nrows: 0,
        }
    }

    /// Creates a relation directly from columnar data, validating that every
    /// column has the same length and that names and data agree in arity.
    pub fn from_columns(columns: Vec<String>, cols: Vec<Column>) -> Result<Self> {
        if columns.len() != cols.len() {
            return Err(RelalError::SchemaMismatch(format!(
                "{} column names for {} data columns",
                columns.len(),
                cols.len()
            )));
        }
        let nrows = cols.first().map(|c| c.len()).unwrap_or(0);
        if let Some(bad) = cols.iter().position(|c| c.len() != nrows) {
            return Err(RelalError::SchemaMismatch(format!(
                "column {bad} has {} rows, expected {nrows}",
                cols[bad].len()
            )));
        }
        Ok(Relation {
            columns,
            cols,
            nrows,
        })
    }

    /// Decomposes the relation into its column names and typed columns.
    pub fn into_parts(self) -> (Vec<String>, Vec<Column>) {
        (self.columns, self.cols)
    }

    /// Creates a relation from columns and rows, validating row arity. The
    /// error names the first offending row by index so a bad bulk load can be
    /// traced back to its source record.
    pub fn new(columns: Vec<String>, rows: Vec<Row>) -> Result<Self> {
        let arity = columns.len();
        if let Some((i, bad)) = rows.iter().enumerate().find(|(_, r)| r.len() != arity) {
            return Err(RelalError::SchemaMismatch(format!(
                "row {i} of arity {} in relation of arity {}",
                bad.len(),
                arity
            )));
        }
        let mut rel = Relation::empty(columns);
        for row in rows {
            rel.push_row_unchecked(row);
        }
        Ok(rel)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| RelalError::UnknownColumn(name.to_string()))
    }

    /// The typed data of column `j`.
    pub fn col(&self, j: usize) -> &Column {
        &self.cols[j]
    }

    /// Mutable access to the typed data of column `j`. The caller must keep
    /// all columns at the same length.
    pub fn col_mut(&mut self, j: usize) -> &mut Column {
        &mut self.cols[j]
    }

    /// All typed columns, in schema order.
    pub fn cols(&self) -> &[Column] {
        &self.cols
    }

    /// The value at row `i`, column `j` (clones strings / mixed values).
    #[inline]
    pub fn value_at(&self, i: usize, j: usize) -> Value {
        self.cols[j].value(i)
    }

    /// Materialises row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.cols.iter().map(|c| c.value(i)).collect()
    }

    /// Iterates over materialised rows (the row conversion boundary).
    pub fn rows(&self) -> RowsIter<'_> {
        RowsIter { rel: self, i: 0 }
    }

    /// Materialises all rows.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.nrows).map(|i| self.row(i)).collect()
    }

    /// Appends a row, validating its arity.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.arity() {
            return Err(RelalError::SchemaMismatch(format!(
                "row of arity {} pushed into relation of arity {}",
                row.len(),
                self.arity()
            )));
        }
        self.push_row_unchecked(row);
        Ok(())
    }

    /// Appends a row without arity validation (debug-asserted). This is the
    /// hot conversion path of producers whose rows agree by construction.
    pub fn push_row_unchecked(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.arity());
        for (col, v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
        self.nrows += 1;
    }

    /// Appends all rows of `other` to this relation.
    ///
    /// This is the hot shard-merge path of parallel plan execution: arity
    /// compatibility is only debug-asserted (shards are produced by evaluating
    /// the same expression, so their shapes agree by construction). Matching
    /// column variants merge as contiguous extends.
    pub fn append(&mut self, other: Relation) {
        debug_assert_eq!(
            self.arity(),
            other.arity(),
            "appending a {}-ary shard to a {}-ary relation",
            other.arity(),
            self.arity()
        );
        if self.nrows == 0 {
            self.cols = other.cols;
            self.nrows = other.nrows;
            return;
        }
        for (col, o) in self.cols.iter_mut().zip(&other.cols) {
            col.extend_from(o);
        }
        self.nrows += other.nrows;
    }

    /// Splits the relation at row `at`, returning the tail (per-column range
    /// split; string dictionaries are shared, not copied). This is the
    /// zero-copy shard split of parallel execution.
    pub fn split_off(&mut self, at: usize) -> Relation {
        let tail_cols: Vec<Column> = self.cols.iter_mut().map(|c| c.split_off(at)).collect();
        let tail_rows = self.nrows - at;
        self.nrows = at;
        Relation {
            columns: self.columns.clone(),
            cols: tail_cols,
            nrows: tail_rows,
        }
    }

    /// Gathers the rows at `idx` into a new relation (per-column gather).
    pub fn take_rows(&self, idx: &[usize]) -> Relation {
        Relation {
            columns: self.columns.clone(),
            cols: self.cols.iter().map(|c| c.gather(idx)).collect(),
            nrows: idx.len(),
        }
    }

    /// Selects columns by index, renaming them to `names` (unchecked beyond
    /// debug assertions; the caller resolved the indices).
    pub fn select_columns(&self, idx: &[usize], names: Vec<String>) -> Relation {
        debug_assert_eq!(idx.len(), names.len());
        Relation {
            columns: names,
            cols: idx.iter().map(|&j| self.cols[j].clone()).collect(),
            nrows: self.nrows,
        }
    }

    /// Compares rows `i` and `j` lexicographically across all columns.
    pub fn cmp_rows(&self, i: usize, j: usize) -> Ordering {
        for col in &self.cols {
            match col.cmp_values(i, j) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Sorts rows lexicographically in place (stable), applying one
    /// permutation gather per column.
    pub fn sort_rows(&mut self) {
        if self.nrows <= 1 {
            return;
        }
        let mut idx: Vec<usize> = (0..self.nrows).collect();
        idx.sort_by(|&a, &b| self.cmp_rows(a, b));
        if idx.windows(2).all(|w| w[0] < w[1]) {
            return; // already sorted
        }
        self.cols = self.cols.iter().map(|c| c.gather(&idx)).collect();
    }

    /// Removes duplicate rows (set semantics). Rows end up sorted
    /// lexicographically, exactly as the row representation's
    /// `BTreeSet`-based dedup produced.
    pub fn dedup(&mut self) {
        if self.nrows <= 1 {
            return;
        }
        let mut idx: Vec<usize> = (0..self.nrows).collect();
        idx.sort_by(|&a, &b| self.cmp_rows(a, b));
        let mut keep: Vec<usize> = Vec::with_capacity(idx.len());
        for &i in &idx {
            match keep.last() {
                Some(&prev) if self.cmp_rows(prev, i) == Ordering::Equal => {}
                _ => keep.push(i),
            }
        }
        self.cols = self.cols.iter().map(|c| c.gather(&keep)).collect();
        self.nrows = keep.len();
    }

    /// Returns a copy of this relation with duplicates removed.
    pub fn deduped(mut self) -> Self {
        self.dedup();
        self
    }

    /// Projects the relation onto the given columns (by name), renaming them
    /// to `out_names` when provided. Columnar projection clones whole column
    /// vectors instead of copying cell by cell.
    pub fn project(&self, cols: &[String], out_names: Option<&[String]>) -> Result<Relation> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|c| self.column_index(c))
            .collect::<Result<_>>()?;
        let columns = match out_names {
            Some(names) => names.to_vec(),
            None => cols.to_vec(),
        };
        Ok(self.select_columns(&idx, columns))
    }

    /// Renames the columns of this relation in place.
    pub fn rename_columns(&mut self, names: Vec<String>) -> Result<()> {
        if names.len() != self.arity() {
            return Err(RelalError::SchemaMismatch(format!(
                "renaming {} columns of a {}-ary relation",
                names.len(),
                self.arity()
            )));
        }
        self.columns = names;
        Ok(())
    }

    /// Materialises the values of one column.
    pub fn column_values(&self, name: &str) -> Result<Vec<Value>> {
        let i = self.column_index(name)?;
        Ok((0..self.nrows).map(|r| self.cols[i].value(r)).collect())
    }

    /// Sorts rows lexicographically; handy for deterministic test assertions.
    pub fn sorted(mut self) -> Self {
        self.sort_rows();
        self
    }

    /// Order-independent digest of the relation: rows are sorted first, so two
    /// relations with the same column names and the same row multiset digest
    /// equal regardless of physical row order or column layout. Used by the
    /// serving wire protocol and the bench harness to prove that answers
    /// delivered over the network (or across thread counts) are bit-for-bit
    /// the relations produced in process.
    ///
    /// Built on the in-repo [`FxHasher`](crate::FxHasher) — a fully specified
    /// algorithm, unlike std's `DefaultHasher` — so digests are stable across
    /// Rust toolchains: a client and a server from different builds agree on
    /// the digest of identical answers.
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut rows = self.to_rows();
        rows.sort();
        let mut hasher = crate::fasthash::FxHasher::default();
        self.columns.hash(&mut hasher);
        for row in rows {
            row.hash(&mut hasher);
        }
        hasher.finish()
    }
}

/// Iterator over the materialised rows of a [`Relation`].
#[derive(Debug, Clone)]
pub struct RowsIter<'a> {
    rel: &'a Relation,
    i: usize,
}

impl Iterator for RowsIter<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        if self.i >= self.rel.nrows {
            return None;
        }
        let row = self.rel.row(self.i);
        self.i += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.rel.nrows - self.i;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for RowsIter<'_> {}

// ---------------------------------------------------------------------------
// databases
// ---------------------------------------------------------------------------

/// An in-memory database: a schema plus one relation instance per schema
/// relation.
///
/// Each instance sits behind an `Arc`, so cloning the database (the engine's
/// copy-on-write update path) shares all relation data structurally; only
/// relations actually mutated afterwards are deep-copied
/// ([`Database::relation_mut`] / [`Database::insert_row`] use
/// `Arc::make_mut`).
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// The database schema.
    pub schema: DatabaseSchema,
    relations: HashMap<String, Arc<Relation>>,
}

impl Database {
    /// Creates an empty database over the given schema with empty,
    /// schema-typed instances for every relation.
    pub fn new(schema: DatabaseSchema) -> Self {
        let mut relations = HashMap::new();
        for r in &schema.relations {
            let types: Vec<ValueType> = r.attributes.iter().map(|a| a.ty).collect();
            relations.insert(
                r.name.clone(),
                Arc::new(Relation::empty_typed(r.attr_names(), &types)),
            );
        }
        Database { schema, relations }
    }

    /// Replaces the instance of `name` with `relation`.
    ///
    /// The relation's columns must match the schema attribute names.
    pub fn insert_relation(&mut self, name: &str, relation: Relation) -> Result<()> {
        let schema = self.schema.relation(name)?;
        if relation.columns != schema.attr_names() {
            return Err(RelalError::SchemaMismatch(format!(
                "columns {:?} do not match schema of {}",
                relation.columns, name
            )));
        }
        self.relations.insert(name.to_string(), Arc::new(relation));
        Ok(())
    }

    /// Appends a row to the instance of `name`.
    pub fn insert_row(&mut self, name: &str, row: Row) -> Result<()> {
        self.schema.relation(name)?;
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| RelalError::UnknownRelation(name.to_string()))?;
        Arc::make_mut(rel).push_row(row)
    }

    /// The instance of relation `name`.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .map(|r| r.as_ref())
            .ok_or_else(|| RelalError::UnknownRelation(name.to_string()))
    }

    /// The shared handle of relation `name` (used to verify structural
    /// sharing across copy-on-write clones, and to hand out cheap snapshots).
    pub fn relation_arc(&self, name: &str) -> Result<&Arc<Relation>> {
        self.relations
            .get(name)
            .ok_or_else(|| RelalError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to the instance of relation `name` (copy-on-write: a
    /// shared instance is deep-copied first).
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| RelalError::UnknownRelation(name.to_string()))
    }

    /// Total number of tuples across all relations (the `|D|` of the paper).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Iterates over `(name, relation)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.schema.relations.iter().filter_map(move |rs| {
            self.relations
                .get(&rs.name)
                .map(|r| (rs.name.as_str(), r.as_ref()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, RelationSchema};

    fn friend_db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::new(
            "friend",
            vec![Attribute::id("pid"), Attribute::id("fid")],
        )]);
        Database::new(schema)
    }

    #[test]
    fn relation_new_validates_arity() {
        assert!(Relation::new(vec!["a".into()], vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
        let r = Relation::new(
            vec!["a".into(), "b".into()],
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), 2);
    }

    #[test]
    fn relation_new_reports_offending_row_index() {
        let err = Relation::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(3), Value::Int(4)],
                vec![Value::Int(5)], // arity 1 at index 2
            ],
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("row 2"), "message should name row 2: {msg}");
        assert!(msg.contains("arity 1"), "message should name arity: {msg}");
    }

    #[test]
    fn append_merges_shards_without_revalidation() {
        let mut a = Relation::new(vec!["v".into()], vec![vec![Value::Int(1)]]).unwrap();
        let b = Relation::new(
            vec!["v".into()],
            vec![vec![Value::Int(2)], vec![Value::Int(3)]],
        )
        .unwrap();
        a.append(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.row(2), vec![Value::Int(3)]);
    }

    #[test]
    fn push_row_validates_arity() {
        let mut r = Relation::empty(vec!["a".into()]);
        assert!(r.push_row(vec![Value::Int(1)]).is_ok());
        assert!(r.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn dedup_removes_duplicate_rows() {
        let mut r = Relation::empty(vec!["a".into()]);
        for v in [1, 2, 1, 3, 2] {
            r.push_row(vec![Value::Int(v)]).unwrap();
        }
        r.dedup();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn project_selects_and_renames_columns() {
        let r = Relation::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        let p = r
            .project(&["b".to_string()], Some(&["out".to_string()]))
            .unwrap();
        assert_eq!(p.columns, vec!["out"]);
        assert_eq!(
            p.to_rows(),
            vec![vec![Value::Int(10)], vec![Value::Int(20)]]
        );
        assert!(r.project(&["zzz".to_string()], None).is_err());
    }

    #[test]
    fn database_insert_and_lookup() {
        let mut db = friend_db();
        db.insert_row("friend", vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        db.insert_row("friend", vec![Value::Int(1), Value::Int(3)])
            .unwrap();
        assert_eq!(db.relation("friend").unwrap().len(), 2);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.relation("poi").is_err());
        assert!(db.insert_row("poi", vec![]).is_err());
    }

    #[test]
    fn insert_relation_checks_columns_against_schema() {
        let mut db = friend_db();
        let good = Relation::empty(vec!["pid".into(), "fid".into()]);
        assert!(db.insert_relation("friend", good).is_ok());
        let bad = Relation::empty(vec!["x".into(), "y".into()]);
        assert!(db.insert_relation("friend", bad).is_err());
    }

    #[test]
    fn column_values_extracts_one_column() {
        let mut db = friend_db();
        db.insert_row("friend", vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        db.insert_row("friend", vec![Value::Int(1), Value::Int(3)])
            .unwrap();
        let vals = db.relation("friend").unwrap().column_values("fid").unwrap();
        assert_eq!(vals, vec![Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn iter_yields_relations_in_schema_order() {
        let db = friend_db();
        let names: Vec<&str> = db.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["friend"]);
    }

    #[test]
    fn sorted_orders_rows_deterministically() {
        let r = Relation::new(
            vec!["a".into()],
            vec![
                vec![Value::Int(3)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap()
        .sorted();
        assert_eq!(
            r.to_rows(),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }

    // ------------------------------------------------------- columnar extras

    #[test]
    fn columns_are_typed_by_first_value_and_degrade_on_mismatch() {
        let mut r = Relation::empty(vec!["v".into()]);
        r.push_row(vec![Value::Int(1)]).unwrap();
        assert!(matches!(r.col(0), Column::Int(_)));
        r.push_row(vec![Value::Double(2.5)]).unwrap();
        assert!(matches!(r.col(0), Column::Mixed(_)));
        assert_eq!(r.row(0), vec![Value::Int(1)]);
        assert_eq!(r.row(1), vec![Value::Double(2.5)]);
    }

    #[test]
    fn string_columns_are_dictionary_coded() {
        let mut r = Relation::empty(vec!["city".into()]);
        for c in ["NYC", "LA", "NYC", "NYC", "LA"] {
            r.push_row(vec![Value::from(c)]).unwrap();
        }
        let (codes, dict) = r.col(0).as_str_codes().expect("str column");
        assert_eq!(dict.len(), 2, "two distinct strings interned");
        assert_eq!(codes[0], codes[2]);
        assert_ne!(codes[0], codes[1]);
        assert_eq!(r.value_at(3, 0), Value::from("NYC"));
    }

    #[test]
    fn null_values_degrade_to_mixed_and_round_trip() {
        let mut r = Relation::empty(vec!["v".into()]);
        r.push_row(vec![Value::Int(1)]).unwrap();
        r.push_row(vec![Value::Null]).unwrap();
        assert!(matches!(r.col(0), Column::Mixed(_)));
        assert_eq!(r.to_rows(), vec![vec![Value::Int(1)], vec![Value::Null]]);
    }

    #[test]
    fn split_off_splits_rows_and_shares_dictionaries() {
        let mut r = Relation::new(
            vec!["c".into()],
            vec![
                vec![Value::from("a")],
                vec![Value::from("b")],
                vec![Value::from("c")],
            ],
        )
        .unwrap();
        let tail = r.split_off(1);
        assert_eq!(r.len(), 1);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.row(0), vec![Value::from("b")]);
        let (_, d1) = r.col(0).as_str_codes().unwrap();
        let (_, d2) = tail.col(0).as_str_codes().unwrap();
        assert!(Arc::ptr_eq(d1, d2), "dictionaries must be shared");
    }

    #[test]
    fn append_translates_between_dictionaries() {
        let mut a = Relation::new(
            vec!["c".into()],
            vec![vec![Value::from("x")], vec![Value::from("y")]],
        )
        .unwrap();
        let b = Relation::new(
            vec!["c".into()],
            vec![vec![Value::from("y")], vec![Value::from("z")]],
        )
        .unwrap();
        a.append(b);
        assert_eq!(
            a.to_rows(),
            vec![
                vec![Value::from("x")],
                vec![Value::from("y")],
                vec![Value::from("y")],
                vec![Value::from("z")],
            ]
        );
        let (_, dict) = a.col(0).as_str_codes().unwrap();
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn relation_equality_is_logical_across_physical_layouts() {
        // an Int column equals a Mixed column holding the same numbers, and
        // Int(3) equals Double(3.0), exactly as under row/Value semantics
        let a = Relation::new(vec!["v".into()], vec![vec![Value::Int(3)]]).unwrap();
        let mut b = Relation::new(vec!["v".into()], vec![vec![Value::Double(3.0)]]).unwrap();
        assert_eq!(a, b, "Int(3) equals Double(3.0) across typed columns");
        b.col_mut(0).make_mixed();
        assert_eq!(a, b, "and across physical layouts");
    }

    #[test]
    fn database_clone_shares_relations_structurally() {
        let mut db = friend_db();
        db.insert_row("friend", vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        let copy = db.clone();
        assert!(Arc::ptr_eq(
            db.relation_arc("friend").unwrap(),
            copy.relation_arc("friend").unwrap()
        ));
        // mutating the copy detaches only the touched relation
        let mut copy = copy;
        copy.insert_row("friend", vec![Value::Int(3), Value::Int(4)])
            .unwrap();
        assert!(!Arc::ptr_eq(
            db.relation_arc("friend").unwrap(),
            copy.relation_arc("friend").unwrap()
        ));
        assert_eq!(db.relation("friend").unwrap().len(), 1);
        assert_eq!(copy.relation("friend").unwrap().len(), 2);
    }

    #[test]
    fn take_rows_gathers_in_index_order() {
        let r = Relation::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![Value::Int(1), Value::from("x")],
                vec![Value::Int(2), Value::from("y")],
                vec![Value::Int(3), Value::from("z")],
            ],
        )
        .unwrap();
        let g = r.take_rows(&[2, 0]);
        assert_eq!(
            g.to_rows(),
            vec![
                vec![Value::Int(3), Value::from("z")],
                vec![Value::Int(1), Value::from("x")],
            ]
        );
    }
}
