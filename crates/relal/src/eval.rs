//! Exact evaluation of relational-algebra and aggregate queries.
//!
//! The evaluator is used in two roles:
//!
//! 1. computing ground-truth answers `Q(D)` for the accuracy experiments, and
//! 2. executing the *evaluation plan* `ξ_E` of a bounded query plan over the
//!    (small) relations fetched by the fetching plan `ξ_F`.
//!
//! Base relations are resolved through a [`RelationProvider`], so the same
//! expression can run against a full [`Database`] or against an in-memory map
//! of fetched relations.
//!
//! Selections directly above Cartesian products are evaluated with a greedy
//! hash-join planner (equality conjuncts become join keys); this keeps ground
//! truth evaluation tractable on the workloads used by the benchmark harness.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use crate::distance::DistanceKind;
use crate::error::{RelalError, Result};
use crate::expr::{AggFunc, GroupByQuery, QueryExpr, RaExpr};
use crate::fasthash::{FxHashMap, FxHashSet};
use crate::kernel::{f64_from_total_key, f64_total_key};
use crate::predicate::{Predicate, PredicateAtom};
use crate::storage::{Column, Database, Relation, Row};
use crate::value::Value;

/// Resolves base relation names to relation instances during evaluation.
pub trait RelationProvider {
    /// The instance of relation `name`, if any.
    fn provide(&self, name: &str) -> Option<&Relation>;
}

impl RelationProvider for Database {
    fn provide(&self, name: &str) -> Option<&Relation> {
        self.relation(name).ok()
    }
}

impl RelationProvider for HashMap<String, Relation> {
    fn provide(&self, name: &str) -> Option<&Relation> {
        self.get(name)
    }
}

/// A provider that first looks into an overlay map (e.g. fetched data) and
/// falls back to a base provider. Used by tests and by the plan executor.
pub struct OverlayProvider<'a, P: RelationProvider> {
    /// Overlay relations (consulted first).
    pub overlay: &'a HashMap<String, Relation>,
    /// Fallback provider.
    pub base: &'a P,
}

impl<'a, P: RelationProvider> RelationProvider for OverlayProvider<'a, P> {
    fn provide(&self, name: &str) -> Option<&Relation> {
        self.overlay.get(name).or_else(|| self.base.provide(name))
    }
}

/// Evaluates an RA expression under **set semantics** (duplicates removed).
pub fn eval_set<P: RelationProvider>(expr: &RaExpr, provider: &P) -> Result<Relation> {
    let mut rel = eval_inner(expr, provider)?.into_owned();
    rel.dedup();
    Ok(rel)
}

/// Evaluates an RA expression under **bag semantics** (duplicates kept);
/// used as the input of aggregate queries.
pub fn eval_bag<P: RelationProvider>(expr: &RaExpr, provider: &P) -> Result<Relation> {
    Ok(eval_inner(expr, provider)?.into_owned())
}

/// Evaluates an aggregate (`gpBy`) query.
pub fn eval_aggregate<P: RelationProvider>(q: &GroupByQuery, provider: &P) -> Result<Relation> {
    let input = eval_inner(&q.input, provider)?;
    aggregate_relation(&input, q)
}

/// Evaluates a [`QueryExpr`] (aggregate or not).
pub fn eval_query<P: RelationProvider>(q: &QueryExpr, provider: &P) -> Result<Relation> {
    match q {
        QueryExpr::Ra(e) => eval_set(e, provider),
        QueryExpr::Aggregate(g) => eval_aggregate(g, provider),
    }
}

/// Evaluates an RA expression to a [`Cow`]: scans whose column names need no
/// alias qualification borrow the provider's relation directly (no column
/// copies), every computing operator produces an owned result. This makes
/// `scan → filter/join/project` pipelines zero-copy at the leaves — the
/// dominant fixed cost of evaluating small fetched fragments and of scanning
/// large base tables alike.
fn eval_inner<'a, P: RelationProvider>(
    expr: &RaExpr,
    provider: &'a P,
) -> Result<Cow<'a, Relation>> {
    match expr {
        RaExpr::Scan { relation, alias } => {
            let rel = provider
                .provide(relation)
                .ok_or_else(|| RelalError::UnknownRelation(relation.clone()))?;
            if rel.columns.iter().all(|c| is_qualified(alias, c)) {
                return Ok(Cow::Borrowed(rel));
            }
            let mut out = rel.clone();
            out.columns = out.columns.iter().map(|c| qualify(alias, c)).collect();
            Ok(Cow::Owned(out))
        }
        RaExpr::Select { input, predicate } => {
            // Optimized path: a selection over a (possibly nested) product is
            // evaluated as a join tree.
            let mut leaves = Vec::new();
            flatten_products(input, &mut leaves);
            if leaves.len() > 1 {
                let relations = leaves
                    .iter()
                    .map(|l| eval_inner(l, provider))
                    .collect::<Result<Vec<_>>>()?;
                join_relations(relations, &predicate.atoms)
            } else {
                let rel = eval_inner(input, provider)?;
                Ok(Cow::Owned(predicate.filter(&rel)?))
            }
        }
        RaExpr::Project { input, columns } => {
            let rel = eval_inner(input, provider)?;
            let in_cols: Vec<String> = columns.iter().map(|(_, c)| c.clone()).collect();
            let out_cols: Vec<String> = columns.iter().map(|(n, _)| n.clone()).collect();
            Ok(Cow::Owned(rel.project(&in_cols, Some(&out_cols))?))
        }
        RaExpr::Product { left, right } => {
            let l = eval_inner(left, provider)?;
            let r = eval_inner(right, provider)?;
            Ok(Cow::Owned(cross_product(&l, &r)?))
        }
        RaExpr::Union { left, right } => {
            let l = eval_inner(left, provider)?;
            let r = eval_inner(right, provider)?;
            if l.arity() != r.arity() {
                return Err(RelalError::SchemaMismatch(format!(
                    "union of arity {} with arity {}",
                    l.arity(),
                    r.arity()
                )));
            }
            let mut out = l.into_owned();
            out.append(r.into_owned());
            Ok(Cow::Owned(out))
        }
        RaExpr::Difference { left, right } => {
            let l = eval_inner(left, provider)?;
            let r = eval_inner(right, provider)?;
            if l.arity() != r.arity() {
                return Err(RelalError::SchemaMismatch(format!(
                    "difference of arity {} with arity {}",
                    l.arity(),
                    r.arity()
                )));
            }
            let remove: FxHashSet<Row> = r.rows().collect();
            let keep: Vec<usize> = (0..l.len())
                .filter(|&i| !remove.contains(&l.row(i)))
                .collect();
            Ok(Cow::Owned(l.take_rows(&keep)))
        }
        RaExpr::Rename { input, columns } => {
            let mut rel = eval_inner(input, provider)?.into_owned();
            rel.rename_columns(columns.clone())?;
            Ok(Cow::Owned(rel))
        }
    }
}

/// `true` when `col` is already qualified by `alias` (i.e. starts with
/// `alias.`), without allocating.
fn is_qualified(alias: &str, col: &str) -> bool {
    col.strip_prefix(alias).is_some_and(|r| r.starts_with('.'))
}

/// Qualifies every column name of `rel` with `alias` in place, exactly as a
/// `Scan { alias }` node would (already-qualified names are left untouched).
/// Pre-qualifying a relation before registering it with a provider lets the
/// evaluator *borrow* it on every scan instead of copying its columns.
pub fn qualify_relation(rel: &mut Relation, alias: &str) {
    for c in &mut rel.columns {
        if !is_qualified(alias, c) {
            *c = format!("{alias}.{c}");
        }
    }
}

/// Qualifies a column name with an alias unless it is already qualified by it.
fn qualify(alias: &str, col: &str) -> String {
    if is_qualified(alias, col) {
        col.to_string()
    } else {
        format!("{alias}.{col}")
    }
}

/// Collects the leaves of a (possibly nested) Cartesian product.
fn flatten_products<'a>(expr: &'a RaExpr, out: &mut Vec<&'a RaExpr>) {
    match expr {
        RaExpr::Product { left, right } => {
            flatten_products(left, out);
            flatten_products(right, out);
        }
        other => out.push(other),
    }
}

/// Checks that the column names of a binary operator's operands are disjoint
/// and returns the concatenated output names.
fn disjoint_columns(l: &Relation, r: &Relation, what: &str) -> Result<Vec<String>> {
    for c in &r.columns {
        if l.columns.contains(c) {
            return Err(RelalError::SchemaMismatch(format!(
                "duplicate column {c} in {what}"
            )));
        }
    }
    let mut columns = l.columns.clone();
    columns.extend(r.columns.clone());
    Ok(columns)
}

/// Materialises the join output `left[li] ++ right[ri]` for each index pair,
/// as one typed gather per column.
fn gather_join(
    left: &Relation,
    right: &Relation,
    lidx: &[usize],
    ridx: &[usize],
    columns: Vec<String>,
) -> Relation {
    let mut cols = Vec::with_capacity(left.arity() + right.arity());
    for c in left.cols() {
        cols.push(c.gather(lidx));
    }
    for c in right.cols() {
        cols.push(c.gather(ridx));
    }
    Relation::from_columns(columns, cols).expect("join operand shapes agree by construction")
}

/// Plain Cartesian product of two relations (column names must be disjoint).
fn cross_product(l: &Relation, r: &Relation) -> Result<Relation> {
    let columns = disjoint_columns(l, r, "Cartesian product")?;
    let pairs = l.len() * r.len();
    let mut lidx = Vec::with_capacity(pairs);
    let mut ridx = Vec::with_capacity(pairs);
    for li in 0..l.len() {
        for ri in 0..r.len() {
            lidx.push(li);
            ridx.push(ri);
        }
    }
    Ok(gather_join(l, r, &lidx, &ridx, columns))
}

/// Greedy join of `relations` under the conjunction `atoms`:
///
/// 1. per-relation conjuncts are applied as filters first;
/// 2. relations are then joined one at a time, preferring hash joins on exact
///    equality conjuncts, falling back to filtered nested-loop products;
/// 3. conjuncts become applicable as soon as all their columns are available.
fn join_relations<'a>(
    relations: Vec<Cow<'a, Relation>>,
    atoms: &[PredicateAtom],
) -> Result<Cow<'a, Relation>> {
    // Apply single-relation atoms up front.
    let mut pending: Vec<&PredicateAtom> = Vec::new();
    let mut filtered: Vec<Cow<'a, Relation>> = Vec::new();
    let mut per_rel_atoms: Vec<Vec<&PredicateAtom>> = vec![Vec::new(); relations.len()];
    'atoms: for atom in atoms {
        let cols = atom.columns();
        for (i, rel) in relations.iter().enumerate() {
            if cols.iter().all(|c| rel.columns.iter().any(|rc| rc == c)) {
                per_rel_atoms[i].push(atom);
                continue 'atoms;
            }
        }
        pending.push(atom);
    }
    for (rel, rel_atoms) in relations.into_iter().zip(per_rel_atoms) {
        if rel_atoms.is_empty() {
            filtered.push(rel);
        } else {
            let pred = Predicate::all(rel_atoms.into_iter().cloned().collect());
            filtered.push(Cow::Owned(pred.filter(&rel)?));
        }
    }

    // Greedy join order: start from the smallest relation, repeatedly attach a
    // relation connected through a hash-joinable equality conjunct, then one
    // connected through a relaxed numeric equality (band join); only
    // unconnected relations fall back to a nested-loop product.
    filtered.sort_by_key(|r| r.len());
    let mut iter = filtered.into_iter();
    let mut current = iter
        .next()
        .ok_or_else(|| RelalError::InvalidQuery("join of zero relations".into()))?;
    let mut remaining: Vec<Cow<'a, Relation>> = iter.collect();

    while !remaining.is_empty() {
        // prefer a remaining relation connected to `current` via a hashable
        // equality, then via a numeric band, then the nested-loop fallback
        let mut chosen: Option<usize> = None;
        for (i, rel) in remaining.iter().enumerate() {
            if !equality_keys(&pending, &current, rel).is_empty() {
                chosen = Some(i);
                break;
            }
        }
        if chosen.is_none() {
            for (i, rel) in remaining.iter().enumerate() {
                if band_key(&pending, &current, rel).is_some() {
                    chosen = Some(i);
                    break;
                }
            }
        }
        let idx = chosen.unwrap_or(0);
        let rel = remaining.remove(idx);
        let keys = equality_keys(&pending, &current, &rel);
        current = Cow::Owned(if !keys.is_empty() {
            hash_join(&current, &rel, &keys)?
        } else if let Some(band) = band_key(&pending, &current, &rel) {
            band_join(&current, &rel, &band)?
        } else {
            cross_product(&current, &rel)?
        });
        // apply every pending atom that is now fully evaluable
        let mut still_pending = Vec::new();
        let mut applicable = Vec::new();
        for atom in pending {
            let cols = atom.columns();
            if cols
                .iter()
                .all(|c| current.columns.iter().any(|rc| rc == c))
            {
                applicable.push(atom.clone());
            } else {
                still_pending.push(atom);
            }
        }
        if !applicable.is_empty() {
            current = Cow::Owned(Predicate::all(applicable).filter(&current)?);
        }
        pending = still_pending;
    }
    if !pending.is_empty() {
        // atoms referencing unknown columns
        let missing: Vec<&str> = pending.iter().flat_map(|a| a.columns()).collect();
        return Err(RelalError::UnknownColumn(missing.join(", ")));
    }
    Ok(current)
}

/// `true` when a relaxed equality under `dk` with tolerance `tol` admits
/// exactly the value-equal pairs, making it hash-joinable: tolerance 0 always
/// qualifies; the trivial distance (0 or ∞) qualifies at any finite
/// tolerance; the categorical distance (0 or 1) qualifies below 1.
fn is_hashable_eq(dk: DistanceKind, tol: f64) -> bool {
    tol <= 0.0
        || matches!(dk, DistanceKind::Trivial)
        || (matches!(dk, DistanceKind::Categorical) && tol < 1.0)
}

/// The hash-joinable equality join keys between `left` and `right` among
/// `atoms` (exact equalities, plus relaxed equalities whose distance kind
/// still only admits equal values — see [`is_hashable_eq`]).
fn equality_keys(
    atoms: &[&PredicateAtom],
    left: &Relation,
    right: &Relation,
) -> Vec<(usize, usize)> {
    let mut keys = Vec::new();
    for atom in atoms {
        if let PredicateAtom::ColCol {
            left: lc,
            op,
            right: rc,
            distance,
            tol,
        } = atom
        {
            if !op.is_eq() || !is_hashable_eq(*distance, *tol) {
                continue;
            }
            let (li, ri) = (left.column_index(lc), right.column_index(rc));
            if let (Ok(li), Ok(ri)) = (li, ri) {
                keys.push((li, ri));
                continue;
            }
            let (li, ri) = (left.column_index(rc), right.column_index(lc));
            if let (Ok(li), Ok(ri)) = (li, ri) {
                keys.push((li, ri));
            }
        }
    }
    keys
}

/// One component of a hash-join key: a dictionary code when both key columns
/// are dictionary-coded strings (codes translated into one id space), a raw
/// `i64` when both are typed numeric columns (the integer itself for
/// `Int`/`Int`, the [`f64_total_key`] of the `as_f64` view otherwise — which
/// reproduces `Value`'s `total_cmp`-based numeric equality bit for bit), a
/// materialised [`Value`] in the remaining cases. `Value`'s equality/hash make
/// numeric cross-type matches (`Int(3) = Double(3.0)`) behave exactly as in
/// the row representation; the typed variants avoid the per-row `Value`
/// clone + multi-field hash on the probe path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyCell {
    Code(u32),
    Num(i64),
    Val(Value),
}

type KeyFn<'a> = Box<dyn Fn(usize) -> KeyCell + 'a>;

/// Builds the per-side key extractors for one `(left, right)` key column
/// pair. String/string pairs key on dictionary codes: the right dictionary is
/// translated into the left id space once (unmatched right strings get fresh
/// ids past the left dictionary), so probing never touches string bytes.
fn key_cell_fns<'a>(l: &'a Column, r: &'a Column) -> (KeyFn<'a>, KeyFn<'a>) {
    if let (Some((lc, ld)), Some((rc, rd))) = (l.as_str_codes(), r.as_str_codes()) {
        if Arc::ptr_eq(ld, rd) {
            return (
                Box::new(move |i| KeyCell::Code(lc[i])),
                Box::new(move |i| KeyCell::Code(rc[i])),
            );
        }
        let llen = ld.len() as u32;
        let map: Vec<u32> = rd
            .strings()
            .iter()
            .enumerate()
            .map(|(c, s)| ld.code_of(s).unwrap_or(llen + c as u32))
            .collect();
        return (
            Box::new(move |i| KeyCell::Code(lc[i])),
            Box::new(move |i| KeyCell::Code(map[rc[i] as usize])),
        );
    }
    // Typed numeric pairs key on a single i64. Int/Int uses the integer
    // itself (exact for the full i64 range); any pair involving a float uses
    // the total-order key of the `as_f64` view, matching `Value::cmp`'s
    // mixed-numeric `total_cmp` semantics exactly (key equality ⇔
    // `total_cmp == Equal`, so NaN = NaN and -0.0 ≠ +0.0 on both paths).
    match (l, r) {
        (Column::Int(a), Column::Int(b)) => {
            return (
                Box::new(move |i| KeyCell::Num(a[i])),
                Box::new(move |i| KeyCell::Num(b[i])),
            );
        }
        (Column::Int(a), Column::Float(b)) => {
            return (
                Box::new(move |i| KeyCell::Num(f64_total_key(a[i] as f64))),
                Box::new(move |i| KeyCell::Num(f64_total_key(b[i]))),
            );
        }
        (Column::Float(a), Column::Int(b)) => {
            return (
                Box::new(move |i| KeyCell::Num(f64_total_key(a[i]))),
                Box::new(move |i| KeyCell::Num(f64_total_key(b[i] as f64))),
            );
        }
        (Column::Float(a), Column::Float(b)) => {
            return (
                Box::new(move |i| KeyCell::Num(f64_total_key(a[i]))),
                Box::new(move |i| KeyCell::Num(f64_total_key(b[i]))),
            );
        }
        _ => {}
    }
    (
        Box::new(move |i| KeyCell::Val(l.value(i))),
        Box::new(move |i| KeyCell::Val(r.value(i))),
    )
}

/// Below this build-side size an equality join probes a flat key vector
/// instead of building a hash index: for a handful of rows the linear scan
/// beats the hash map's allocation and hashing, and the `(left, right)`
/// match order it emits is identical (per left row, right matches ascend).
const LINEAR_JOIN_MAX: usize = 16;

/// Hash join of two relations on the given `(left column, right column)` keys.
/// Single-key joins (the common case) index bare [`KeyCell`]s; multi-key
/// joins fall back to `Vec<KeyCell>` keys. Tiny build sides skip the hash
/// index entirely (see [`LINEAR_JOIN_MAX`]).
fn hash_join(left: &Relation, right: &Relation, keys: &[(usize, usize)]) -> Result<Relation> {
    let columns = disjoint_columns(left, right, "join")?;

    let (lfns, rfns): (Vec<KeyFn<'_>>, Vec<KeyFn<'_>>) = keys
        .iter()
        .map(|&(li, ri)| key_cell_fns(left.col(li), right.col(ri)))
        .unzip();

    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    if let ([lf], [rf]) = (lfns.as_slice(), rfns.as_slice()) {
        if right.len() <= LINEAR_JOIN_MAX {
            let rkeys: Vec<KeyCell> = (0..right.len()).map(rf).collect();
            for li in 0..left.len() {
                let lk = lf(li);
                for (ri, rk) in rkeys.iter().enumerate() {
                    if *rk == lk {
                        lidx.push(li);
                        ridx.push(ri);
                    }
                }
            }
            return Ok(gather_join(left, right, &lidx, &ridx, columns));
        }
        let mut index: FxHashMap<KeyCell, Vec<usize>> = FxHashMap::default();
        index.reserve(right.len());
        for i in 0..right.len() {
            index.entry(rf(i)).or_default().push(i);
        }
        for li in 0..left.len() {
            if let Some(matches) = index.get(&lf(li)) {
                for &ri in matches {
                    lidx.push(li);
                    ridx.push(ri);
                }
            }
        }
    } else {
        if right.len() <= LINEAR_JOIN_MAX {
            let rkeys: Vec<Vec<KeyCell>> = (0..right.len())
                .map(|i| rfns.iter().map(|f| f(i)).collect())
                .collect();
            for li in 0..left.len() {
                let lk: Vec<KeyCell> = lfns.iter().map(|f| f(li)).collect();
                for (ri, rk) in rkeys.iter().enumerate() {
                    if *rk == lk {
                        lidx.push(li);
                        ridx.push(ri);
                    }
                }
            }
            return Ok(gather_join(left, right, &lidx, &ridx, columns));
        }
        let mut index: FxHashMap<Vec<KeyCell>, Vec<usize>> = FxHashMap::default();
        index.reserve(right.len());
        for i in 0..right.len() {
            let key: Vec<KeyCell> = rfns.iter().map(|f| f(i)).collect();
            index.entry(key).or_default().push(i);
        }
        for li in 0..left.len() {
            let key: Vec<KeyCell> = lfns.iter().map(|f| f(li)).collect();
            if let Some(matches) = index.get(&key) {
                for &ri in matches {
                    lidx.push(li);
                    ridx.push(ri);
                }
            }
        }
    }
    Ok(gather_join(left, right, &lidx, &ridx, columns))
}

/// A relaxed numeric equality conjunct usable as a band-join condition.
struct BandKey {
    left_col: usize,
    right_col: usize,
    distance: DistanceKind,
    tol: f64,
}

/// Finds a relaxed numeric equality conjunct between `left` and `right`: a
/// `ColCol` `=` atom with tolerance `> 0` over a numeric distance. Such joins
/// cannot be hashed (nearby values must match) but can be answered by sorting
/// one side and probing a value band per row.
fn band_key(atoms: &[&PredicateAtom], left: &Relation, right: &Relation) -> Option<BandKey> {
    for atom in atoms {
        if let PredicateAtom::ColCol {
            left: lc,
            op,
            right: rc,
            distance,
            tol,
        } = atom
        {
            if !op.is_eq() || *tol <= 0.0 || !distance.is_numeric() {
                continue;
            }
            if let (Ok(li), Ok(ri)) = (left.column_index(lc), right.column_index(rc)) {
                return Some(BandKey {
                    left_col: li,
                    right_col: ri,
                    distance: *distance,
                    tol: *tol,
                });
            }
            if let (Ok(li), Ok(ri)) = (left.column_index(rc), right.column_index(lc)) {
                return Some(BandKey {
                    left_col: li,
                    right_col: ri,
                    distance: *distance,
                    tol: *tol,
                });
            }
        }
    }
    None
}

/// Band join of two relations under a relaxed numeric equality: matches every
/// pair with `dis(l, r) ≤ tol`. Finite numeric right values are sorted and
/// probed by binary search over the band `[l − tol·unit, l + tol·unit]`;
/// non-numeric (and NaN) values can only match at distance 0, i.e. equality,
/// and go through a hash lookup. Produces exactly the rows (and row order) of
/// the filtered nested-loop product it replaces.
fn band_join(left: &Relation, right: &Relation, key: &BandKey) -> Result<Relation> {
    let columns = disjoint_columns(left, right, "join")?;
    let lcol = left.col(key.left_col);
    let rcol = right.col(key.right_col);

    // split the right side: finite numeric values as monotone integer
    // total-order keys (see [`crate::kernel::f64_total_key`]) sorted with the
    // derived integer tuple order — identical to sorting the floats by
    // `total_cmp` then row id, but the sort runs on plain `i64`s; the rest
    // (strings, bools, nulls, NaNs) reachable only through exact equality
    let mut numeric: Vec<(i64, usize)> = Vec::new();
    let mut by_value: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
    for i in 0..right.len() {
        match rcol.f64_at(i) {
            Some(x) if !x.is_nan() => numeric.push((f64_total_key(x), i)),
            _ => by_value.entry(rcol.value(i)).or_default().push(i),
        }
    }
    numeric.sort_unstable();
    let slack = key.tol * key.distance.unit();

    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    let mut matches: Vec<usize> = Vec::new();
    for li in 0..left.len() {
        matches.clear();
        match lcol.f64_at(li) {
            Some(x) if !x.is_nan() => {
                let xk = f64_total_key(x);
                // the band-start probe must compare raw floats (`<`), not
                // total-order keys: raw `<` treats −0.0 and +0.0 as equal, so
                // a key-space binary search would skip a −0.0 entry when the
                // band starts at +0.0
                let lo = numeric.partition_point(|&(k, _)| f64_from_total_key(k) < x - slack);
                for &(yk, ri) in &numeric[lo..] {
                    let y = f64_from_total_key(yk);
                    // value equality short-circuits to distance 0 (exactly as
                    // DistanceKind::distance does): both operands are finite
                    // numerics here, where value equality is float equality
                    // — and float total-order equality is key equality
                    let d = if xk == yk {
                        0.0
                    } else {
                        key.distance.numeric_gap(x, y)
                    };
                    if d <= key.tol {
                        matches.push(ri);
                    } else if y > x + slack {
                        break;
                    }
                }
            }
            _ => {
                if let Some(eq) = by_value.get(&lcol.value(li)) {
                    matches.extend(eq.iter().copied());
                }
            }
        }
        // right matches in row order reproduce the nested-loop output order
        matches.sort_unstable();
        for &ri in &matches {
            lidx.push(li);
            ridx.push(ri);
        }
    }
    Ok(gather_join(left, right, &lidx, &ridx, columns))
}

/// Groups and aggregates an already-evaluated input relation.
pub fn aggregate_relation(input: &Relation, q: &GroupByQuery) -> Result<Relation> {
    let group_idx: Vec<usize> = q
        .group_by
        .iter()
        .map(|c| input.column_index(c))
        .collect::<Result<_>>()?;
    let agg_idx = input.column_index(&q.agg_col)?;
    let weight_idx = match &q.weight_col {
        Some(w) => Some(input.column_index(w)?),
        None => None,
    };

    #[derive(Default)]
    struct Acc {
        count: f64,
        sum: f64,
        min: Option<Value>,
        max: Option<Value>,
        non_numeric: bool,
    }

    // typed-column accessors: sums and weights read `f64`s straight off the
    // columns; group keys and extrema materialise values only when needed
    let acol = input.col(agg_idx);
    let wcol = weight_idx.map(|i| input.col(i));

    // a global aggregate (no group-by) needs no per-row key materialisation
    // or hash lookups: accumulate in one pass over the typed slices, in
    // strict row order so float sums stay bit-identical to the grouped path
    if group_idx.is_empty() {
        return aggregate_global(input, q, acol, wcol);
    }

    // only the accumulator fields the aggregate actually reads are updated:
    // Count touches weights alone, Sum/Avg add sums, Min/Max scan extrema
    let need_sum = matches!(q.agg, AggFunc::Sum | AggFunc::Avg);
    let need_minmax = matches!(q.agg, AggFunc::Min | AggFunc::Max);
    let mut groups: FxHashMap<Vec<Value>, Acc> = FxHashMap::default();
    for i in 0..input.len() {
        let key: Vec<Value> = group_idx.iter().map(|&j| input.value_at(i, j)).collect();
        let weight = match wcol {
            Some(c) => c.f64_at(i).unwrap_or(1.0).max(0.0),
            None => 1.0,
        };
        let acc = groups.entry(key).or_default();
        acc.count += weight;
        if need_sum {
            match acol.f64_at(i) {
                Some(x) => acc.sum += x * weight,
                None => acc.non_numeric = true,
            }
        }
        if need_minmax {
            if acc
                .min
                .as_ref()
                .is_none_or(|m| acol.cmp_value(i, m) == Ordering::Less)
            {
                acc.min = Some(acol.value(i));
            }
            if acc
                .max
                .as_ref()
                .is_none_or(|m| acol.cmp_value(i, m) == Ordering::Greater)
            {
                acc.max = Some(acol.value(i));
            }
        }
    }

    let mut out = Relation::empty(q.output_columns());
    for (key, acc) in groups {
        let agg_value = match q.agg {
            AggFunc::Count => Value::Double(acc.count),
            AggFunc::Sum => {
                if acc.non_numeric {
                    return Err(RelalError::TypeMismatch(format!(
                        "sum over non-numeric column {}",
                        q.agg_col
                    )));
                }
                Value::Double(acc.sum)
            }
            AggFunc::Avg => {
                if acc.non_numeric {
                    return Err(RelalError::TypeMismatch(format!(
                        "avg over non-numeric column {}",
                        q.agg_col
                    )));
                }
                if acc.count == 0.0 {
                    Value::Null
                } else {
                    Value::Double(acc.sum / acc.count)
                }
            }
            AggFunc::Min => acc.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => acc.max.clone().unwrap_or(Value::Null),
        };
        let mut row = key;
        row.push(agg_value);
        out.push_row_unchecked(row);
    }
    out.sort_rows();
    Ok(out)
}

/// Global (no group-by) aggregate: a single accumulator fed by one pass over
/// the typed column slices — no per-row key materialisation, hashing, or
/// `Value` cloning. The accumulation loops are monomorphized per (aggregate
/// column, weight column) type pair but evaluate the exact per-row
/// expressions of the grouped path in strict row order (float additions are
/// never reassociated), so every float result is bit-identical to it.
fn aggregate_global(
    input: &Relation,
    q: &GroupByQuery,
    acol: &Column,
    wcol: Option<&Column>,
) -> Result<Relation> {
    let mut out = Relation::empty(q.output_columns());
    let n = input.len();
    if n == 0 {
        // a global aggregate over an empty input still yields one row for
        // count/sum, matching SQL semantics
        match q.agg {
            AggFunc::Count => out.push_row_unchecked(vec![Value::Int(0)]),
            AggFunc::Sum => out.push_row_unchecked(vec![Value::Double(0.0)]),
            _ => {}
        }
        return Ok(out);
    }

    if matches!(q.agg, AggFunc::Min | AggFunc::Max) {
        let want = if matches!(q.agg, AggFunc::Min) {
            Ordering::Less
        } else {
            Ordering::Greater
        };
        let mut best: Option<Value> = None;
        for i in 0..n {
            if best.as_ref().is_none_or(|m| acol.cmp_value(i, m) == want) {
                best = Some(acol.value(i));
            }
        }
        out.push_row_unchecked(vec![best.unwrap_or(Value::Null)]);
        return Ok(out);
    }

    /// Sequential weighted accumulation over zipped value/weight streams.
    #[inline(always)]
    fn accum_num(xs: impl Iterator<Item = f64>, ws: impl Iterator<Item = f64>) -> (f64, f64) {
        let (mut count, mut sum) = (0.0f64, 0.0f64);
        for (x, w) in xs.zip(ws) {
            count += w;
            sum += x * w;
        }
        (count, sum)
    }
    // weights apply exactly as in the grouped path: `f64_at(i).unwrap_or(1.0)
    // .max(0.0)`, which on the typed arms folds to the expressions below
    let (count, sum, non_numeric) = match (acol, wcol) {
        (Column::Int(xs), None) => {
            let (c, s) = accum_num(xs.iter().map(|&x| x as f64), std::iter::repeat(1.0));
            (c, s, false)
        }
        (Column::Int(xs), Some(Column::Int(ws))) => {
            let (c, s) = accum_num(
                xs.iter().map(|&x| x as f64),
                ws.iter().map(|&w| (w as f64).max(0.0)),
            );
            (c, s, false)
        }
        (Column::Int(xs), Some(Column::Float(ws))) => {
            let (c, s) = accum_num(xs.iter().map(|&x| x as f64), ws.iter().map(|&w| w.max(0.0)));
            (c, s, false)
        }
        (Column::Float(xs), None) => {
            let (c, s) = accum_num(xs.iter().copied(), std::iter::repeat(1.0));
            (c, s, false)
        }
        (Column::Float(xs), Some(Column::Int(ws))) => {
            let (c, s) = accum_num(xs.iter().copied(), ws.iter().map(|&w| (w as f64).max(0.0)));
            (c, s, false)
        }
        (Column::Float(xs), Some(Column::Float(ws))) => {
            let (c, s) = accum_num(xs.iter().copied(), ws.iter().map(|&w| w.max(0.0)));
            (c, s, false)
        }
        _ => {
            let (mut count, mut sum, mut non_numeric) = (0.0f64, 0.0f64, false);
            for i in 0..n {
                let weight = match wcol {
                    Some(c) => c.f64_at(i).unwrap_or(1.0).max(0.0),
                    None => 1.0,
                };
                count += weight;
                match acol.f64_at(i) {
                    Some(x) => sum += x * weight,
                    None => non_numeric = true,
                }
            }
            (count, sum, non_numeric)
        }
    };

    let agg_value = match q.agg {
        AggFunc::Count => Value::Double(count),
        AggFunc::Sum => {
            if non_numeric {
                return Err(RelalError::TypeMismatch(format!(
                    "sum over non-numeric column {}",
                    q.agg_col
                )));
            }
            Value::Double(sum)
        }
        AggFunc::Avg => {
            if non_numeric {
                return Err(RelalError::TypeMismatch(format!(
                    "avg over non-numeric column {}",
                    q.agg_col
                )));
            }
            if count == 0.0 {
                Value::Null
            } else {
                Value::Double(sum / count)
            }
        }
        AggFunc::Min | AggFunc::Max => unreachable!("handled above"),
    };
    out.push_row_unchecked(vec![agg_value]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate, PredicateAtom};
    use crate::schema::{Attribute, DatabaseSchema, RelationSchema};

    /// A small Example-1-like database for evaluator tests.
    fn example_db() -> Database {
        let schema = DatabaseSchema::new(vec![
            RelationSchema::new(
                "person",
                vec![Attribute::id("pid"), Attribute::text("city")],
            ),
            RelationSchema::new("friend", vec![Attribute::id("pid"), Attribute::id("fid")]),
            RelationSchema::new(
                "poi",
                vec![
                    Attribute::text("address"),
                    Attribute::categorical("type"),
                    Attribute::text("city"),
                    Attribute::double("price"),
                ],
            ),
        ]);
        let mut db = Database::new(schema);
        for (pid, city) in [(1, "NYC"), (2, "NYC"), (3, "Chicago"), (4, "Boston")] {
            db.insert_row("person", vec![Value::Int(pid), Value::from(city)])
                .unwrap();
        }
        for (pid, fid) in [(1, 2), (1, 3), (2, 1), (3, 4)] {
            db.insert_row("friend", vec![Value::Int(pid), Value::Int(fid)])
                .unwrap();
        }
        for (addr, ty, city, price) in [
            ("a1", "hotel", "NYC", 90.0),
            ("a2", "hotel", "NYC", 120.0),
            ("a3", "hotel", "Chicago", 80.0),
            ("a4", "museum", "NYC", 20.0),
            ("a5", "hotel", "Boston", 95.0),
        ] {
            db.insert_row(
                "poi",
                vec![
                    Value::from(addr),
                    Value::from(ty),
                    Value::from(city),
                    Value::Double(price),
                ],
            )
            .unwrap();
        }
        db
    }

    fn q1_expr() -> RaExpr {
        // hotels with price <= 95 in cities where a friend of person 1 lives
        RaExpr::scan("friend", "f")
            .product(RaExpr::scan("person", "p"))
            .product(RaExpr::scan("poi", "h"))
            .select(Predicate::all(vec![
                PredicateAtom::col_eq_const("f.pid", 1i64),
                PredicateAtom::col_eq_col("f.fid", "p.pid"),
                PredicateAtom::col_eq_col("p.city", "h.city"),
                PredicateAtom::col_eq_const("h.type", "hotel"),
                PredicateAtom::col_cmp_const("h.price", CompareOp::Le, 95i64),
            ]))
            .project(vec![
                ("address".into(), "h.address".into()),
                ("price".into(), "h.price".into()),
            ])
    }

    #[test]
    fn scan_qualifies_columns_with_alias() {
        let db = example_db();
        let rel = eval_set(&RaExpr::scan("person", "p"), &db).unwrap();
        assert_eq!(rel.columns, vec!["p.pid", "p.city"]);
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn scan_unknown_relation_errors() {
        let db = example_db();
        assert!(eval_set(&RaExpr::scan("nope", "n"), &db).is_err());
    }

    #[test]
    fn q1_returns_hotels_in_friend_cities() {
        let db = example_db();
        let out = eval_set(&q1_expr(), &db).unwrap().sorted();
        // friends of 1: {2 (NYC), 3 (Chicago)} → hotels ≤95: a1 (NYC, 90), a3 (Chicago, 80)
        assert_eq!(
            out.to_rows(),
            vec![
                vec![Value::from("a1"), Value::Double(90.0)],
                vec![Value::from("a3"), Value::Double(80.0)],
            ]
        );
    }

    #[test]
    fn relaxed_selection_admits_nearby_answers() {
        let db = example_db();
        // relax price <= 95 by 30: the $120 hotel now qualifies
        let expr = RaExpr::scan("poi", "h")
            .select(Predicate::all(vec![
                PredicateAtom::col_eq_const("h.type", "hotel"),
                PredicateAtom::col_eq_const("h.city", "NYC"),
                PredicateAtom::col_cmp_const("h.price", CompareOp::Le, 95i64)
                    .relaxed(crate::distance::DistanceKind::Numeric, 30.0),
            ]))
            .project(vec![("address".into(), "h.address".into())]);
        let out = eval_set(&expr, &db).unwrap().sorted();
        assert_eq!(
            out.to_rows(),
            vec![vec![Value::from("a1")], vec![Value::from("a2")]]
        );
    }

    #[test]
    fn product_rejects_duplicate_columns() {
        let db = example_db();
        let expr = RaExpr::scan("person", "p").product(RaExpr::scan("person", "p"));
        assert!(eval_set(&expr, &db).is_err());
    }

    #[test]
    fn plain_product_computes_cross_join() {
        let db = example_db();
        let expr = RaExpr::scan("person", "p").product(RaExpr::scan("friend", "f"));
        let out = eval_bag(&expr, &db).unwrap();
        assert_eq!(out.len(), 16);
        assert_eq!(out.arity(), 4);
    }

    #[test]
    fn union_concatenates_and_dedupes_under_set_semantics() {
        let db = example_db();
        let cities = RaExpr::scan("person", "p").project(vec![("city".into(), "p.city".into())]);
        let both = cities.clone().union(cities);
        let out = eval_set(&both, &db).unwrap();
        assert_eq!(out.len(), 3); // NYC, Chicago, Boston
        let bag = eval_bag(&both.clone(), &db).unwrap();
        assert_eq!(bag.len(), 8);
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let db = example_db();
        let a = RaExpr::scan("person", "p").project_cols(&["p.city"]);
        let b = RaExpr::scan("friend", "f");
        assert!(eval_set(&a.union(b), &db).is_err());
    }

    #[test]
    fn difference_removes_matching_rows() {
        let db = example_db();
        let all_cities =
            RaExpr::scan("person", "p").project(vec![("city".into(), "p.city".into())]);
        let poi_cities = RaExpr::scan("poi", "h").project(vec![("city".into(), "h.city".into())]);
        // cities of persons that have no POI: none (all three appear in poi)
        let out = eval_set(&all_cities.clone().difference(poi_cities), &db).unwrap();
        assert!(out.is_empty());

        // cities with a POI but no person: none either (poi cities are all person cities)
        let poi_cities = RaExpr::scan("poi", "h").project(vec![("city".into(), "h.city".into())]);
        let out2 = eval_set(&poi_cities.difference(all_cities), &db).unwrap();
        assert!(out2.is_empty());
    }

    #[test]
    fn rename_changes_column_names() {
        let db = example_db();
        let expr = RaExpr::scan("friend", "f").rename(vec!["a".into(), "b".into()]);
        let out = eval_set(&expr, &db).unwrap();
        assert_eq!(out.columns, vec!["a", "b"]);
        let bad = RaExpr::scan("friend", "f").rename(vec!["a".into()]);
        assert!(eval_set(&bad, &db).is_err());
    }

    #[test]
    fn projection_of_unknown_column_errors() {
        let db = example_db();
        let expr = RaExpr::scan("friend", "f").project_cols(&["f.nope"]);
        assert!(eval_set(&expr, &db).is_err());
    }

    #[test]
    fn count_hotels_by_city() {
        let db = example_db();
        let inner = RaExpr::scan("poi", "h")
            .select(Predicate::all(vec![PredicateAtom::col_eq_const(
                "h.type", "hotel",
            )]))
            .project(vec![
                ("city".into(), "h.city".into()),
                ("address".into(), "h.address".into()),
            ]);
        let q = GroupByQuery::new(inner, vec!["city".into()], AggFunc::Count, "address", "n");
        let out = eval_aggregate(&q, &db).unwrap();
        let mut rows = out.to_rows();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Value::from("Boston"), Value::Double(1.0)],
                vec![Value::from("Chicago"), Value::Double(1.0)],
                vec![Value::from("NYC"), Value::Double(2.0)],
            ]
        );
    }

    #[test]
    fn weighted_count_uses_weight_column() {
        let rel = Relation::new(
            vec!["city".into(), "price".into(), "w".into()],
            vec![
                vec![Value::from("NYC"), Value::Double(90.0), Value::Int(3)],
                vec![Value::from("NYC"), Value::Double(100.0), Value::Int(2)],
                vec![Value::from("Boston"), Value::Double(95.0), Value::Int(1)],
            ],
        )
        .unwrap();
        let mut q = GroupByQuery::new(
            RaExpr::scan("unused", "u"),
            vec!["city".into()],
            AggFunc::Count,
            "price",
            "n",
        );
        q.weight_col = Some("w".into());
        let out = aggregate_relation(&rel, &q).unwrap();
        let mut rows = out.to_rows();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Value::from("Boston"), Value::Double(1.0)],
                vec![Value::from("NYC"), Value::Double(5.0)],
            ]
        );
    }

    #[test]
    fn min_max_sum_avg_aggregates() {
        let db = example_db();
        let prices = RaExpr::scan("poi", "h").project(vec![
            ("type".into(), "h.type".into()),
            ("price".into(), "h.price".into()),
        ]);
        for (agg, expected_hotel) in [
            (AggFunc::Min, Value::Double(80.0)),
            (AggFunc::Max, Value::Double(120.0)),
            (AggFunc::Sum, Value::Double(385.0)),
            (AggFunc::Avg, Value::Double(96.25)),
        ] {
            let q = GroupByQuery::new(prices.clone(), vec!["type".into()], agg, "price", "v");
            let out = eval_aggregate(&q, &db).unwrap();
            let hotel_row = out.rows().find(|r| r[0] == Value::from("hotel")).unwrap();
            assert_eq!(hotel_row[1], expected_hotel, "agg {agg}");
        }
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let db = example_db();
        let none = RaExpr::scan("poi", "h")
            .select(Predicate::all(vec![PredicateAtom::col_eq_const(
                "h.type", "airport",
            )]))
            .project(vec![("price".into(), "h.price".into())]);
        let count = GroupByQuery::new(none.clone(), vec![], AggFunc::Count, "price", "n");
        let out = eval_aggregate(&count, &db).unwrap();
        assert_eq!(out.to_rows(), vec![vec![Value::Int(0)]]);
        let min = GroupByQuery::new(none, vec![], AggFunc::Min, "price", "m");
        let out = eval_aggregate(&min, &db).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn avg_over_non_numeric_column_errors() {
        let db = example_db();
        let bad = GroupByQuery::new(
            RaExpr::scan("poi", "h"),
            vec![],
            AggFunc::Avg,
            "h.city",
            "v",
        );
        assert!(eval_aggregate(&bad, &db).is_err());
    }

    #[test]
    fn overlay_provider_prefers_overlay() {
        let db = example_db();
        let mut overlay = HashMap::new();
        overlay.insert(
            "person".to_string(),
            Relation::new(
                vec!["pid".into(), "city".into()],
                vec![vec![Value::Int(9), Value::from("LA")]],
            )
            .unwrap(),
        );
        let provider = OverlayProvider {
            overlay: &overlay,
            base: &db,
        };
        let out = eval_set(&RaExpr::scan("person", "p"), &provider).unwrap();
        assert_eq!(out.len(), 1);
        let friends = eval_set(&RaExpr::scan("friend", "f"), &provider).unwrap();
        assert_eq!(friends.len(), 4);
    }

    #[test]
    fn eval_query_dispatches_on_kind() {
        let db = example_db();
        let ra: QueryExpr = q1_expr().into();
        assert_eq!(eval_query(&ra, &db).unwrap().len(), 2);
        let agg: QueryExpr = GroupByQuery::new(
            RaExpr::scan("poi", "h").project(vec![
                ("city".into(), "h.city".into()),
                ("price".into(), "h.price".into()),
            ]),
            vec!["city".into()],
            AggFunc::Count,
            "price",
            "n",
        )
        .into();
        assert_eq!(eval_query(&agg, &db).unwrap().len(), 3);
    }

    #[test]
    fn join_handles_query_without_equality_conjuncts() {
        let db = example_db();
        // product with only a cross-relation inequality: falls back to
        // nested-loop + filter
        let expr = RaExpr::scan("person", "p")
            .product(RaExpr::scan("poi", "h"))
            .select(Predicate::all(vec![PredicateAtom::ColCol {
                left: "p.pid".into(),
                op: CompareOp::Le,
                right: "h.price".into(),
                distance: crate::distance::DistanceKind::Numeric,
                tol: 0.0,
            }]))
            .project_cols(&["p.pid", "h.address"]);
        let out = eval_set(&expr, &db).unwrap();
        assert_eq!(out.len(), 20); // every pid (1..4) ≤ every price
    }

    /// Nested-loop reference for the join fast paths: cross product + relaxed
    /// filter, the semantics band/hash joins must reproduce exactly.
    fn nested_loop_reference(l: &Relation, r: &Relation, atom: &PredicateAtom) -> Relation {
        let prod = cross_product(l, r).unwrap();
        Predicate::all(vec![atom.clone()]).filter(&prod).unwrap()
    }

    #[test]
    fn band_join_matches_nested_loop_on_relaxed_numeric_equality() {
        let l = Relation::new(
            vec!["l.v".into()],
            vec![
                vec![Value::Double(10.0)],
                vec![Value::Int(25)],
                vec![Value::from("x")],
                vec![Value::Double(f64::NAN)],
                vec![Value::Null],
            ],
        )
        .unwrap();
        let r = Relation::new(
            vec!["r.v".into()],
            vec![
                vec![Value::Double(12.0)],
                vec![Value::Double(24.0)],
                vec![Value::Int(10)],
                vec![Value::from("x")],
                vec![Value::Double(f64::NAN)],
                vec![Value::Null],
                vec![Value::Double(100.0)],
            ],
        )
        .unwrap();
        let atom = PredicateAtom::ColCol {
            left: "l.v".into(),
            op: CompareOp::Eq,
            right: "r.v".into(),
            distance: crate::distance::DistanceKind::Numeric,
            tol: 3.0,
        };
        let key = band_key(&[&atom], &l, &r).expect("band key");
        let fast = band_join(&l, &r, &key).unwrap();
        let slow = nested_loop_reference(&l, &r, &atom);
        assert_eq!(fast, slow, "band join must reproduce the nested loop");
        // sanity: nearby numerics matched, NaN/Null matched only themselves
        assert!(fast
            .rows()
            .any(|row| row[0] == Value::Double(10.0) && row[1] == Value::Double(12.0)));
        assert!(fast
            .rows()
            .any(|row| row[0] == Value::Null && row[1] == Value::Null));
    }

    #[test]
    fn typed_hash_join_keys_match_value_equality() {
        // Int/Int keys use the raw i64 (exact beyond f64's 2^53 integer
        // range); any pair with a Float keys on the total-order key of the
        // `as_f64` view. Every combination must reproduce the nested-loop
        // semantics of `Value` equality: Int(3) = Double(3.0), NaN = NaN,
        // -0.0 ≠ +0.0, and (1<<53)+1 ≠ 1<<53.
        let big = (1i64 << 53) + 1;
        let int_rows = |vals: &[i64]| {
            vals.iter()
                .map(|&v| vec![Value::Int(v)])
                .collect::<Vec<_>>()
        };
        let dbl_rows = |vals: &[f64]| {
            vals.iter()
                .map(|&v| vec![Value::Double(v)])
                .collect::<Vec<_>>()
        };
        let li = Relation::new(vec!["l.k".into()], int_rows(&[3, big, big - 1, -7])).unwrap();
        let ri = Relation::new(vec!["r.k".into()], int_rows(&[big, 3, 3, 5])).unwrap();
        let lf = Relation::new(
            vec!["l.k".into()],
            dbl_rows(&[3.0, f64::NAN, -0.0, f64::INFINITY]),
        )
        .unwrap();
        let rf = Relation::new(
            vec!["r.k".into()],
            dbl_rows(&[0.0, f64::NAN, 3.0, f64::NEG_INFINITY]),
        )
        .unwrap();
        let atom = PredicateAtom::col_eq_col("l.k", "r.k");
        for (l, r) in [(&li, &ri), (&li, &rf), (&lf, &ri), (&lf, &rf)] {
            let fast = hash_join(l, r, &[(0, 0)]).unwrap();
            let slow = nested_loop_reference(l, r, &atom);
            assert_eq!(fast, slow, "typed join keys must match Value equality");
        }
        // spot-check the tricky pairs
        let int_int = hash_join(&li, &ri, &[(0, 0)]).unwrap();
        assert!(int_int.rows().all(|row| row[0] != Value::Int(big - 1)));
        let flt_flt = hash_join(&lf, &rf, &[(0, 0)]).unwrap();
        assert!(flt_flt
            .rows()
            .any(|row| row[0].as_f64().is_some_and(f64::is_nan)));
        assert!(flt_flt.rows().all(|row| row[0] != Value::Double(-0.0)));
    }

    #[test]
    fn band_join_handles_scaled_distances() {
        let l = Relation::new(
            vec!["l.v".into()],
            vec![vec![Value::Double(100.0)], vec![Value::Double(500.0)]],
        )
        .unwrap();
        let r = Relation::new(
            vec!["r.v".into()],
            vec![
                vec![Value::Double(140.0)],
                vec![Value::Double(180.0)],
                vec![Value::Double(480.0)],
            ],
        )
        .unwrap();
        // scale 100: tolerance 0.5 ⇔ |l − r| ≤ 50
        let atom = PredicateAtom::ColCol {
            left: "l.v".into(),
            op: CompareOp::Eq,
            right: "r.v".into(),
            distance: crate::distance::DistanceKind::Scaled(100),
            tol: 0.5,
        };
        let key = band_key(&[&atom], &l, &r).expect("band key");
        let fast = band_join(&l, &r, &key).unwrap();
        assert_eq!(fast, nested_loop_reference(&l, &r, &atom));
        assert_eq!(fast.len(), 2); // (100,140) and (500,480)
    }

    #[test]
    fn relaxed_trivial_and_categorical_equalities_are_hash_joinable() {
        use crate::distance::DistanceKind;
        assert!(is_hashable_eq(DistanceKind::Trivial, 5.0));
        assert!(is_hashable_eq(DistanceKind::Categorical, 0.5));
        assert!(!is_hashable_eq(DistanceKind::Categorical, 1.0));
        assert!(!is_hashable_eq(DistanceKind::Numeric, 0.5));
        assert!(is_hashable_eq(DistanceKind::Numeric, 0.0));

        // a relaxed trivial-distance join still picks the hash path and
        // agrees with the nested loop
        let l = Relation::new(
            vec!["l.v".into()],
            vec![vec![Value::from("a")], vec![Value::from("b")]],
        )
        .unwrap();
        let r = Relation::new(
            vec!["r.v".into()],
            vec![
                vec![Value::from("b")],
                vec![Value::from("c")],
                vec![Value::from("b")],
            ],
        )
        .unwrap();
        let atom = PredicateAtom::ColCol {
            left: "l.v".into(),
            op: CompareOp::Eq,
            right: "r.v".into(),
            distance: DistanceKind::Trivial,
            tol: 2.0,
        };
        let keys = equality_keys(&[&atom], &l, &r);
        assert_eq!(keys, vec![(0, 0)]);
        let fast = hash_join(&l, &r, &keys).unwrap();
        let slow = nested_loop_reference(&l, &r, &atom);
        assert_eq!(fast.clone().sorted(), slow.sorted());
        assert_eq!(fast.len(), 2);
    }

    #[test]
    fn selection_referencing_missing_column_errors() {
        let db = example_db();
        let expr = RaExpr::scan("person", "p")
            .product(RaExpr::scan("friend", "f"))
            .select(Predicate::all(vec![PredicateAtom::col_eq_col(
                "p.pid", "zzz.col",
            )]));
        assert!(eval_set(&expr, &db).is_err());
    }
}
