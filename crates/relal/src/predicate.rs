//! Selection predicates, including the *relaxed* forms used by bounded
//! evaluation plans.
//!
//! A [`Predicate`] is a conjunction of [`PredicateAtom`]s. Each atom compares
//! a column against a constant or another column, and optionally carries a
//! relaxation tolerance: an atom with tolerance `r > 0` implements the
//! relaxed condition `|dis_A(A, c)| ≤ r` of Sec. 3.1 / Sec. 5 ("evaluation
//! plan ξ_E").

use crate::distance::DistanceKind;
use crate::error::{RelalError, Result};
use crate::storage::Relation;
use crate::value::Value;

/// Comparison operators supported in selection conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CompareOp {
    /// Evaluates the operator on two values using the total value order.
    pub fn eval(&self, a: &Value, b: &Value) -> bool {
        match self {
            CompareOp::Eq => a == b,
            CompareOp::Ne => a != b,
            CompareOp::Lt => a < b,
            CompareOp::Le => a <= b,
            CompareOp::Gt => a > b,
            CompareOp::Ge => a >= b,
        }
    }

    /// Evaluates the operator *relaxed by* `tol` under distance `dk`.
    ///
    /// - `Eq` becomes `dis(a, b) ≤ tol`;
    /// - `Ne` is never relaxed (relaxing a negation would only shrink the
    ///   answer set);
    /// - inequalities are widened by `tol` on the permissive side, e.g.
    ///   `a ≤ b` becomes `a ≤ b + tol` for numeric values.
    pub fn eval_relaxed(&self, a: &Value, b: &Value, dk: DistanceKind, tol: f64) -> bool {
        if tol <= 0.0 {
            return self.eval(a, b);
        }
        match self {
            CompareOp::Eq => dk.distance(a, b) <= tol,
            CompareOp::Ne => a != b,
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
                match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => {
                        // tolerances live in distance space; convert back to
                        // value space for scaled distances
                        let slack = tol * dk.unit();
                        match self {
                            CompareOp::Lt => x < y + slack,
                            CompareOp::Le => x <= y + slack,
                            CompareOp::Gt => x > y - slack,
                            CompareOp::Ge => x >= y - slack,
                            _ => unreachable!(),
                        }
                    }
                    // non-numeric inequality: fall back to the strict order
                    _ => self.eval(a, b),
                }
            }
        }
    }

    /// The operator with left and right operands swapped (`a op b` ⇔ `b op' a`).
    pub fn flipped(&self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// True for `=`.
    pub fn is_eq(&self) -> bool {
        matches!(self, CompareOp::Eq)
    }
}

/// One conjunct of a selection condition.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateAtom {
    /// `column op constant`, optionally relaxed by `tol` under `distance`.
    ColConst {
        /// Column name (qualified, e.g. `"h.price"`).
        col: String,
        /// Comparison operator.
        op: CompareOp,
        /// Constant operand.
        value: Value,
        /// Distance function used when `tol > 0`.
        distance: DistanceKind,
        /// Relaxation tolerance (0 = exact condition).
        tol: f64,
    },
    /// `left-column op right-column`, optionally relaxed by `tol`.
    ColCol {
        /// Left column name.
        left: String,
        /// Comparison operator.
        op: CompareOp,
        /// Right column name.
        right: String,
        /// Distance function used when `tol > 0`.
        distance: DistanceKind,
        /// Relaxation tolerance (0 = exact condition).
        tol: f64,
    },
}

impl PredicateAtom {
    /// Exact `column = constant` atom.
    pub fn col_eq_const(col: impl Into<String>, value: impl Into<Value>) -> Self {
        PredicateAtom::ColConst {
            col: col.into(),
            op: CompareOp::Eq,
            value: value.into(),
            distance: DistanceKind::Trivial,
            tol: 0.0,
        }
    }

    /// Exact `column op constant` atom with a numeric distance (used when the
    /// atom may later be relaxed).
    pub fn col_cmp_const(col: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        PredicateAtom::ColConst {
            col: col.into(),
            op,
            value: value.into(),
            distance: DistanceKind::Numeric,
            tol: 0.0,
        }
    }

    /// Exact `left = right` join atom.
    pub fn col_eq_col(left: impl Into<String>, right: impl Into<String>) -> Self {
        PredicateAtom::ColCol {
            left: left.into(),
            op: CompareOp::Eq,
            right: right.into(),
            distance: DistanceKind::Trivial,
            tol: 0.0,
        }
    }

    /// Returns the same atom with relaxation tolerance `tol` and distance `dk`.
    pub fn relaxed(mut self, dk: DistanceKind, tol: f64) -> Self {
        match &mut self {
            PredicateAtom::ColConst {
                distance, tol: t, ..
            }
            | PredicateAtom::ColCol {
                distance, tol: t, ..
            } => {
                *distance = dk;
                *t = tol;
            }
        }
        self
    }

    /// The columns referenced by this atom.
    pub fn columns(&self) -> Vec<&str> {
        match self {
            PredicateAtom::ColConst { col, .. } => vec![col.as_str()],
            PredicateAtom::ColCol { left, right, .. } => vec![left.as_str(), right.as_str()],
        }
    }

    /// The relaxation tolerance of this atom.
    pub fn tolerance(&self) -> f64 {
        match self {
            PredicateAtom::ColConst { tol, .. } | PredicateAtom::ColCol { tol, .. } => *tol,
        }
    }

    /// Evaluates the atom on a row of `relation`-shaped columns.
    pub fn eval(&self, columns: &[String], row: &[Value]) -> Result<bool> {
        let idx = |name: &str| -> Result<usize> {
            columns
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| RelalError::UnknownColumn(name.to_string()))
        };
        match self {
            PredicateAtom::ColConst {
                col,
                op,
                value,
                distance,
                tol,
            } => {
                let i = idx(col)?;
                Ok(op.eval_relaxed(&row[i], value, *distance, *tol))
            }
            PredicateAtom::ColCol {
                left,
                op,
                right,
                distance,
                tol,
            } => {
                let (i, j) = (idx(left)?, idx(right)?);
                Ok(op.eval_relaxed(&row[i], &row[j], *distance, *tol))
            }
        }
    }
}

/// A conjunction of [`PredicateAtom`]s. The empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    /// The conjuncts.
    pub atoms: Vec<PredicateAtom>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn always_true() -> Self {
        Predicate { atoms: Vec::new() }
    }

    /// A predicate from a list of conjuncts.
    pub fn all(atoms: Vec<PredicateAtom>) -> Self {
        Predicate { atoms }
    }

    /// Adds a conjunct.
    pub fn and(mut self, atom: PredicateAtom) -> Self {
        self.atoms.push(atom);
        self
    }

    /// Returns `true` if the predicate has no conjuncts.
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates the conjunction on a row.
    pub fn eval(&self, columns: &[String], row: &[Value]) -> Result<bool> {
        for atom in &self.atoms {
            if !atom.eval(columns, row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Filters a relation, keeping the rows on which the predicate holds.
    pub fn filter(&self, rel: &Relation) -> Result<Relation> {
        let mut out = Relation::empty(rel.columns.clone());
        for row in &rel.rows {
            if self.eval(&rel.columns, row)? {
                out.rows.push(row.clone());
            }
        }
        Ok(out)
    }

    /// All columns referenced by the predicate.
    pub fn columns(&self) -> Vec<&str> {
        self.atoms.iter().flat_map(|a| a.columns()).collect()
    }

    /// The maximum relaxation tolerance across all atoms (0 when exact).
    pub fn max_tolerance(&self) -> f64 {
        self.atoms.iter().map(|a| a.tolerance()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<String> {
        vec!["p".into(), "q".into()]
    }

    #[test]
    fn compare_op_eval_covers_all_operators() {
        let (a, b) = (Value::Int(3), Value::Int(5));
        assert!(!CompareOp::Eq.eval(&a, &b));
        assert!(CompareOp::Ne.eval(&a, &b));
        assert!(CompareOp::Lt.eval(&a, &b));
        assert!(CompareOp::Le.eval(&a, &b));
        assert!(!CompareOp::Gt.eval(&a, &b));
        assert!(!CompareOp::Ge.eval(&a, &b));
        assert!(CompareOp::Ge.eval(&b, &a));
    }

    #[test]
    fn relaxed_equality_uses_distance() {
        let op = CompareOp::Eq;
        assert!(op.eval_relaxed(&Value::Int(99), &Value::Int(95), DistanceKind::Numeric, 4.0));
        assert!(!op.eval_relaxed(
            &Value::Int(100),
            &Value::Int(95),
            DistanceKind::Numeric,
            4.0
        ));
        // tol = 0 falls back to exact equality
        assert!(!op.eval_relaxed(&Value::Int(96), &Value::Int(95), DistanceKind::Numeric, 0.0));
    }

    #[test]
    fn relaxed_le_widens_threshold() {
        // price ≤ 95 relaxed by 4 accepts 99 (the Example 1 hotel at $99)
        let op = CompareOp::Le;
        assert!(op.eval_relaxed(&Value::Int(99), &Value::Int(95), DistanceKind::Numeric, 4.0));
        assert!(!op.eval_relaxed(
            &Value::Int(100),
            &Value::Int(95),
            DistanceKind::Numeric,
            4.0
        ));
        let op = CompareOp::Ge;
        assert!(op.eval_relaxed(&Value::Int(91), &Value::Int(95), DistanceKind::Numeric, 4.0));
        assert!(!op.eval_relaxed(&Value::Int(90), &Value::Int(95), DistanceKind::Numeric, 4.0));
    }

    #[test]
    fn ne_is_never_relaxed() {
        let op = CompareOp::Ne;
        assert!(op.eval_relaxed(
            &Value::Int(99),
            &Value::Int(95),
            DistanceKind::Numeric,
            100.0
        ));
        assert!(!op.eval_relaxed(
            &Value::Int(95),
            &Value::Int(95),
            DistanceKind::Numeric,
            100.0
        ));
    }

    #[test]
    fn flipped_inverts_direction() {
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
        assert_eq!(CompareOp::Ge.flipped(), CompareOp::Le);
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
    }

    #[test]
    fn atom_eval_col_const_and_col_col() {
        let row = vec![Value::Int(10), Value::Int(10)];
        let eq_const = PredicateAtom::col_eq_const("p", 10i64);
        assert!(eq_const.eval(&cols(), &row).unwrap());
        let eq_col = PredicateAtom::col_eq_col("p", "q");
        assert!(eq_col.eval(&cols(), &row).unwrap());
        let row2 = vec![Value::Int(10), Value::Int(11)];
        assert!(!eq_col.eval(&cols(), &row2).unwrap());
    }

    #[test]
    fn atom_eval_reports_unknown_column() {
        let atom = PredicateAtom::col_eq_const("missing", 1i64);
        assert!(atom.eval(&cols(), &[Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn relaxed_atom_builder_sets_tolerance() {
        let atom = PredicateAtom::col_eq_const("p", 10i64).relaxed(DistanceKind::Numeric, 2.0);
        assert_eq!(atom.tolerance(), 2.0);
        let row = vec![Value::Int(12), Value::Int(0)];
        assert!(atom.eval(&cols(), &row).unwrap());
        let row = vec![Value::Int(13), Value::Int(0)];
        assert!(!atom.eval(&cols(), &row).unwrap());
    }

    #[test]
    fn predicate_conjunction_and_filter() {
        let pred = Predicate::always_true()
            .and(PredicateAtom::col_cmp_const("p", CompareOp::Ge, 5i64))
            .and(PredicateAtom::col_cmp_const("q", CompareOp::Lt, 100i64));
        let rel = Relation::new(
            cols(),
            vec![
                vec![Value::Int(6), Value::Int(50)],
                vec![Value::Int(4), Value::Int(50)],
                vec![Value::Int(6), Value::Int(150)],
            ],
        )
        .unwrap();
        let out = pred.filter(&rel).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(6), Value::Int(50)]]);
        assert!(Predicate::always_true().is_trivial());
        assert_eq!(pred.max_tolerance(), 0.0);
    }

    #[test]
    fn predicate_columns_lists_all_referenced_columns() {
        let pred = Predicate::all(vec![
            PredicateAtom::col_eq_const("p", 1i64),
            PredicateAtom::col_eq_col("p", "q"),
        ]);
        let cols = pred.columns();
        assert!(cols.contains(&"p") && cols.contains(&"q"));
        assert_eq!(cols.len(), 3);
    }
}
