//! Selection predicates, including the *relaxed* forms used by bounded
//! evaluation plans.
//!
//! A [`Predicate`] is a conjunction of [`PredicateAtom`]s. Each atom compares
//! a column against a constant or another column, and optionally carries a
//! relaxation tolerance: an atom with tolerance `r > 0` implements the
//! relaxed condition `|dis_A(A, c)| ≤ r` of Sec. 3.1 / Sec. 5 ("evaluation
//! plan ξ_E").

use std::cmp::Ordering;
use std::sync::Arc;

use crate::distance::DistanceKind;
use crate::error::{RelalError, Result};
use crate::storage::{Column, Relation};
use crate::value::Value;

/// Comparison operators supported in selection conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CompareOp {
    /// Evaluates the operator on two values using the total value order.
    pub fn eval(&self, a: &Value, b: &Value) -> bool {
        match self {
            CompareOp::Eq => a == b,
            CompareOp::Ne => a != b,
            CompareOp::Lt => a < b,
            CompareOp::Le => a <= b,
            CompareOp::Gt => a > b,
            CompareOp::Ge => a >= b,
        }
    }

    /// Evaluates the operator *relaxed by* `tol` under distance `dk`.
    ///
    /// - `Eq` becomes `dis(a, b) ≤ tol`;
    /// - `Ne` is never relaxed (relaxing a negation would only shrink the
    ///   answer set);
    /// - inequalities are widened by `tol` on the permissive side, e.g.
    ///   `a ≤ b` becomes `a ≤ b + tol` for numeric values.
    pub fn eval_relaxed(&self, a: &Value, b: &Value, dk: DistanceKind, tol: f64) -> bool {
        if tol <= 0.0 {
            return self.eval(a, b);
        }
        match self {
            CompareOp::Eq => dk.distance(a, b) <= tol,
            CompareOp::Ne => a != b,
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
                match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => {
                        // tolerances live in distance space; convert back to
                        // value space for scaled distances
                        let slack = tol * dk.unit();
                        match self {
                            CompareOp::Lt => x < y + slack,
                            CompareOp::Le => x <= y + slack,
                            CompareOp::Gt => x > y - slack,
                            CompareOp::Ge => x >= y - slack,
                            _ => unreachable!(),
                        }
                    }
                    // non-numeric inequality: fall back to the strict order
                    _ => self.eval(a, b),
                }
            }
        }
    }

    /// The operator with left and right operands swapped (`a op b` ⇔ `b op' a`).
    pub fn flipped(&self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// True for `=`.
    pub fn is_eq(&self) -> bool {
        matches!(self, CompareOp::Eq)
    }
}

/// One conjunct of a selection condition.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateAtom {
    /// `column op constant`, optionally relaxed by `tol` under `distance`.
    ColConst {
        /// Column name (qualified, e.g. `"h.price"`).
        col: String,
        /// Comparison operator.
        op: CompareOp,
        /// Constant operand.
        value: Value,
        /// Distance function used when `tol > 0`.
        distance: DistanceKind,
        /// Relaxation tolerance (0 = exact condition).
        tol: f64,
    },
    /// `left-column op right-column`, optionally relaxed by `tol`.
    ColCol {
        /// Left column name.
        left: String,
        /// Comparison operator.
        op: CompareOp,
        /// Right column name.
        right: String,
        /// Distance function used when `tol > 0`.
        distance: DistanceKind,
        /// Relaxation tolerance (0 = exact condition).
        tol: f64,
    },
}

impl PredicateAtom {
    /// Exact `column = constant` atom.
    pub fn col_eq_const(col: impl Into<String>, value: impl Into<Value>) -> Self {
        PredicateAtom::ColConst {
            col: col.into(),
            op: CompareOp::Eq,
            value: value.into(),
            distance: DistanceKind::Trivial,
            tol: 0.0,
        }
    }

    /// Exact `column op constant` atom with a numeric distance (used when the
    /// atom may later be relaxed).
    pub fn col_cmp_const(col: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        PredicateAtom::ColConst {
            col: col.into(),
            op,
            value: value.into(),
            distance: DistanceKind::Numeric,
            tol: 0.0,
        }
    }

    /// Exact `left = right` join atom.
    pub fn col_eq_col(left: impl Into<String>, right: impl Into<String>) -> Self {
        PredicateAtom::ColCol {
            left: left.into(),
            op: CompareOp::Eq,
            right: right.into(),
            distance: DistanceKind::Trivial,
            tol: 0.0,
        }
    }

    /// Returns the same atom with relaxation tolerance `tol` and distance `dk`.
    pub fn relaxed(mut self, dk: DistanceKind, tol: f64) -> Self {
        match &mut self {
            PredicateAtom::ColConst {
                distance, tol: t, ..
            }
            | PredicateAtom::ColCol {
                distance, tol: t, ..
            } => {
                *distance = dk;
                *t = tol;
            }
        }
        self
    }

    /// The columns referenced by this atom.
    pub fn columns(&self) -> Vec<&str> {
        match self {
            PredicateAtom::ColConst { col, .. } => vec![col.as_str()],
            PredicateAtom::ColCol { left, right, .. } => vec![left.as_str(), right.as_str()],
        }
    }

    /// The relaxation tolerance of this atom.
    pub fn tolerance(&self) -> f64 {
        match self {
            PredicateAtom::ColConst { tol, .. } | PredicateAtom::ColCol { tol, .. } => *tol,
        }
    }

    /// Evaluates the atom on a row of `relation`-shaped columns.
    pub fn eval(&self, columns: &[String], row: &[Value]) -> Result<bool> {
        let idx = |name: &str| -> Result<usize> {
            columns
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| RelalError::UnknownColumn(name.to_string()))
        };
        match self {
            PredicateAtom::ColConst {
                col,
                op,
                value,
                distance,
                tol,
            } => {
                let i = idx(col)?;
                Ok(op.eval_relaxed(&row[i], value, *distance, *tol))
            }
            PredicateAtom::ColCol {
                left,
                op,
                right,
                distance,
                tol,
            } => {
                let (i, j) = (idx(left)?, idx(right)?);
                Ok(op.eval_relaxed(&row[i], &row[j], *distance, *tol))
            }
        }
    }

    /// Compiles the atom into a per-row test over the typed columns of `rel`:
    /// column names are resolved once, and the returned kernel reads the
    /// column vectors directly (dictionary codes for strings, raw `i64`/`f64`
    /// slices for numerics) instead of materialising rows. Semantically
    /// identical to calling [`PredicateAtom::eval`] on every row.
    pub fn kernel<'a>(&'a self, rel: &'a Relation) -> Result<Box<dyn Fn(usize) -> bool + 'a>> {
        match self {
            PredicateAtom::ColConst {
                col,
                op,
                value,
                distance,
                tol,
            } => {
                let c = rel.col(rel.column_index(col)?);
                Ok(const_kernel(c, *op, value, *distance, *tol))
            }
            PredicateAtom::ColCol {
                left,
                op,
                right,
                distance,
                tol,
            } => {
                let lc = rel.col(rel.column_index(left)?);
                let rc = rel.col(rel.column_index(right)?);
                Ok(col_col_kernel(lc, rc, *op, *distance, *tol))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// vectorized predicate kernels
// ---------------------------------------------------------------------------

/// `op` applied to a total-order comparison result — exactly how
/// [`CompareOp::eval`] reads [`Value::cmp`].
#[inline]
fn op_on_ordering(op: CompareOp, o: Ordering) -> bool {
    match op {
        CompareOp::Eq => o == Ordering::Equal,
        CompareOp::Ne => o != Ordering::Equal,
        CompareOp::Lt => o == Ordering::Less,
        CompareOp::Le => o != Ordering::Greater,
        CompareOp::Gt => o == Ordering::Greater,
        CompareOp::Ge => o != Ordering::Less,
    }
}

/// Relaxed comparison of two numeric values given their value-equality and
/// float interpretations — mirrors [`CompareOp::eval_relaxed`] on the numeric
/// paths bit for bit.
#[inline]
fn numeric_relaxed(
    op: CompareOp,
    eq: Ordering,
    x: f64,
    y: f64,
    dk: DistanceKind,
    tol: f64,
) -> bool {
    if tol <= 0.0 {
        return op_on_ordering(op, eq);
    }
    match op {
        CompareOp::Eq => {
            let d = if eq == Ordering::Equal {
                0.0
            } else {
                dk.numeric_gap(x, y)
            };
            d <= tol
        }
        CompareOp::Ne => eq != Ordering::Equal,
        CompareOp::Lt => x < y + tol * dk.unit(),
        CompareOp::Le => x <= y + tol * dk.unit(),
        CompareOp::Gt => x > y - tol * dk.unit(),
        CompareOp::Ge => x >= y - tol * dk.unit(),
    }
}

/// Relaxed comparison of two strings (with the equality precomputed, e.g.
/// from dictionary codes) — mirrors [`CompareOp::eval_relaxed`] on `(Str,
/// Str)` operands: equality relaxes through the distance kind, inequalities
/// fall back to the strict lexicographic order.
#[inline]
fn str_relaxed(op: CompareOp, eq: bool, a: &str, b: &str, dk: DistanceKind, tol: f64) -> bool {
    if tol <= 0.0 {
        return match op {
            CompareOp::Eq => eq,
            CompareOp::Ne => !eq,
            _ => op_on_ordering(op, a.cmp(b)),
        };
    }
    match op {
        CompareOp::Eq => {
            eq || match dk {
                DistanceKind::Categorical => 1.0 <= tol,
                // numeric distances on strings and the trivial distance are
                // +∞ across distinct strings
                _ => false,
            }
        }
        CompareOp::Ne => !eq,
        // non-numeric inequality: strict order, as in eval_relaxed
        _ => op_on_ordering(op, a.cmp(b)),
    }
}

/// Kernel for `column op constant` — the row-at-a-time scalar reference the
/// chunked mask kernels in [`crate::kernel`] are verified against.
pub(crate) fn const_kernel<'a>(
    c: &'a Column,
    op: CompareOp,
    value: &'a Value,
    dk: DistanceKind,
    tol: f64,
) -> Box<dyn Fn(usize) -> bool + 'a> {
    match c {
        // dictionary-coded strings: evaluate once per distinct string and
        // look the verdict up by code
        Column::Str { codes, dict } => {
            let table: Vec<bool> = dict
                .strings()
                .iter()
                .map(|s| op.eval_relaxed(&Value::Str(s.clone()), value, dk, tol))
                .collect();
            Box::new(move |i| table[codes[i] as usize])
        }
        Column::Int(xs) => match value {
            Value::Int(c0) => {
                let (ci, cf) = (*c0, *c0 as f64);
                Box::new(move |i| numeric_relaxed(op, xs[i].cmp(&ci), xs[i] as f64, cf, dk, tol))
            }
            Value::Double(c0) => {
                let cf = *c0;
                Box::new(move |i| {
                    let x = xs[i] as f64;
                    numeric_relaxed(op, x.total_cmp(&cf), x, cf, dk, tol)
                })
            }
            _ => Box::new(move |i| op.eval_relaxed(&Value::Int(xs[i]), value, dk, tol)),
        },
        Column::Float(xs) => match value.as_f64() {
            Some(cf) if value.is_numeric() => {
                Box::new(move |i| numeric_relaxed(op, xs[i].total_cmp(&cf), xs[i], cf, dk, tol))
            }
            _ => Box::new(move |i| op.eval_relaxed(&Value::Double(xs[i]), value, dk, tol)),
        },
        Column::Bool(xs) => Box::new(move |i| op.eval_relaxed(&Value::Bool(xs[i]), value, dk, tol)),
        Column::Mixed(vals) => Box::new(move |i| op.eval_relaxed(&vals[i], value, dk, tol)),
    }
}

/// Kernel for `left-column op right-column` — the row-at-a-time scalar
/// reference the chunked mask kernels in [`crate::kernel`] are verified
/// against.
pub(crate) fn col_col_kernel<'a>(
    lc: &'a Column,
    rc: &'a Column,
    op: CompareOp,
    dk: DistanceKind,
    tol: f64,
) -> Box<dyn Fn(usize) -> bool + 'a> {
    match (lc, rc) {
        (Column::Int(xs), Column::Int(ys)) => Box::new(move |i| {
            numeric_relaxed(op, xs[i].cmp(&ys[i]), xs[i] as f64, ys[i] as f64, dk, tol)
        }),
        (Column::Int(xs), Column::Float(ys)) => Box::new(move |i| {
            let (x, y) = (xs[i] as f64, ys[i]);
            numeric_relaxed(op, x.total_cmp(&y), x, y, dk, tol)
        }),
        (Column::Float(xs), Column::Int(ys)) => Box::new(move |i| {
            let (x, y) = (xs[i], ys[i] as f64);
            numeric_relaxed(op, x.total_cmp(&y), x, y, dk, tol)
        }),
        (Column::Float(xs), Column::Float(ys)) => {
            Box::new(move |i| numeric_relaxed(op, xs[i].total_cmp(&ys[i]), xs[i], ys[i], dk, tol))
        }
        (
            Column::Str {
                codes: la,
                dict: ld,
            },
            Column::Str {
                codes: ra,
                dict: rd,
            },
        ) => {
            let same_dict = Arc::ptr_eq(ld, rd);
            Box::new(move |i| {
                let (a, b) = (ld.get(la[i]), rd.get(ra[i]));
                let eq = if same_dict { la[i] == ra[i] } else { a == b };
                str_relaxed(op, eq, a, b, dk, tol)
            })
        }
        _ => Box::new(move |i| op.eval_relaxed(&lc.value(i), &rc.value(i), dk, tol)),
    }
}

/// A conjunction of [`PredicateAtom`]s. The empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    /// The conjuncts.
    pub atoms: Vec<PredicateAtom>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn always_true() -> Self {
        Predicate { atoms: Vec::new() }
    }

    /// A predicate from a list of conjuncts.
    pub fn all(atoms: Vec<PredicateAtom>) -> Self {
        Predicate { atoms }
    }

    /// Adds a conjunct.
    pub fn and(mut self, atom: PredicateAtom) -> Self {
        self.atoms.push(atom);
        self
    }

    /// Returns `true` if the predicate has no conjuncts.
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates the conjunction on a row.
    pub fn eval(&self, columns: &[String], row: &[Value]) -> Result<bool> {
        for atom in &self.atoms {
            if !atom.eval(columns, row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The indices of the rows on which the predicate holds, in row order.
    /// Atoms are compiled once into chunked mask kernels (see
    /// [`crate::kernel`]) and the conjunction is evaluated one 64-row mask
    /// word at a time: each atom fills a `u64` bitmask for the chunk, words
    /// are ANDed (skipping remaining atoms as soon as a word reaches zero),
    /// and surviving bits are emitted as row indices — no per-row virtual
    /// calls and no intermediate selection vectors.
    pub fn selection(&self, rel: &Relation) -> Result<Vec<usize>> {
        if rel.is_empty() {
            // preserve the row representation's lazy column resolution: with
            // no rows, unknown columns are not an error (the per-row
            // evaluator never ran on any row)
            return Ok(Vec::new());
        }
        let masks: Vec<_> = self
            .atoms
            .iter()
            .map(|a| crate::kernel::compile_atom(a, rel))
            .collect::<Result<_>>()?;
        Ok(crate::kernel::fused_selection(&masks, rel.len()))
    }

    /// The selection evaluated with the row-at-a-time scalar kernels
    /// ([`PredicateAtom::kernel`]) — the reference implementation the chunked
    /// mask path is compared against by the property suite and the `figures
    /// kernel` table. Bit-for-bit identical to [`Predicate::selection`].
    pub fn selection_scalar(&self, rel: &Relation) -> Result<Vec<usize>> {
        if rel.is_empty() {
            return Ok(Vec::new());
        }
        let kernels: Vec<_> = self
            .atoms
            .iter()
            .map(|a| a.kernel(rel))
            .collect::<Result<_>>()?;
        Ok((0..rel.len())
            .filter(|&i| kernels.iter().all(|k| k(i)))
            .collect())
    }

    /// Filters a relation, keeping the rows on which the predicate holds.
    /// Runs as a columnar selection followed by one per-column gather.
    pub fn filter(&self, rel: &Relation) -> Result<Relation> {
        if self.atoms.is_empty() || rel.is_empty() {
            return Ok(rel.clone());
        }
        let sel = self.selection(rel)?;
        Ok(rel.take_rows(&sel))
    }

    /// All columns referenced by the predicate.
    pub fn columns(&self) -> Vec<&str> {
        self.atoms.iter().flat_map(|a| a.columns()).collect()
    }

    /// The maximum relaxation tolerance across all atoms (0 when exact).
    pub fn max_tolerance(&self) -> f64 {
        self.atoms.iter().map(|a| a.tolerance()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<String> {
        vec!["p".into(), "q".into()]
    }

    #[test]
    fn compare_op_eval_covers_all_operators() {
        let (a, b) = (Value::Int(3), Value::Int(5));
        assert!(!CompareOp::Eq.eval(&a, &b));
        assert!(CompareOp::Ne.eval(&a, &b));
        assert!(CompareOp::Lt.eval(&a, &b));
        assert!(CompareOp::Le.eval(&a, &b));
        assert!(!CompareOp::Gt.eval(&a, &b));
        assert!(!CompareOp::Ge.eval(&a, &b));
        assert!(CompareOp::Ge.eval(&b, &a));
    }

    #[test]
    fn relaxed_equality_uses_distance() {
        let op = CompareOp::Eq;
        assert!(op.eval_relaxed(&Value::Int(99), &Value::Int(95), DistanceKind::Numeric, 4.0));
        assert!(!op.eval_relaxed(
            &Value::Int(100),
            &Value::Int(95),
            DistanceKind::Numeric,
            4.0
        ));
        // tol = 0 falls back to exact equality
        assert!(!op.eval_relaxed(&Value::Int(96), &Value::Int(95), DistanceKind::Numeric, 0.0));
    }

    #[test]
    fn relaxed_le_widens_threshold() {
        // price ≤ 95 relaxed by 4 accepts 99 (the Example 1 hotel at $99)
        let op = CompareOp::Le;
        assert!(op.eval_relaxed(&Value::Int(99), &Value::Int(95), DistanceKind::Numeric, 4.0));
        assert!(!op.eval_relaxed(
            &Value::Int(100),
            &Value::Int(95),
            DistanceKind::Numeric,
            4.0
        ));
        let op = CompareOp::Ge;
        assert!(op.eval_relaxed(&Value::Int(91), &Value::Int(95), DistanceKind::Numeric, 4.0));
        assert!(!op.eval_relaxed(&Value::Int(90), &Value::Int(95), DistanceKind::Numeric, 4.0));
    }

    #[test]
    fn ne_is_never_relaxed() {
        let op = CompareOp::Ne;
        assert!(op.eval_relaxed(
            &Value::Int(99),
            &Value::Int(95),
            DistanceKind::Numeric,
            100.0
        ));
        assert!(!op.eval_relaxed(
            &Value::Int(95),
            &Value::Int(95),
            DistanceKind::Numeric,
            100.0
        ));
    }

    #[test]
    fn flipped_inverts_direction() {
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
        assert_eq!(CompareOp::Ge.flipped(), CompareOp::Le);
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
    }

    #[test]
    fn atom_eval_col_const_and_col_col() {
        let row = vec![Value::Int(10), Value::Int(10)];
        let eq_const = PredicateAtom::col_eq_const("p", 10i64);
        assert!(eq_const.eval(&cols(), &row).unwrap());
        let eq_col = PredicateAtom::col_eq_col("p", "q");
        assert!(eq_col.eval(&cols(), &row).unwrap());
        let row2 = vec![Value::Int(10), Value::Int(11)];
        assert!(!eq_col.eval(&cols(), &row2).unwrap());
    }

    #[test]
    fn atom_eval_reports_unknown_column() {
        let atom = PredicateAtom::col_eq_const("missing", 1i64);
        assert!(atom.eval(&cols(), &[Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn relaxed_atom_builder_sets_tolerance() {
        let atom = PredicateAtom::col_eq_const("p", 10i64).relaxed(DistanceKind::Numeric, 2.0);
        assert_eq!(atom.tolerance(), 2.0);
        let row = vec![Value::Int(12), Value::Int(0)];
        assert!(atom.eval(&cols(), &row).unwrap());
        let row = vec![Value::Int(13), Value::Int(0)];
        assert!(!atom.eval(&cols(), &row).unwrap());
    }

    #[test]
    fn predicate_conjunction_and_filter() {
        let pred = Predicate::always_true()
            .and(PredicateAtom::col_cmp_const("p", CompareOp::Ge, 5i64))
            .and(PredicateAtom::col_cmp_const("q", CompareOp::Lt, 100i64));
        let rel = Relation::new(
            cols(),
            vec![
                vec![Value::Int(6), Value::Int(50)],
                vec![Value::Int(4), Value::Int(50)],
                vec![Value::Int(6), Value::Int(150)],
            ],
        )
        .unwrap();
        let out = pred.filter(&rel).unwrap();
        assert_eq!(out.to_rows(), vec![vec![Value::Int(6), Value::Int(50)]]);
        assert!(Predicate::always_true().is_trivial());
        assert_eq!(pred.max_tolerance(), 0.0);
    }

    #[test]
    fn predicate_columns_lists_all_referenced_columns() {
        let pred = Predicate::all(vec![
            PredicateAtom::col_eq_const("p", 1i64),
            PredicateAtom::col_eq_col("p", "q"),
        ]);
        let cols = pred.columns();
        assert!(cols.contains(&"p") && cols.contains(&"q"));
        assert_eq!(cols.len(), 3);
    }
}
