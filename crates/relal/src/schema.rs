//! Relation and database schemas.

use crate::distance::DistanceKind;
use crate::error::{RelalError, Result};
use crate::value::ValueType;

/// An attribute of a relation schema: a name, a type, and the distance
/// function used by the accuracy measure and the access schema (Sec. 2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (unqualified, e.g. `"price"`).
    pub name: String,
    /// Value type.
    pub ty: ValueType,
    /// Distance function for this attribute.
    pub distance: DistanceKind,
}

impl Attribute {
    /// A numeric attribute with the `|a-b|` distance.
    pub fn numeric(name: impl Into<String>, ty: ValueType) -> Self {
        Attribute {
            name: name.into(),
            ty,
            distance: DistanceKind::Numeric,
        }
    }

    /// An integer attribute with the numeric distance.
    pub fn int(name: impl Into<String>) -> Self {
        Attribute::numeric(name, ValueType::Int)
    }

    /// A double attribute with the numeric distance.
    pub fn double(name: impl Into<String>) -> Self {
        Attribute::numeric(name, ValueType::Double)
    }

    /// A numeric attribute whose distance is normalised by `scale` (typically
    /// the attribute's value range): a full-range error counts as distance 1.
    pub fn scaled(name: impl Into<String>, ty: ValueType, scale: u32) -> Self {
        Attribute {
            name: name.into(),
            ty,
            distance: DistanceKind::Scaled(scale),
        }
    }

    /// An identifier-like attribute with the trivial 0/∞ distance.
    pub fn id(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            ty: ValueType::Int,
            distance: DistanceKind::Trivial,
        }
    }

    /// A string attribute with the trivial distance (e.g. addresses, names).
    pub fn text(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            ty: ValueType::Str,
            distance: DistanceKind::Trivial,
        }
    }

    /// A categorical string attribute with the 0/1 distance.
    pub fn categorical(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            ty: ValueType::Str,
            distance: DistanceKind::Categorical,
        }
    }
}

/// The schema of a single relation: a name plus an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name.
    pub name: String,
    /// Attributes in column order.
    pub attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// Creates a schema from a name and attributes.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        RelationSchema {
            name: name.into(),
            attributes,
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of the attribute with the given name.
    pub fn attr_index(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| RelalError::UnknownColumn(format!("{}.{}", self.name, name)))
    }

    /// The attribute with the given name.
    pub fn attribute(&self, name: &str) -> Result<&Attribute> {
        self.attr_index(name).map(|i| &self.attributes[i])
    }

    /// Attribute names in column order.
    pub fn attr_names(&self) -> Vec<String> {
        self.attributes.iter().map(|a| a.name.clone()).collect()
    }

    /// Distance kinds in column order.
    pub fn distance_kinds(&self) -> Vec<DistanceKind> {
        self.attributes.iter().map(|a| a.distance).collect()
    }
}

/// A database schema: a collection of relation schemas (Sec. 2.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseSchema {
    /// Relation schemas, looked up by name.
    pub relations: Vec<RelationSchema>,
}

impl DatabaseSchema {
    /// Creates a database schema from relation schemas.
    pub fn new(relations: Vec<RelationSchema>) -> Self {
        DatabaseSchema { relations }
    }

    /// Looks up a relation schema by name.
    pub fn relation(&self, name: &str) -> Result<&RelationSchema> {
        self.relations
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| RelalError::UnknownRelation(name.to_string()))
    }

    /// Returns `true` if the schema contains a relation with the given name.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.iter().any(|r| r.name == name)
    }

    /// Adds (or replaces) a relation schema.
    pub fn add_relation(&mut self, schema: RelationSchema) {
        if let Some(existing) = self.relations.iter_mut().find(|r| r.name == schema.name) {
            *existing = schema;
        } else {
            self.relations.push(schema);
        }
    }

    /// Names of all relations.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.iter().map(|r| r.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poi_schema() -> RelationSchema {
        RelationSchema::new(
            "poi",
            vec![
                Attribute::text("address"),
                Attribute::categorical("type"),
                Attribute::text("city"),
                Attribute::double("price"),
            ],
        )
    }

    #[test]
    fn attr_index_finds_positions() {
        let s = poi_schema();
        assert_eq!(s.attr_index("address").unwrap(), 0);
        assert_eq!(s.attr_index("price").unwrap(), 3);
        assert!(s.attr_index("missing").is_err());
    }

    #[test]
    fn attribute_lookup_returns_distance_kind() {
        let s = poi_schema();
        assert_eq!(
            s.attribute("price").unwrap().distance,
            DistanceKind::Numeric
        );
        assert_eq!(
            s.attribute("type").unwrap().distance,
            DistanceKind::Categorical
        );
        assert_eq!(s.attribute("city").unwrap().distance, DistanceKind::Trivial);
    }

    #[test]
    fn database_schema_lookup_and_contains() {
        let db = DatabaseSchema::new(vec![poi_schema()]);
        assert!(db.contains("poi"));
        assert!(!db.contains("person"));
        assert_eq!(db.relation("poi").unwrap().arity(), 4);
        assert!(db.relation("person").is_err());
    }

    #[test]
    fn add_relation_replaces_existing_schema() {
        let mut db = DatabaseSchema::default();
        db.add_relation(poi_schema());
        assert_eq!(db.relation("poi").unwrap().arity(), 4);
        db.add_relation(RelationSchema::new("poi", vec![Attribute::id("address")]));
        assert_eq!(db.relation("poi").unwrap().arity(), 1);
        assert_eq!(db.relations.len(), 1);
    }

    #[test]
    fn attr_names_and_distance_kinds_align() {
        let s = poi_schema();
        assert_eq!(s.attr_names(), vec!["address", "type", "city", "price"]);
        assert_eq!(s.distance_kinds().len(), s.arity());
    }

    #[test]
    fn attribute_constructors_set_expected_kinds() {
        assert_eq!(Attribute::id("pid").distance, DistanceKind::Trivial);
        assert_eq!(Attribute::int("n").distance, DistanceKind::Numeric);
        assert_eq!(Attribute::int("n").ty, ValueType::Int);
        assert_eq!(Attribute::double("x").ty, ValueType::Double);
        assert_eq!(Attribute::text("addr").ty, ValueType::Str);
    }
}
