//! Relational-algebra expressions and aggregate (`RA_aggr`) queries.
//!
//! [`RaExpr`] covers the paper's RA: selection σ, projection π, Cartesian
//! product ×, union ∪, set difference −, and renaming ρ. [`GroupByQuery`]
//! adds the `gpBy(Q', X, agg(V))` construct of Sec. 3.2 / Sec. 7, and
//! [`QueryExpr`] packages "aggregate or not" queries behind one type.

use std::collections::BTreeSet;
use std::fmt;

use crate::predicate::Predicate;

/// A relational-algebra expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RaExpr {
    /// A base relation (resolved through a
    /// [`RelationProvider`](crate::eval::RelationProvider)) scanned under an
    /// alias: the output columns are `"{alias}.{attr}"`.
    Scan {
        /// Relation name.
        relation: String,
        /// Alias qualifying the output columns.
        alias: String,
    },
    /// Selection σ_pred.
    Select {
        /// Input expression.
        input: Box<RaExpr>,
        /// Selection predicate (conjunction).
        predicate: Predicate,
    },
    /// Projection π. Each entry is `(output name, input column)`.
    Project {
        /// Input expression.
        input: Box<RaExpr>,
        /// `(output name, input column)` pairs in output order.
        columns: Vec<(String, String)>,
    },
    /// Cartesian product ×.
    Product {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
    /// Union ∪ (set semantics; schemas must have equal arity).
    Union {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
    /// Set difference −.
    Difference {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
    /// Renaming ρ: replaces the column names of the input.
    Rename {
        /// Input expression.
        input: Box<RaExpr>,
        /// New column names (must match the input arity).
        columns: Vec<String>,
    },
}

impl RaExpr {
    /// Scan of `relation` under `alias`.
    pub fn scan(relation: impl Into<String>, alias: impl Into<String>) -> Self {
        RaExpr::Scan {
            relation: relation.into(),
            alias: alias.into(),
        }
    }

    /// σ_pred(self)
    pub fn select(self, predicate: Predicate) -> Self {
        RaExpr::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// π_columns(self) with `(output name, input column)` pairs.
    pub fn project(self, columns: Vec<(String, String)>) -> Self {
        RaExpr::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// Convenience projection that keeps the given columns under their own
    /// names.
    pub fn project_cols(self, cols: &[&str]) -> Self {
        self.project(
            cols.iter()
                .map(|c| (c.to_string(), c.to_string()))
                .collect(),
        )
    }

    /// self × other
    pub fn product(self, other: RaExpr) -> Self {
        RaExpr::Product {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// self ∪ other
    pub fn union(self, other: RaExpr) -> Self {
        RaExpr::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// self − other
    pub fn difference(self, other: RaExpr) -> Self {
        RaExpr::Difference {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// ρ: rename all output columns.
    pub fn rename(self, columns: Vec<String>) -> Self {
        RaExpr::Rename {
            input: Box::new(self),
            columns,
        }
    }

    /// All base relation names scanned anywhere in the expression.
    pub fn scanned_relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let RaExpr::Scan { relation, .. } = e {
                out.insert(relation.clone());
            }
        });
        out
    }

    /// All `(alias, relation)` pairs scanned in the expression.
    pub fn scan_aliases(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let RaExpr::Scan { relation, alias } = e {
                out.push((alias.clone(), relation.clone()));
            }
        });
        out
    }

    /// Number of `Scan` leaves (the `||Q||` of the paper: the number of
    /// relation occurrences in the query).
    pub fn relation_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, RaExpr::Scan { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Returns `true` if the expression contains a set difference.
    pub fn has_difference(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, RaExpr::Difference { .. }) {
                found = true;
            }
        });
        found
    }

    /// Number of operators in the expression tree (a size measure, `|Q|`).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Pre-order traversal.
    pub fn visit<F: FnMut(&RaExpr)>(&self, f: &mut F) {
        f(self);
        match self {
            RaExpr::Scan { .. } => {}
            RaExpr::Select { input, .. }
            | RaExpr::Project { input, .. }
            | RaExpr::Rename { input, .. } => input.visit(f),
            RaExpr::Product { left, right }
            | RaExpr::Union { left, right }
            | RaExpr::Difference { left, right } => {
                left.visit(f);
                right.visit(f);
            }
        }
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Scan { relation, alias } => write!(f, "{relation} AS {alias}"),
            RaExpr::Select { input, predicate } => {
                write!(f, "σ[{} conds]({input})", predicate.atoms.len())
            }
            RaExpr::Project { input, columns } => {
                write!(f, "π[{} cols]({input})", columns.len())
            }
            RaExpr::Product { left, right } => write!(f, "({left} × {right})"),
            RaExpr::Union { left, right } => write!(f, "({left} ∪ {right})"),
            RaExpr::Difference { left, right } => write!(f, "({left} − {right})"),
            RaExpr::Rename { input, .. } => write!(f, "ρ({input})"),
        }
    }
}

/// Aggregate functions of `RA_aggr` (Sec. 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Minimum of the aggregated attribute.
    Min,
    /// Maximum of the aggregated attribute.
    Max,
    /// Sum of the aggregated attribute.
    Sum,
    /// Number of (bag-semantics) rows in the group.
    Count,
    /// Average of the aggregated attribute.
    Avg,
}

impl AggFunc {
    /// Whether the aggregate value is always drawn from the active domain
    /// (min/max) as opposed to a computed value (sum/count/avg); the two
    /// classes have different accuracy distances in Sec. 3.2.
    pub fn is_extremum(&self) -> bool {
        matches!(self, AggFunc::Min | AggFunc::Max)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::Min => write!(f, "min"),
            AggFunc::Max => write!(f, "max"),
            AggFunc::Sum => write!(f, "sum"),
            AggFunc::Count => write!(f, "count"),
            AggFunc::Avg => write!(f, "avg"),
        }
    }
}

/// An aggregate query `gpBy(Q', X, agg(V))`: group the output of `input` by
/// the `group_by` columns and aggregate the `agg_col` column.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByQuery {
    /// The inner RA query `Q'`.
    pub input: RaExpr,
    /// Group-by columns `X` (names in the output of `input`).
    pub group_by: Vec<String>,
    /// Aggregate function.
    pub agg: AggFunc,
    /// Aggregated column `V` (a column of the output of `input`).
    pub agg_col: String,
    /// Name of the aggregate output column.
    pub out_name: String,
    /// Optional weight column: when present, each input row counts as
    /// `weight` duplicates (used when evaluating over access-template
    /// representatives that stand for many tuples, Sec. 7).
    pub weight_col: Option<String>,
}

impl GroupByQuery {
    /// Creates an aggregate query without a weight column.
    pub fn new(
        input: RaExpr,
        group_by: Vec<String>,
        agg: AggFunc,
        agg_col: impl Into<String>,
        out_name: impl Into<String>,
    ) -> Self {
        GroupByQuery {
            input,
            group_by,
            agg,
            agg_col: agg_col.into(),
            out_name: out_name.into(),
            weight_col: None,
        }
    }

    /// Output column names: the group-by columns followed by the aggregate.
    pub fn output_columns(&self) -> Vec<String> {
        let mut cols = self.group_by.clone();
        cols.push(self.out_name.clone());
        cols
    }
}

/// A query that is either plain RA or an aggregate query — the "generic,
/// aggregate or not" queries BEAS targets.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// A relational-algebra query under set semantics.
    Ra(RaExpr),
    /// An aggregate (`RA_aggr`) query.
    Aggregate(GroupByQuery),
}

impl QueryExpr {
    /// The underlying RA expression (`Q'` for aggregates).
    pub fn ra(&self) -> &RaExpr {
        match self {
            QueryExpr::Ra(e) => e,
            QueryExpr::Aggregate(g) => &g.input,
        }
    }

    /// Returns `true` for aggregate queries.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, QueryExpr::Aggregate(_))
    }

    /// Number of relation occurrences (`||Q||`).
    pub fn relation_count(&self) -> usize {
        self.ra().relation_count()
    }
}

impl From<RaExpr> for QueryExpr {
    fn from(e: RaExpr) -> Self {
        QueryExpr::Ra(e)
    }
}

impl From<GroupByQuery> for QueryExpr {
    fn from(g: GroupByQuery) -> Self {
        QueryExpr::Aggregate(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PredicateAtom;

    fn example_expr() -> RaExpr {
        // π(σ(friend × person))
        RaExpr::scan("friend", "f")
            .product(RaExpr::scan("person", "p"))
            .select(Predicate::all(vec![PredicateAtom::col_eq_col(
                "f.fid", "p.pid",
            )]))
            .project(vec![("city".into(), "p.city".into())])
    }

    #[test]
    fn builders_construct_expected_tree() {
        let e = example_expr();
        match &e {
            RaExpr::Project { input, columns } => {
                assert_eq!(columns.len(), 1);
                assert!(matches!(**input, RaExpr::Select { .. }));
            }
            _ => panic!("expected projection at the root"),
        }
    }

    #[test]
    fn scanned_relations_and_aliases() {
        let e = example_expr();
        let rels = e.scanned_relations();
        assert!(rels.contains("friend") && rels.contains("person"));
        assert_eq!(e.scan_aliases().len(), 2);
        assert_eq!(e.relation_count(), 2);
    }

    #[test]
    fn has_difference_detects_set_difference() {
        let e = example_expr();
        assert!(!e.has_difference());
        let d = e.clone().difference(example_expr());
        assert!(d.has_difference());
        assert_eq!(d.relation_count(), 4);
    }

    #[test]
    fn size_counts_operators() {
        // scan + scan + product + select + project = 5
        assert_eq!(example_expr().size(), 5);
    }

    #[test]
    fn union_and_rename_builders() {
        let u = RaExpr::scan("r", "a").union(RaExpr::scan("s", "b"));
        assert!(matches!(u, RaExpr::Union { .. }));
        let r = RaExpr::scan("r", "a").rename(vec!["x".into()]);
        assert!(matches!(r, RaExpr::Rename { .. }));
    }

    #[test]
    fn display_is_readable() {
        let s = example_expr().to_string();
        assert!(s.contains("friend"));
        assert!(s.contains('σ'));
        assert!(s.contains('π'));
    }

    #[test]
    fn agg_func_classification() {
        assert!(AggFunc::Min.is_extremum());
        assert!(AggFunc::Max.is_extremum());
        assert!(!AggFunc::Sum.is_extremum());
        assert!(!AggFunc::Count.is_extremum());
        assert!(!AggFunc::Avg.is_extremum());
    }

    #[test]
    fn group_by_output_columns() {
        let g = GroupByQuery::new(
            example_expr(),
            vec!["city".into()],
            AggFunc::Count,
            "city",
            "n",
        );
        assert_eq!(g.output_columns(), vec!["city", "n"]);
        let q: QueryExpr = g.into();
        assert!(q.is_aggregate());
        assert_eq!(q.relation_count(), 2);
    }

    #[test]
    fn query_expr_from_ra() {
        let q: QueryExpr = example_expr().into();
        assert!(!q.is_aggregate());
        assert_eq!(q.ra().relation_count(), 2);
    }
}
