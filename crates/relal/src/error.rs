//! Error type shared across the relational substrate.

use std::fmt;

/// Result alias used throughout `beas-relal`.
pub type Result<T> = std::result::Result<T, RelalError>;

/// Errors raised by schema handling, expression construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelalError {
    /// A relation name was not found in the database / provider.
    UnknownRelation(String),
    /// An attribute or column name was not found.
    UnknownColumn(String),
    /// Two relations with incompatible schemas were combined (union/difference).
    SchemaMismatch(String),
    /// A value of the wrong type was used where another type was expected.
    TypeMismatch(String),
    /// A query or plan was structurally invalid.
    InvalidQuery(String),
    /// Generic evaluation failure.
    Eval(String),
}

impl fmt::Display for RelalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalError::UnknownRelation(name) => write!(f, "unknown relation: {name}"),
            RelalError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            RelalError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            RelalError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            RelalError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            RelalError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for RelalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_variant_payload() {
        let err = RelalError::UnknownRelation("poi".to_string());
        assert_eq!(err.to_string(), "unknown relation: poi");
        let err = RelalError::UnknownColumn("h.price".to_string());
        assert_eq!(err.to_string(), "unknown column: h.price");
        let err = RelalError::InvalidQuery("empty output".to_string());
        assert!(err.to_string().contains("empty output"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&RelalError::Eval("x".into()));
    }
}
