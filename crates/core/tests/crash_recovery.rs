//! Seeded crash-recovery property suite for the durable store (PR 9,
//! satellite 3).
//!
//! Property: for ANY crash point — the WAL truncated at an arbitrary byte
//! offset, or a byte garbled in place — reopening the store yields an engine
//! that is *bit-for-bit* equivalent to a never-crashed engine that applied
//! exactly the recovered batch prefix. Equivalence is checked through answer
//! digests (NaN-safe: `Relation::digest` hashes floats by bit pattern, where
//! `Relation` equality would be blind to `NaN` vs `NaN`), and the adversarial
//! float values — `NaN`, `-0.0`, `±∞` — ride through both the snapshot and
//! the WAL.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use beas_core::{Beas, BeasQuery, ConstraintSpec, ResourceSpec, StoreOptions, UpdateBatch};
use beas_relal::{
    Attribute, CompareOp, Database, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x9_e15;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("beas-crash-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn wal_file(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name.starts_with("wal-") && name.ends_with(".log")).then_some(p)
        })
        .collect();
    assert_eq!(wals.len(), 1, "expected exactly one WAL in {dir:?}");
    wals.pop().unwrap()
}

/// Base data with the adversarial floats baked in: every special value the
/// IEEE-754 total order distinguishes appears in the `reading` column.
fn base_db(rows: i64) -> Database {
    let schema = DatabaseSchema::new(vec![RelationSchema::new(
        "sensor",
        vec![
            Attribute::id("id"),
            Attribute::categorical("site"),
            Attribute::double("reading"),
        ],
    )]);
    let mut db = Database::new(schema);
    for i in 0..rows {
        db.insert_row("sensor", vec![Value::Int(i), site(i), reading(i)])
            .unwrap();
    }
    db
}

fn site(i: i64) -> Value {
    Value::Str(format!("s{}", i % 4))
}

fn reading(i: i64) -> Value {
    Value::Double(match i % 17 {
        3 => f64::NAN,
        5 => -0.0,
        7 => f64::INFINITY,
        11 => f64::NEG_INFINITY,
        _ => (i % 23) as f64 * 1.75 - 10.0,
    })
}

fn build_durable(dir: &Path, rows: i64) -> Beas {
    Beas::builder(base_db(rows))
        .constraint(ConstraintSpec::new("sensor", &["site"], &["reading"]))
        .persist_with(
            dir,
            StoreOptions {
                // page fine levels so recovery also exercises the tiered path
                resident_level_tuples: 16,
                ..StoreOptions::default()
            },
        )
        .build()
        .unwrap()
}

fn build_reference(rows: i64) -> Beas {
    Beas::builder(base_db(rows))
        .constraint(ConstraintSpec::new("sensor", &["site"], &["reading"]))
        .build()
        .unwrap()
}

/// A random update batch: 1–4 inserts, readings drawn from a pool that is
/// heavy on the special floats.
fn random_batch(rng: &mut StdRng, next_id: &mut i64) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..rng.gen_range(1..=4usize) {
        let id = *next_id;
        *next_id += 1;
        let reading = match rng.gen_range(0..6u32) {
            0 => f64::NAN,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            _ => rng.gen_range(-50.0..50.0),
        };
        batch = batch.insert(
            "sensor",
            vec![
                Value::Int(id),
                Value::Str(format!("s{}", rng.gen_range(0..4u32))),
                Value::Double(reading),
            ],
        );
    }
    batch
}

fn queries(db: &Database) -> Vec<BeasQuery> {
    let mut out = Vec::new();
    // all readings at one site
    let mut b = SpcQueryBuilder::new(&db.schema);
    let s = b.atom("sensor", "s").unwrap();
    b.bind_const(s, "site", "s1").unwrap();
    b.output(s, "reading", "reading").unwrap();
    out.push(b.build().unwrap().into());
    // bounded-range scan over ids
    let mut b = SpcQueryBuilder::new(&db.schema);
    let s = b.atom("sensor", "s").unwrap();
    b.filter_const(s, "id", CompareOp::Le, 500i64).unwrap();
    b.output(s, "site", "site").unwrap();
    b.output(s, "reading", "reading").unwrap();
    out.push(b.build().unwrap().into());
    out
}

/// The bit-for-bit equivalence fingerprint: answer digests, η bit patterns
/// and exactness flags across queries × budgets, plus the database digest.
fn fingerprint(beas: &Beas) -> Vec<u64> {
    let db = beas.database();
    let mut out = vec![db.relation("sensor").unwrap().digest()];
    for q in queries(&db) {
        for spec in [
            ResourceSpec::Ratio(0.1),
            ResourceSpec::Ratio(0.4),
            ResourceSpec::FULL,
        ] {
            let a = beas.answer(&q, spec).unwrap();
            out.push(a.answers.digest());
            out.push(a.eta.to_bits());
            out.push(a.exact as u64);
        }
    }
    out
}

#[test]
fn recovery_is_bit_for_bit_at_arbitrary_wal_crash_offsets() {
    const ROWS: i64 = 120;
    const BATCHES: usize = 6;
    let mut rng = StdRng::seed_from_u64(SEED);

    // the engine that "crashes": durable, with a WAL tail of random batches
    let dir = scratch("primary");
    let engine = build_durable(&dir, ROWS);
    let mut next_id = ROWS;
    let batches: Vec<UpdateBatch> = (0..BATCHES)
        .map(|_| random_batch(&mut rng, &mut next_id))
        .collect();
    for batch in &batches {
        engine.apply_update(batch).unwrap();
    }
    drop(engine); // kill — every batch was fdatasync'ed before publish

    // reference engines that never crashed: one per possible recovered
    // prefix, fingerprinted once
    let reference: Vec<Vec<u64>> = (0..=BATCHES)
        .map(|k| {
            let fresh = build_reference(ROWS);
            for batch in &batches[..k] {
                fresh.apply_update(batch).unwrap();
            }
            fingerprint(&fresh)
        })
        .collect();

    let wal = wal_file(&dir);
    let wal_bytes = fs::read(&wal).unwrap();

    // crash points: random byte offsets plus the endpoints
    let mut cuts: Vec<usize> = (0..12)
        .map(|_| rng.gen_range(0..=wal_bytes.len()))
        .collect();
    cuts.push(0);
    cuts.push(wal_bytes.len());

    for (case, cut) in cuts.into_iter().enumerate() {
        let crashed = scratch(&format!("cut-{case}"));
        copy_dir(&dir, &crashed);
        fs::write(wal_file(&crashed), &wal_bytes[..cut]).unwrap();

        let reopened = Beas::open(&crashed).unwrap();
        let replayed = reopened.stats().replayed_batches as usize;
        assert!(replayed <= BATCHES, "cut {cut}: replayed {replayed}");
        assert_eq!(
            fingerprint(&reopened),
            reference[replayed],
            "cut at byte {cut} of {}: recovered engine (replayed {replayed} \
             batches) diverges from the never-crashed reference",
            wal_bytes.len()
        );
        fs::remove_dir_all(&crashed).unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_discards_from_a_garbled_record_on() {
    const ROWS: i64 = 80;
    const BATCHES: usize = 4;
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xdead);

    let dir = scratch("garble-primary");
    let engine = build_durable(&dir, ROWS);
    let mut next_id = ROWS;
    let batches: Vec<UpdateBatch> = (0..BATCHES)
        .map(|_| random_batch(&mut rng, &mut next_id))
        .collect();
    for batch in &batches {
        engine.apply_update(batch).unwrap();
    }
    drop(engine);

    let wal = wal_file(&dir);
    let wal_bytes = fs::read(&wal).unwrap();

    for case in 0..8 {
        let offset = rng.gen_range(0..wal_bytes.len());
        let crashed = scratch(&format!("garble-{case}"));
        copy_dir(&dir, &crashed);
        let mut garbled = wal_bytes.clone();
        garbled[offset] ^= 0x20;
        fs::write(wal_file(&crashed), &garbled).unwrap();

        // recovery must (a) not error, (b) keep some prefix of the batches,
        // (c) match the reference for exactly that prefix
        let reopened = Beas::open(&crashed).unwrap();
        let replayed = reopened.stats().replayed_batches as usize;
        assert!(replayed <= BATCHES, "offset {offset}: replayed {replayed}");

        let fresh = build_reference(ROWS);
        for batch in &batches[..replayed] {
            fresh.apply_update(batch).unwrap();
        }
        assert_eq!(
            fingerprint(&reopened),
            fingerprint(&fresh),
            "garbled byte at {offset}: recovered engine diverges from the \
             reference that applied {replayed} batches"
        );
        fs::remove_dir_all(&crashed).unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_engine_keeps_accepting_and_logging_updates() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xbeef);
    let dir = scratch("resume");
    let engine = build_durable(&dir, 60);
    let mut next_id = 60;
    engine
        .apply_update(&random_batch(&mut rng, &mut next_id))
        .unwrap();
    drop(engine);

    // crash after the snapshot, mid-first-batch: truncate half the WAL
    let wal = wal_file(&dir);
    let bytes = fs::read(&wal).unwrap();
    fs::write(&wal, &bytes[..bytes.len() / 2]).unwrap();

    let reopened = Beas::open(&dir).unwrap();
    assert_eq!(reopened.stats().replayed_batches, 0);
    // the WAL is clean again: new updates log, survive another restart
    let batch = random_batch(&mut rng, &mut next_id);
    reopened.apply_update(&batch).unwrap();
    let want = fingerprint(&reopened);
    drop(reopened);

    let again = Beas::open(&dir).unwrap();
    assert_eq!(again.stats().replayed_batches, 1);
    assert_eq!(fingerprint(&again), want);

    // and an Arc'd handle answers concurrently right after recovery
    let shared = Arc::new(again);
    let q = queries(&shared.database()).remove(0);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let engine = Arc::clone(&shared);
            let q = q.clone();
            std::thread::spawn(move || engine.answer(&q, ResourceSpec::Ratio(0.3)).unwrap())
        })
        .collect();
    let digests: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().unwrap().answers.digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    fs::remove_dir_all(&dir).unwrap();
}
