//! Progressive refinement sessions: anytime answers under a growing budget.
//!
//! The paper's multi-resolution template families make refinement free in
//! the dual direction: the fragments a plan fetches at a coarse budget are a
//! subset of what a finer budget fetches, so an answer can be *refined*
//! instead of recomputed. An [`AnswerSession`] runs one query through a
//! [`RefinementSchedule`] of increasing budgets (e.g. the `Ratio` ladder
//! `[0.01, 0.05, 0.1, 0.5, 1.0]`), yielding one [`RefinementStep`] — answer,
//! η and access accounting — per budget. Each step threads the resumable
//! [`ExecState`] of the previous one through
//! [`execute_plan_with_state`]: fragments
//! already fetched (same family, level and keys) and SPC leaf results whose
//! inputs did not change are reused, so the session's *total* fetch work is
//! close to the final step's alone, while the client gets a usable answer at
//! the first, cheapest step.
//!
//! Two guarantees:
//!
//! * **Determinism** — the whole session runs against one pinned
//!   [`EngineSnapshot`], and a state hit returns exactly what a fresh fetch
//!   would; the final step is therefore **bit-for-bit equal** (relation,
//!   float aggregate sums, η) to a one-shot
//!   [`PreparedQuery::answer`](crate::PreparedQuery::answer) at the same
//!   spec, at every thread count (property-tested in `tests/properties.rs`).
//! * **Monotonicity** — budgets grow along the schedule, so η never
//!   decreases from step to step and the cumulative tuples fetched never
//!   decrease (also property-tested).
//!
//! Plans for the steps come from the engine's [shared plan
//! cache](crate::prepared), so a server refining the same query for many
//! clients plans each budget once.

use beas_access::ResourceSpec;
use beas_slo::AccuracyTarget;

use crate::engine::{answer_from, BeasAnswer, EngineSnapshot};
use crate::error::{BeasError, Result};
use crate::executor::{execute_plan_with_state, ExecOptions, ExecState};
use crate::prepared::PreparedQuery;

/// The default `Ratio` ladder of [`RefinementSchedule::default_ladder`].
pub const DEFAULT_RATIO_LADDER: [f64; 5] = [0.01, 0.05, 0.1, 0.5, 1.0];

/// Minimum predicted Δη for a ladder rung to be worth running in an
/// accuracy-adaptive session ([`RefinementSchedule::to_accuracy`]): rungs
/// predicted to improve η by less are skipped.
pub const MIN_PREDICTED_GAIN: f64 = 0.02;

/// When the predicted target budget leaves less than this fraction of the
/// full budget unfetched, an accuracy-adaptive session jumps straight to the
/// exact (full-budget) step — the remaining fragment is small enough that
/// finishing beats a near-full intermediate answer.
pub const JUMP_TO_EXACT_REMAINDER: f64 = 0.25;

/// A validated sequence of resource specs with non-decreasing budgets — the
/// refinement trajectory of an [`AnswerSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementSchedule {
    specs: Vec<ResourceSpec>,
    /// An adaptive accuracy goal ([`RefinementSchedule::to_accuracy`]): when
    /// set, opening a session re-derives the rungs from the engine's learned
    /// η-vs-budget curves instead of running `specs` verbatim.
    target_eta: Option<f64>,
}

impl RefinementSchedule {
    /// A schedule from explicit specs. Every spec must be valid and non-zero
    /// (a zero budget cannot be refined), and specs of the same kind must be
    /// non-decreasing; the resolved budgets are re-checked (and deduplicated)
    /// when a session opens, where `|D|` is known.
    pub fn from_specs(specs: Vec<ResourceSpec>) -> Result<Self> {
        if specs.is_empty() {
            return Err(BeasError::Planning(
                "a refinement schedule needs at least one step".to_string(),
            ));
        }
        for spec in &specs {
            spec.validate().map_err(BeasError::from)?;
            if spec.is_zero() {
                return Err(BeasError::Planning(format!(
                    "refinement schedule step {spec} resolves to a zero budget; \
                     steps must allow at least one access"
                )));
            }
        }
        for pair in specs.windows(2) {
            let decreasing = match (pair[0], pair[1]) {
                (ResourceSpec::Ratio(a), ResourceSpec::Ratio(b)) => b < a,
                (ResourceSpec::Tuples(a), ResourceSpec::Tuples(b)) => b < a,
                _ => false, // mixed kinds are ordered at budget resolution
            };
            if decreasing {
                return Err(BeasError::Planning(format!(
                    "refinement schedule must not decrease: {} after {}",
                    pair[1], pair[0]
                )));
            }
        }
        Ok(RefinementSchedule {
            specs,
            target_eta: None,
        })
    }

    /// A schedule of `Ratio` steps (non-decreasing, each in `(0, 1]`).
    pub fn ratios(ratios: &[f64]) -> Result<Self> {
        Self::from_specs(ratios.iter().map(|&a| ResourceSpec::Ratio(a)).collect())
    }

    /// A schedule of explicit `Tuples` steps (non-decreasing, each > 0).
    pub fn tuples(tuples: &[usize]) -> Result<Self> {
        Self::from_specs(tuples.iter().map(|&n| ResourceSpec::Tuples(n)).collect())
    }

    /// The default ladder: `Ratio` steps at [`DEFAULT_RATIO_LADDER`].
    pub fn default_ladder() -> Self {
        Self::ratios(&DEFAULT_RATIO_LADDER).expect("default ladder is valid")
    }

    /// A ladder that ends exactly at `target`: the default ratios below it
    /// (scaled into tuple steps for a `Tuples` target), then `target` itself
    /// as the final step — so the session's last answer equals a one-shot
    /// answer at `target`.
    pub fn leading_to(target: ResourceSpec) -> Result<Self> {
        target.validate().map_err(BeasError::from)?;
        if target.is_zero() {
            return Err(BeasError::Planning(
                "cannot refine towards a zero budget".to_string(),
            ));
        }
        let mut specs: Vec<ResourceSpec> = match target {
            ResourceSpec::Ratio(a) => DEFAULT_RATIO_LADDER
                .iter()
                .filter(|&&step| step < a)
                .map(|&step| ResourceSpec::Ratio(step))
                .collect(),
            ResourceSpec::Tuples(n) => DEFAULT_RATIO_LADDER
                .iter()
                .map(|&step| (step * n as f64).floor() as usize)
                .filter(|&t| t > 0 && t < n)
                .map(ResourceSpec::Tuples)
                .collect(),
        };
        specs.push(target);
        Self::from_specs(specs)
    }

    /// An accuracy-adaptive schedule: refine until the answer's η reaches
    /// `eta` (validated to `(0, 1]`). The rungs are not fixed here — they are
    /// derived when the session opens, from the engine's learned η-vs-budget
    /// curve for the query: default-ladder rungs predicted to gain less than
    /// [`MIN_PREDICTED_GAIN`] η are skipped, the ladder stops at the minimal
    /// budget predicted to reach `eta`, and when the remaining fragment past
    /// that budget is small (under [`JUMP_TO_EXACT_REMAINDER`] of full) the
    /// session jumps straight to the exact step. On a cold engine every rung
    /// is unpredicted, so the session collapses to the single full-budget
    /// step — it never wastes rungs it cannot justify.
    pub fn to_accuracy(eta: f64) -> Result<Self> {
        AccuracyTarget::new(eta).map_err(BeasError::from)?;
        let mut schedule = Self::default_ladder();
        schedule.target_eta = Some(eta);
        Ok(schedule)
    }

    /// The adaptive accuracy goal, when this schedule was built by
    /// [`RefinementSchedule::to_accuracy`].
    pub fn accuracy_goal(&self) -> Option<f64> {
        self.target_eta
    }

    /// The schedule's steps, in order. For an accuracy-adaptive schedule
    /// these are the fallback (default ladder) rungs; the real trajectory is
    /// derived against the engine's curves when a session opens.
    pub fn specs(&self) -> &[ResourceSpec] {
        &self.specs
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `false` always — schedules are validated non-empty. (Provided for the
    /// conventional `len`/`is_empty` pair.)
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// One step of an [`AnswerSession`]: the answer at this budget plus the
/// session's cumulative accounting.
#[derive(Debug, Clone)]
pub struct RefinementStep {
    /// The spec this step answered under.
    pub spec: ResourceSpec,
    /// The answer, exactly as a one-shot
    /// [`PreparedQuery::answer`](crate::PreparedQuery::answer) at `spec`
    /// against the session's snapshot would return it (same relation, same
    /// η, same `accessed`).
    pub answer: BeasAnswer,
    /// The accuracy lower bound η of this step (equals `answer.eta`;
    /// non-decreasing across the session).
    pub eta: f64,
    /// The tuple budget this step's plan complied with.
    pub budget: usize,
    /// Cumulative tuples actually fetched by the session up to and including
    /// this step — the session's real access cost, non-decreasing. Tuples
    /// reused from earlier steps are charged against each step's budget but
    /// fetched only once.
    pub budget_spent: usize,
    /// Tuples this step served from the session state instead of re-fetching.
    pub reused_tuples: usize,
    /// This step's position (1-based) and the schedule length.
    pub step: usize,
    /// Total steps in the schedule (after budget deduplication).
    pub steps: usize,
}

/// A progressive refinement session (see the module docs): an iterator of
/// [`RefinementStep`]s at the increasing budgets of a
/// [`RefinementSchedule`], opened by
/// [`PreparedQuery::session`](crate::PreparedQuery::session).
///
/// The session pins one [`EngineSnapshot`] when opened; maintenance applied
/// to the engine meanwhile does not affect it (the next session sees the new
/// state). Dropping the session mid-way simply discards the remaining steps.
#[derive(Debug)]
pub struct AnswerSession<'p, 'e> {
    prepared: &'p PreparedQuery<'e>,
    snapshot: EngineSnapshot,
    /// `(spec, resolved budget)` per remaining-to-run step, strictly
    /// increasing in budget (equal-budget steps deduplicated, keeping the
    /// later spec label).
    steps: Vec<(ResourceSpec, usize)>,
    state: ExecState,
    next: usize,
}

impl<'p, 'e> AnswerSession<'p, 'e> {
    /// Resolves the schedule against the engine's current snapshot and pins
    /// that snapshot for the whole session.
    pub(crate) fn open(
        prepared: &'p PreparedQuery<'e>,
        schedule: RefinementSchedule,
    ) -> Result<Self> {
        let snapshot = prepared.engine().snapshot();
        if let Some(eta) = schedule.accuracy_goal() {
            let steps = Self::adaptive_trajectory(prepared, &snapshot, eta)?;
            return Ok(AnswerSession {
                prepared,
                snapshot,
                steps,
                state: ExecState::new(),
                next: 0,
            });
        }
        let mut steps: Vec<(ResourceSpec, usize)> = Vec::with_capacity(schedule.len());
        for &spec in schedule.specs() {
            let budget = snapshot.catalog().budget(&spec)?;
            if budget == 0 {
                return Err(BeasError::Planning(format!(
                    "refinement schedule step {spec} resolves to a zero budget; \
                     no plan can access zero tuples"
                )));
            }
            match steps.last_mut() {
                Some((last_spec, last_budget)) if *last_budget == budget => {
                    // same resolved budget: keep one step, under the later
                    // spec label, so the final step carries the final spec
                    *last_spec = spec;
                }
                Some((_, last_budget)) if budget < *last_budget => {
                    return Err(BeasError::Planning(format!(
                        "refinement schedule budgets must not decrease: \
                         {spec} resolves to {budget} after {last_budget}"
                    )));
                }
                _ => steps.push((spec, budget)),
            }
        }
        Ok(AnswerSession {
            prepared,
            snapshot,
            steps,
            state: ExecState::new(),
            next: 0,
        })
    }

    /// Derives the trajectory of an accuracy-adaptive schedule from the
    /// engine's learned η-vs-budget curve for this query (see
    /// [`RefinementSchedule::to_accuracy`]): the final step is the minimal
    /// budget predicted to reach `eta` (the full budget when the curve has
    /// no evidence), intermediate default-ladder rungs are
    /// kept only when the curve predicts they gain at least
    /// [`MIN_PREDICTED_GAIN`] η over the previous kept rung, and when less
    /// than [`JUMP_TO_EXACT_REMAINDER`] of the full budget would remain
    /// unfetched past the target, the session jumps straight to the exact
    /// (full-budget) step.
    fn adaptive_trajectory(
        prepared: &PreparedQuery<'_>,
        snapshot: &EngineSnapshot,
        eta: f64,
    ) -> Result<Vec<(ResourceSpec, usize)>> {
        let catalog = snapshot.catalog();
        let full_budget = catalog.budget(&ResourceSpec::FULL)?.max(1);
        let slo = prepared.engine().slo_store();
        let fp = prepared.fingerprint().as_u128();
        let version = catalog.version;
        // unlike `Beas::answer_with_target` (which escalates until the target
        // is met), a session runs its trajectory exactly once — so a cold
        // curve must fall back to the full budget, never the cheaper prior
        let target_budget = slo
            .plan_budget(fp, version, eta, full_budget)
            .unwrap_or(full_budget)
            .clamp(1, full_budget);
        let remainder = full_budget - target_budget;
        let final_budget = if remainder as f64 <= JUMP_TO_EXACT_REMAINDER * full_budget as f64 {
            full_budget
        } else {
            target_budget
        };
        let mut steps: Vec<(ResourceSpec, usize)> = Vec::new();
        let mut last_predicted = 0.0f64;
        for &ratio in DEFAULT_RATIO_LADDER.iter() {
            let budget = catalog.budget(&ResourceSpec::Ratio(ratio))?;
            if budget == 0 || budget >= final_budget {
                continue;
            }
            if let Some((_, last_budget)) = steps.last() {
                if budget <= *last_budget {
                    continue;
                }
            }
            // a rung earns its keep only when the curve predicts a real η
            // gain over the previous kept rung; unpredicted (cold) rungs
            // are dropped — the session never wastes work it can't justify
            if let Some(predicted) = slo.predict_eta(fp, version, budget) {
                if predicted - last_predicted >= MIN_PREDICTED_GAIN {
                    last_predicted = predicted;
                    steps.push((ResourceSpec::Tuples(budget), budget));
                }
            }
        }
        let final_spec = if final_budget == full_budget {
            ResourceSpec::FULL
        } else {
            ResourceSpec::Tuples(final_budget)
        };
        steps.push((final_spec, final_budget));
        Ok(steps)
    }

    /// The snapshot the session is pinned to.
    pub fn snapshot(&self) -> &EngineSnapshot {
        &self.snapshot
    }

    /// Steps remaining (including the one the next `next_step` call runs).
    pub fn remaining(&self) -> usize {
        self.steps.len() - self.next
    }

    /// Total steps of the session (after budget deduplication).
    pub fn steps(&self) -> usize {
        self.steps.len()
    }

    /// The resolved `(spec, budget)` trajectory.
    pub fn trajectory(&self) -> &[(ResourceSpec, usize)] {
        &self.steps
    }

    /// Sum of the resolved budgets of all steps — what an admission layer
    /// charges for the whole session up front.
    pub fn total_budget(&self) -> usize {
        self.steps.iter().map(|(_, b)| b).sum()
    }

    /// Runs the next step: plan through the shared cache (C3, skipped on
    /// repeat budgets), execute with the session state threaded through (C4,
    /// reusing fragments and leaf results of earlier steps). Returns `None`
    /// when the schedule is exhausted.
    pub fn next_step(&mut self) -> Option<Result<RefinementStep>> {
        if self.next >= self.steps.len() {
            return None;
        }
        let (spec, budget) = self.steps[self.next];
        self.next += 1;
        Some(self.run_step(spec, budget))
    }

    fn run_step(&mut self, spec: ResourceSpec, budget: usize) -> Result<RefinementStep> {
        let engine = self.prepared.engine();
        let plan = self.prepared.plan_for_budget(&self.snapshot, budget)?;
        let fetched_before = self.state.fetched_tuples();
        let reused_before = self.state.reused_tuples();
        let outcome = execute_plan_with_state(
            &plan,
            self.snapshot.catalog(),
            ExecOptions::budgeted(plan.budget.max(plan.tariff))
                .with_threads(engine.num_threads())
                .with_min_shard_rows(engine.min_shard_rows()),
            &mut self.state,
        )?;
        // stats bill the tuples actually fetched this step (reuse is free),
        // so a session shows up in `EngineStats` at its real access cost
        engine
            .stats
            .record_answer(self.state.fetched_tuples() - fetched_before);
        let answer = answer_from(&plan, outcome);
        // every step feeds the η-vs-budget curve store, so refinement
        // sessions teach the SLO planner as a side effect of serving
        engine.record_slo_observation(
            self.prepared.fingerprint().as_u128(),
            self.snapshot.catalog().version,
            answer.budget,
            answer.eta,
            answer.accessed,
        );
        Ok(RefinementStep {
            spec,
            eta: answer.eta,
            budget: answer.budget,
            budget_spent: self.state.fetched_tuples(),
            reused_tuples: self.state.reused_tuples() - reused_before,
            step: self.next,
            steps: self.steps.len(),
            answer,
        })
    }
}

impl Iterator for AnswerSession<'_, '_> {
    type Item = Result<RefinementStep>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_step()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.remaining();
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Beas, ConstraintSpec};
    use beas_relal::{
        Attribute, CompareOp, Database, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
    };

    fn poi_engine(n: i64) -> Beas {
        let schema = DatabaseSchema::new(vec![RelationSchema::new(
            "poi",
            vec![
                Attribute::categorical("type"),
                Attribute::text("city"),
                Attribute::double("price"),
            ],
        )]);
        let mut db = Database::new(schema);
        let cities = ["NYC", "LA", "Chicago"];
        for i in 0..n {
            db.insert_row(
                "poi",
                vec![
                    Value::from(if i % 2 == 0 { "hotel" } else { "museum" }),
                    Value::from(cities[(i % 3) as usize]),
                    Value::Double(30.0 + (i % 80) as f64),
                ],
            )
            .unwrap();
        }
        Beas::builder(db)
            .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
            .build()
            .unwrap()
    }

    fn hotels(engine: &Beas) -> crate::query::BeasQuery {
        let mut b = SpcQueryBuilder::new(engine.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 90i64).unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    #[test]
    fn schedule_validation_rejects_empty_zero_and_decreasing() {
        assert!(RefinementSchedule::ratios(&[]).is_err());
        assert!(RefinementSchedule::ratios(&[0.0, 0.5]).is_err());
        assert!(RefinementSchedule::ratios(&[0.5, 0.1]).is_err());
        assert!(RefinementSchedule::ratios(&[1.5]).is_err());
        assert!(RefinementSchedule::tuples(&[10, 5]).is_err());
        assert!(RefinementSchedule::tuples(&[0, 5]).is_err());
        assert!(RefinementSchedule::ratios(&[0.1, 0.1, 0.5]).is_ok());
        assert_eq!(RefinementSchedule::default_ladder().len(), 5);
    }

    #[test]
    fn leading_to_ends_at_the_target() {
        let ladder = RefinementSchedule::leading_to(ResourceSpec::Ratio(0.07)).unwrap();
        assert_eq!(
            ladder.specs(),
            &[
                ResourceSpec::Ratio(0.01),
                ResourceSpec::Ratio(0.05),
                ResourceSpec::Ratio(0.07)
            ]
        );
        let tuples = RefinementSchedule::leading_to(ResourceSpec::Tuples(1000)).unwrap();
        assert_eq!(*tuples.specs().last().unwrap(), ResourceSpec::Tuples(1000));
        assert!(tuples.len() > 1);
        assert!(RefinementSchedule::leading_to(ResourceSpec::Ratio(0.0)).is_err());
    }

    #[test]
    fn session_refines_and_final_step_matches_one_shot() {
        let engine = poi_engine(600);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        let final_spec = ResourceSpec::Ratio(0.8);
        let one_shot = prepared.answer(final_spec).unwrap();

        let schedule = RefinementSchedule::ratios(&[0.02, 0.1, 0.4, 0.8]).unwrap();
        let session = prepared.session(schedule).unwrap();
        let steps: Vec<RefinementStep> = session.map(|s| s.unwrap()).collect();
        assert_eq!(steps.len(), 4);

        // η and spend are monotone, budgets strictly increasing
        for pair in steps.windows(2) {
            assert!(pair[1].eta >= pair[0].eta);
            assert!(pair[1].budget_spent >= pair[0].budget_spent);
            assert!(pair[1].budget > pair[0].budget);
        }
        // at least one later step reused fragments from an earlier one
        assert!(
            steps[1..].iter().any(|s| s.reused_tuples > 0),
            "refinement must reuse fetched fragments"
        );

        // the final step is bit-for-bit the one-shot answer
        let last = steps.last().unwrap();
        assert_eq!(last.spec, final_spec);
        assert_eq!(last.answer.answers, one_shot.answers);
        assert_eq!(last.answer.answers.digest(), one_shot.answers.digest());
        assert_eq!(last.answer.eta, one_shot.eta);
        assert_eq!(last.answer.accessed, one_shot.accessed);
        // the session fetched no more than the one-shot accessed in total
        assert!(last.budget_spent <= one_shot.accessed + last.reused_tuples.max(1));
    }

    #[test]
    fn session_pins_its_snapshot_against_maintenance() {
        let engine = poi_engine(300);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        let mut session = prepared
            .session(RefinementSchedule::ratios(&[0.05, 1.0]).unwrap())
            .unwrap();
        let first = session.next_step().unwrap().unwrap();
        assert_eq!(first.step, 1);

        // maintenance lands mid-session: the session keeps its snapshot
        engine
            .insert_row(
                "poi",
                vec![
                    Value::from("hotel"),
                    Value::from("NYC"),
                    Value::Double(33.5),
                ],
            )
            .unwrap();
        let last = session.next_step().unwrap().unwrap();
        assert!(session.next_step().is_none());
        assert!(
            !last
                .answer
                .answers
                .rows()
                .any(|r| r == vec![Value::Double(33.5)]),
            "a pinned session must not see rows inserted after it opened"
        );
        // a fresh one-shot answer does
        let fresh = prepared.answer(ResourceSpec::FULL).unwrap();
        assert!(fresh.answers.rows().any(|r| r == vec![Value::Double(33.5)]));
    }

    #[test]
    fn to_accuracy_validates_and_reports_its_goal() {
        assert!(RefinementSchedule::to_accuracy(0.0).is_err());
        assert!(RefinementSchedule::to_accuracy(1.5).is_err());
        assert!(RefinementSchedule::to_accuracy(f64::NAN).is_err());
        let s = RefinementSchedule::to_accuracy(0.9).unwrap();
        assert_eq!(s.accuracy_goal(), Some(0.9));
        assert!(RefinementSchedule::default_ladder()
            .accuracy_goal()
            .is_none());
    }

    #[test]
    fn cold_adaptive_session_collapses_to_a_single_full_step() {
        let engine = poi_engine(400);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        let session = prepared
            .session(RefinementSchedule::to_accuracy(0.95).unwrap())
            .unwrap();
        // no curve evidence: one honest full-budget step, no wasted rungs
        assert_eq!(session.steps(), 1);
        let (spec, budget) = session.trajectory()[0];
        assert_eq!(spec, ResourceSpec::FULL);
        assert_eq!(
            budget,
            engine.catalog().budget(&ResourceSpec::FULL).unwrap()
        );
    }

    #[test]
    fn warm_adaptive_session_stops_at_the_learned_budget() {
        let engine = poi_engine(2000);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        // warm the curve with the full default ladder a few times
        for _ in 0..3 {
            let session = prepared
                .session(RefinementSchedule::default_ladder())
                .unwrap();
            for step in session {
                step.unwrap();
            }
        }
        let full_budget = engine.catalog().budget(&ResourceSpec::FULL).unwrap();
        let goal = 0.5;
        let session = prepared
            .session(RefinementSchedule::to_accuracy(goal).unwrap())
            .unwrap();
        let trajectory = session.trajectory().to_vec();
        // budgets strictly increase and the last one is what the curve chose
        for pair in trajectory.windows(2) {
            assert!(pair[1].1 > pair[0].1);
        }
        let steps: Vec<RefinementStep> = session.map(|s| s.unwrap()).collect();
        let last = steps.last().unwrap();
        if last.budget < full_budget {
            // the curve promised the goal under full budget — it must deliver
            // (predictions are conservative on a static database)
            assert!(
                last.eta >= goal,
                "learned budget {} promised η ≥ {goal} but achieved {}",
                last.budget,
                last.eta
            );
        }
    }

    #[test]
    fn equal_resolved_budgets_collapse_into_one_step() {
        let engine = poi_engine(100);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        // 0.001 and 0.005 of 100 rows both resolve to the 1-tuple minimum
        let session = prepared
            .session(RefinementSchedule::ratios(&[0.001, 0.005, 1.0]).unwrap())
            .unwrap();
        assert_eq!(session.steps(), 2);
        assert!(session.total_budget() > 0);
    }
}
