//! The resource-bounded approximation scheme `Γ_A`: BEAS_SPC, BEAS_RA and
//! BEAS_agg planning (Fig. 3 / Fig. 5), including the lower-bound function `L`
//! and the greedy template-upgrading procedure `chAT`.
//!
//! Planning never touches the database: it only uses the query, the catalog
//! (access schema) and the budget `B = α·|D|`, per property (2) of the scheme.

use beas_access::{Catalog, ResourceSpec};
use beas_relal::{SelCond, SpcQuery};

use crate::chase::chase_leaf;
use crate::error::{BeasError, Result};
use crate::plan::{FetchPlan, LeafPlan};
use crate::query::{BeasQuery, RaQuery};

/// A complete α-bounded query plan together with its accuracy bound.
#[derive(Debug, Clone)]
pub struct BoundedPlan {
    /// The planned query.
    pub query: BeasQuery,
    /// The fetching plan `ξ_F` (shared across all SPC leaves).
    pub fetch: FetchPlan,
    /// Per-leaf completion information (same order as `query.ra().spc_leaves()`).
    pub leaves: Vec<LeafPlan>,
    /// The tuple budget `B = α·|D|` the plan was generated for.
    pub budget: usize,
    /// Estimated tuples accessed (`tariff(ξ_α)`), derived from template bounds
    /// only.
    pub tariff: usize,
    /// Worst relevance-distance bound `d_rel` used by `L`.
    pub d_rel: f64,
    /// Worst coverage-distance bound `d_cov` used by `L`.
    pub d_cov: f64,
    /// The deterministic accuracy lower bound `η = 1 / (1 + max(d_rel, d_cov))`.
    pub eta: f64,
    /// `true` when the plan computes exact answers (all resolutions are 0), in
    /// which case the query is answered as a boundedly evaluable query.
    pub exact: bool,
}

impl BoundedPlan {
    /// Family ids used by the plan (for the Exp-4 "used templates" report).
    pub fn used_families(&self) -> Vec<beas_access::FamilyId> {
        self.fetch.used_families()
    }

    /// The effective resource ratio of the plan (`tariff / |D|`).
    pub fn effective_ratio(&self, catalog: &Catalog) -> f64 {
        if catalog.db_size == 0 {
            0.0
        } else {
            self.tariff as f64 / catalog.db_size as f64
        }
    }
}

/// The distance bounds `(d_rel, d_cov)` of the lower-bound function `L`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceBounds {
    /// Bound on every answer's relevance distance.
    pub d_rel: f64,
    /// Bound on every exact answer's coverage distance.
    pub d_cov: f64,
}

impl DistanceBounds {
    /// `η = 1 / (1 + max(d_rel, d_cov))`, 0 when unbounded.
    pub fn eta(&self) -> f64 {
        let worst = self.d_rel.max(self.d_cov);
        if worst.is_infinite() {
            0.0
        } else {
            1.0 / (1.0 + worst.max(0.0))
        }
    }

    /// `true` when both bounds are 0 (the plan is exact).
    pub fn is_exact(&self) -> bool {
        self.d_rel == 0.0 && self.d_cov == 0.0
    }
}

/// The BEAS planner: generates α-bounded plans for SPC, RA and aggregate
/// queries under a catalog (access schema).
#[derive(Debug, Clone, Copy)]
pub struct Planner<'a> {
    catalog: &'a Catalog,
}

impl<'a> Planner<'a> {
    /// A planner over the given catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner { catalog }
    }

    /// The catalog used for planning.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// Plans `query` under a resource spec (Algorithm BEAS_SPC / BEAS_RA /
    /// BEAS_agg, dispatched on the query kind). The spec is validated and
    /// resolved to a tuple budget via the catalog's budget policy.
    ///
    /// A zero spec is an error here: no plan can honour a budget of zero
    /// tuples. [`Beas::answer`](crate::Beas::answer) maps zero specs to an
    /// empty answer instead.
    pub fn plan(&self, query: &BeasQuery, spec: ResourceSpec) -> Result<BoundedPlan> {
        let budget = self.catalog.budget(&spec)?;
        if budget == 0 {
            return Err(BeasError::Planning(format!(
                "resource spec {spec} resolves to a zero budget; no plan can access zero tuples"
            )));
        }
        self.plan_with_budget(query, budget)
    }

    /// Plans `query` under an explicit tuple budget `B`.
    pub fn plan_with_budget(&self, query: &BeasQuery, budget: usize) -> Result<BoundedPlan> {
        query.validate(&self.catalog.schema)?;
        self.plan_prevalidated(query, budget)
    }

    /// Planning entry for callers that already validated the query (the
    /// prepared-query fast path skips re-validation on every budget).
    pub(crate) fn plan_prevalidated(
        &self,
        query: &BeasQuery,
        budget: usize,
    ) -> Result<BoundedPlan> {
        let ra = query.ra().clone();
        let leaves: Vec<&SpcQuery> = ra.spc_leaves();

        // Step 1: chase every max SPC sub-query to derive the initial fetching
        // plan (constraints first, coarse templates as placeholders). One
        // budget tuple is reserved for every atom of later leaves so the plan
        // always stays α-bounded when the budget allows at least one access
        // per relation atom.
        let mut fetch = FetchPlan::default();
        let mut leaf_plans = Vec::with_capacity(leaves.len());
        let atom_counts: Vec<usize> = leaves.iter().map(|l| l.atoms.len()).collect();
        for (i, leaf) in leaves.iter().enumerate() {
            let atoms_after: usize = atom_counts[i + 1..].iter().sum();
            let outcome = chase_leaf(leaf, i, self.catalog, &mut fetch, budget, atoms_after)?;
            leaf_plans.push(outcome.leaf_plan);
        }

        // Step 2: chAT — greedily upgrade template levels within the budget.
        self.chat(&ra, &leaves, &leaf_plans, &mut fetch, budget)?;

        // Step 3: accuracy bounds from the final plan.
        let bounds = self.distance_bounds(&ra, &leaves, &leaf_plans, &fetch)?;
        let tariff = fetch.total_tariff(self.catalog)?;
        let mut eta = bounds.eta();
        if let BeasQuery::Aggregate(agg) = query {
            // Corollary 7 carries the RA bounds over to min/max aggregates; for
            // sum/count/avg the aggregate value itself is not bounded by the
            // template resolutions (Sec. 7), so no non-trivial deterministic
            // bound is claimed unless the plan is exact.
            if !agg.agg.is_extremum() && !bounds.is_exact() {
                eta = 0.0;
            }
        }
        Ok(BoundedPlan {
            query: query.clone(),
            fetch,
            leaves: leaf_plans,
            budget,
            tariff,
            d_rel: bounds.d_rel,
            d_cov: bounds.d_cov,
            eta,
            exact: bounds.is_exact(),
        })
    }

    /// The smallest resource ratio under which BEAS finds *exact* answers for
    /// the query: the tariff of the all-exact plan divided by `|D|` (Exp-3).
    ///
    /// Returns `None` when no exact plan exists under the catalog (never the
    /// case when the catalog contains `A_t`, whose deepest levels are exact).
    pub fn exact_ratio(&self, query: &BeasQuery) -> Result<Option<f64>> {
        let plan = self.plan_with_budget(query, usize::MAX)?;
        if !plan.exact {
            return Ok(None);
        }
        Ok(Some(plan.effective_ratio(self.catalog)))
    }

    /// `chAT` (Fig. 3): repeatedly pick the fetch operation whose upgrade to
    /// the next resolution level yields the largest improvement of the lower
    /// bound `L`, as long as the plan stays within the budget.
    fn chat(
        &self,
        ra: &RaQuery,
        leaves: &[&SpcQuery],
        leaf_plans: &[LeafPlan],
        fetch: &mut FetchPlan,
        budget: usize,
    ) -> Result<()> {
        loop {
            let current_bounds = self.distance_bounds(ra, leaves, leaf_plans, fetch)?;
            let current_worst = current_bounds.d_rel.max(current_bounds.d_cov);
            if current_worst == 0.0 {
                return Ok(()); // already exact
            }

            // candidate upgrades: any node below its family's deepest level
            let mut best: Option<(f64, f64, usize)> = None; // (bound gain, own gain, node)
            for node in 0..fetch.nodes.len() {
                let family = self.catalog.family(fetch.nodes[node].family)?;
                let level = fetch.nodes[node].level;
                if level + 1 >= family.num_levels() {
                    continue;
                }
                // apply tentatively
                fetch.nodes[node].level = level + 1;
                let feasible = fetch.total_tariff(self.catalog)? <= budget;
                let (gain, own_gain) = if feasible {
                    let new_bounds = self.distance_bounds(ra, leaves, leaf_plans, fetch)?;
                    let new_worst = new_bounds.d_rel.max(new_bounds.d_cov);
                    // per-attribute improvement of the node's own resolution:
                    // used to keep zooming in (which improves the answers even
                    // when the plan-wide bound is dominated by another node)
                    let old_res = &family.level(level)?.resolution;
                    let new_res = &family.level(level + 1)?.resolution;
                    let own: f64 = old_res
                        .iter()
                        .zip(new_res.iter())
                        .map(|(o, n)| finite_gain(*o, *n))
                        .sum();
                    (finite_gain(current_worst, new_worst), own)
                } else {
                    (f64::NEG_INFINITY, f64::NEG_INFINITY)
                };
                fetch.nodes[node].level = level; // revert
                if !feasible {
                    continue;
                }
                let candidate = (gain, own_gain, node);
                let better = match &best {
                    None => true,
                    Some((bg, bo, _)) => (gain, own_gain) > (*bg, *bo),
                };
                if better && (gain > 0.0 || own_gain > 0.0) {
                    best = Some(candidate);
                }
            }
            match best {
                Some((_, _, node)) => {
                    fetch.nodes[node].level += 1;
                }
                None => return Ok(()),
            }
        }
    }

    /// The lower-bound function `L`: per-position resolutions are propagated
    /// through the structure of the query into the relevance / coverage
    /// distance bounds (Sec. 5 "Lower bound function L(ξ_F)", extended to
    /// union / difference / aggregates as in Sec. 6–7).
    pub fn distance_bounds(
        &self,
        ra: &RaQuery,
        leaves: &[&SpcQuery],
        leaf_plans: &[LeafPlan],
        fetch: &FetchPlan,
    ) -> Result<DistanceBounds> {
        let schema = &self.catalog.schema;
        // indices of leaves that contribute positively to the answer
        let positive = positive_leaf_indices(ra);

        let mut d_rel: f64 = 0.0;
        let mut d_cov: f64 = 0.0;
        for (i, (leaf, leaf_plan)) in leaves.iter().zip(leaf_plans.iter()).enumerate() {
            let res = |pos: beas_relal::Position| -> Result<f64> {
                leaf_plan.position_resolution(fetch, self.catalog, schema, leaf, pos)
            };

            // output attributes: the answer can deviate by the resolution of
            // the position it is projected from
            let mut d_out: f64 = 0.0;
            for out in &leaf.output {
                let pos = leaf.var_first_position(out.var).ok_or_else(|| {
                    BeasError::Planning(format!("output variable {} unbound", out.var))
                })?;
                d_out = d_out.max(res(pos)?);
            }

            // selection conditions: a returned representative may stand for a
            // real tuple that needs relaxation up to twice the resolution of
            // the attributes involved (constants), or the sum of both sides'
            // resolutions (joins / attribute comparisons)
            let mut d_sel: f64 = 0.0;
            for (ai, terms) in leaf.terms.iter().enumerate() {
                for (pi, term) in terms.iter().enumerate() {
                    if term.is_const() {
                        d_sel = d_sel.max(2.0 * res((ai, pi))?);
                    }
                }
            }
            for positions in leaf.var_positions().values() {
                if positions.len() > 1 {
                    let first = res(positions[0])?;
                    for &p in &positions[1..] {
                        d_sel = d_sel.max(first + res(p)?);
                    }
                }
            }
            for sel in &leaf.selections {
                match sel {
                    SelCond::VarConst { var, .. } => {
                        let pos = leaf.var_first_position(*var).ok_or_else(|| {
                            BeasError::Planning(format!("selection variable {var} unbound"))
                        })?;
                        // equality and inequality selections both relax by
                        // twice the position's resolution
                        d_sel = d_sel.max(2.0 * res(pos)?);
                    }
                    SelCond::VarVar { left, right, .. } => {
                        let lpos = leaf.var_first_position(*left).ok_or_else(|| {
                            BeasError::Planning(format!("selection variable {left} unbound"))
                        })?;
                        let rpos = leaf.var_first_position(*right).ok_or_else(|| {
                            BeasError::Planning(format!("selection variable {right} unbound"))
                        })?;
                        d_sel = d_sel.max(res(lpos)? + res(rpos)?);
                    }
                }
            }

            let leaf_rel = d_out.max(d_sel);
            let leaf_cov = d_out;
            // all leaves contribute to relevance; only positive leaves bound
            // coverage (Sec. 6: d_rel(Q1 − Q2) = d_rel(Q1), d_cov = d_cov(Q1))
            d_rel = d_rel.max(leaf_rel);
            if positive.contains(&i) {
                d_cov = d_cov.max(leaf_cov);
            }
        }
        Ok(DistanceBounds { d_rel, d_cov })
    }
}

/// Indices (in leaf order) of the SPC leaves that contribute positively.
fn positive_leaf_indices(ra: &RaQuery) -> Vec<usize> {
    fn walk(q: &RaQuery, index: &mut usize, positive: bool, out: &mut Vec<usize>) {
        match q {
            RaQuery::Spc(_) => {
                if positive {
                    out.push(*index);
                }
                *index += 1;
            }
            RaQuery::Union(l, r) => {
                walk(l, index, positive, out);
                walk(r, index, positive, out);
            }
            RaQuery::Difference(l, r) => {
                walk(l, index, positive, out);
                walk(r, index, false, out);
            }
        }
    }
    let mut out = Vec::new();
    let mut index = 0;
    walk(ra, &mut index, true, &mut out);
    out
}

/// Positive, finite improvement between two (possibly infinite) distances.
fn finite_gain(old: f64, new: f64) -> f64 {
    if old.is_infinite() && new.is_infinite() {
        0.0
    } else if old.is_infinite() {
        f64::MAX
    } else {
        old - new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AggQuery;
    use beas_access::{build_constraint, build_extended, AtOptions};
    use beas_relal::{
        AggFunc, Attribute, Database, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
    };

    fn example_db(n: i64) -> Database {
        let schema = DatabaseSchema::new(vec![
            RelationSchema::new(
                "person",
                vec![Attribute::id("pid"), Attribute::text("city")],
            ),
            RelationSchema::new("friend", vec![Attribute::id("pid"), Attribute::id("fid")]),
            RelationSchema::new(
                "poi",
                vec![
                    Attribute::text("address"),
                    Attribute::categorical("type"),
                    Attribute::text("city"),
                    Attribute::double("price"),
                ],
            ),
        ]);
        let mut db = Database::new(schema);
        let cities = ["NYC", "LA", "Chicago", "Boston"];
        for i in 0..n {
            db.insert_row("friend", vec![Value::Int(i % 10), Value::Int(i)])
                .unwrap();
            db.insert_row(
                "person",
                vec![Value::Int(i), Value::from(cities[(i % 4) as usize])],
            )
            .unwrap();
            db.insert_row(
                "poi",
                vec![
                    Value::from(format!("a{i}")),
                    Value::from(if i % 3 == 0 { "hotel" } else { "museum" }),
                    Value::from(cities[(i % 4) as usize]),
                    Value::Double(40.0 + (i % 50) as f64 * 2.0),
                ],
            )
            .unwrap();
        }
        db
    }

    fn full_catalog(db: &Database) -> Catalog {
        let mut catalog = Catalog::for_database(db, &AtOptions::default()).unwrap();
        catalog.add_family(build_constraint(db, "friend", &["pid"], &["fid"]).unwrap());
        catalog.add_family(build_constraint(db, "person", &["pid"], &["city"]).unwrap());
        catalog.add_family(
            build_extended(db, "poi", &["type", "city"], &["price", "address"]).unwrap(),
        );
        catalog
    }

    fn q1(db: &Database) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(f, "pid", 1i64).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.join((p, "city"), (h, "city")).unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", beas_relal::CompareOp::Le, 95i64)
            .unwrap();
        b.output(h, "city", "city").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    fn q2(db: &Database) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        b.bind_const(f, "pid", 1i64).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.output(p, "city", "city").unwrap();
        b.build().unwrap().into()
    }

    #[test]
    fn plan_q2_is_exact_and_bounded() {
        let db = example_db(400);
        let catalog = full_catalog(&db);
        let planner = Planner::new(&catalog);
        let plan = planner.plan_with_budget(&q2(&db), 100).unwrap();
        assert!(plan.exact);
        assert_eq!(plan.eta, 1.0);
        assert!(plan.tariff <= 100);
        assert!(plan.effective_ratio(&catalog) < 0.1);
    }

    #[test]
    fn plan_q1_respects_budget_and_reports_eta() {
        let db = example_db(400);
        let catalog = full_catalog(&db);
        let planner = Planner::new(&catalog);
        let plan = planner.plan_with_budget(&q1(&db), 200).unwrap();
        assert!(plan.tariff <= 200, "tariff {} exceeds budget", plan.tariff);
        assert!(plan.eta > 0.0 && plan.eta <= 1.0);
        assert!(!plan.used_families().is_empty());
    }

    #[test]
    fn larger_budget_never_lowers_eta() {
        // Theorem 5(3): α1 ≥ α2 implies η1 ≥ η2
        let db = example_db(400);
        let catalog = full_catalog(&db);
        let planner = Planner::new(&catalog);
        let q = q1(&db);
        let mut last = -1.0f64;
        for budget in [30usize, 60, 120, 400, 1200] {
            let plan = planner.plan_with_budget(&q, budget).unwrap();
            assert!(
                plan.eta >= last - 1e-12,
                "eta decreased from {last} to {} at budget {budget}",
                plan.eta
            );
            last = plan.eta;
        }
    }

    #[test]
    fn chat_upgrades_levels_with_budget() {
        let db = example_db(400);
        let catalog = full_catalog(&db);
        let planner = Planner::new(&catalog);
        let small = planner.plan_with_budget(&q1(&db), 120).unwrap();
        let large = planner.plan_with_budget(&q1(&db), 4000).unwrap();
        assert!(large.eta >= small.eta);
        assert!(large.tariff >= small.tariff);
        // with a generous budget the plan becomes exact
        assert!(large.exact);
    }

    #[test]
    fn exact_ratio_reports_bounded_evaluability() {
        let db = example_db(400);
        let catalog = full_catalog(&db);
        let planner = Planner::new(&catalog);
        let r2 = planner.exact_ratio(&q2(&db)).unwrap().unwrap();
        let r1 = planner.exact_ratio(&q1(&db)).unwrap().unwrap();
        assert!(r2 > 0.0 && r2 < 0.1, "Q2 needs a tiny fraction, got {r2}");
        assert!(r1 >= r2, "Q1 needs at least as much data as Q2");
    }

    #[test]
    fn ra_difference_plan_covers_all_leaves() {
        let db = example_db(300);
        let catalog = full_catalog(&db);
        let planner = Planner::new(&catalog);
        let q1_ra = match q1(&db) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let cheap = {
            let mut b = SpcQueryBuilder::new(&db.schema);
            let h = b.atom("poi", "h").unwrap();
            b.bind_const(h, "type", "hotel").unwrap();
            b.output(h, "city", "city").unwrap();
            b.output(h, "price", "price").unwrap();
            RaQuery::spc(b.build().unwrap())
        };
        let q: BeasQuery = BeasQuery::Ra(q1_ra.difference(cheap));
        let plan = planner.plan_with_budget(&q, 200).unwrap();
        assert_eq!(plan.leaves.len(), 2);
        assert!(plan.tariff <= 200);
        assert!(plan.eta >= 0.0);
    }

    #[test]
    fn aggregate_plan_inherits_bounds_from_inner_query() {
        let db = example_db(300);
        let catalog = full_catalog(&db);
        let planner = Planner::new(&catalog);
        let inner = match q1(&db) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        // min/max aggregates inherit the RA bounds (Corollary 7)
        let agg: BeasQuery = AggQuery::new(
            inner.clone(),
            vec!["city".into()],
            AggFunc::Min,
            "price",
            "n",
        )
        .unwrap()
        .into();
        let plan = planner.plan_with_budget(&agg, 150).unwrap();
        assert!(plan.tariff <= 150);
        assert!(plan.eta > 0.0);

        // sum/count/avg claim no non-trivial bound unless the plan is exact
        let count: BeasQuery =
            AggQuery::new(inner, vec!["city".into()], AggFunc::Count, "price", "n")
                .unwrap()
                .into();
        let approx_plan = planner.plan_with_budget(&count, 150).unwrap();
        if !approx_plan.exact {
            assert_eq!(approx_plan.eta, 0.0);
        }
        let exact_plan = planner.plan_with_budget(&count, usize::MAX).unwrap();
        assert!(exact_plan.exact);
        assert_eq!(exact_plan.eta, 1.0);
    }

    #[test]
    fn invalid_query_is_rejected() {
        let db = example_db(50);
        let catalog = full_catalog(&db);
        let planner = Planner::new(&catalog);
        let mut bad = match q2(&db) {
            BeasQuery::Ra(RaQuery::Spc(q)) => q,
            _ => unreachable!(),
        };
        bad.output.clear();
        assert!(planner.plan_with_budget(&bad.into(), 100).is_err());
    }

    #[test]
    fn positive_leaf_indices_skip_negated_subtrees() {
        let db = example_db(50);
        let q1_ra = match q1(&db) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let q2_ra = match q2(&db) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let q = q1_ra.clone().difference(q2_ra).union(q1_ra);
        assert_eq!(positive_leaf_indices(&q), vec![0, 2]);
    }
}
