//! The query language accepted by the BEAS planner.
//!
//! BEAS plans over the *tableau* form of queries: SPC (conjunctive) blocks
//! composed with union and set difference ([`RaQuery`]), optionally wrapped in
//! a group-by/aggregate ([`AggQuery`]). This mirrors the paper's treatment:
//! `BEAS_SPC` handles the SPC blocks (Sec. 5), `BEAS_RA` composes them and
//! enforces set difference (Sec. 6), and `BEAS_agg` adds aggregation (Sec. 7).
//!
//! Every query converts losslessly to a [`QueryExpr`] so that the exact
//! evaluator can compute ground truth `Q(D)` for the accuracy experiments.

use beas_relal::{
    AggFunc, DatabaseSchema, DistanceKind, GroupByQuery, QueryExpr, RaExpr, RelalError, SpcQuery,
};

use crate::error::{BeasError, Result};

/// A relational-algebra query over SPC blocks: the max-SPC sub-queries of the
/// paper are exactly the [`RaQuery::Spc`] leaves.
#[derive(Debug, Clone, PartialEq)]
pub enum RaQuery {
    /// A select–project–product block.
    Spc(SpcQuery),
    /// Union of two sub-queries with identical output schemas.
    Union(Box<RaQuery>, Box<RaQuery>),
    /// Set difference of two sub-queries with identical output schemas.
    Difference(Box<RaQuery>, Box<RaQuery>),
}

impl RaQuery {
    /// Wraps an SPC query.
    pub fn spc(q: SpcQuery) -> Self {
        RaQuery::Spc(q)
    }

    /// `self ∪ other`.
    pub fn union(self, other: RaQuery) -> Self {
        RaQuery::Union(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn difference(self, other: RaQuery) -> Self {
        RaQuery::Difference(Box::new(self), Box::new(other))
    }

    /// Output column names (taken from the leftmost SPC leaf; validation
    /// enforces that all leaves agree).
    pub fn output_columns(&self) -> Vec<String> {
        match self {
            RaQuery::Spc(q) => q.output.iter().map(|o| o.name.clone()).collect(),
            RaQuery::Union(l, _) | RaQuery::Difference(l, _) => l.output_columns(),
        }
    }

    /// All SPC leaves, left to right (the "max SPC sub-queries" of Sec. 6).
    pub fn spc_leaves(&self) -> Vec<&SpcQuery> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a SpcQuery>) {
        match self {
            RaQuery::Spc(q) => out.push(q),
            RaQuery::Union(l, r) | RaQuery::Difference(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// The SPC leaves that contribute *positively* to the answer (i.e. are not
    /// below the right side of a set difference). These are the leaves whose
    /// resolution determines the coverage bound.
    pub fn positive_leaves(&self) -> Vec<&SpcQuery> {
        let mut out = Vec::new();
        self.collect_positive(&mut out);
        out
    }

    fn collect_positive<'a>(&'a self, out: &mut Vec<&'a SpcQuery>) {
        match self {
            RaQuery::Spc(q) => out.push(q),
            RaQuery::Union(l, r) => {
                l.collect_positive(out);
                r.collect_positive(out);
            }
            RaQuery::Difference(l, _) => l.collect_positive(out),
        }
    }

    /// The *maximal induced query* `Q̂` of Sec. 6: the query obtained by
    /// dropping the negated part of every set difference, so that
    /// `Q̂(D) ⊇ Q(D)` on every database.
    pub fn maximal_induced(&self) -> RaQuery {
        match self {
            RaQuery::Spc(q) => RaQuery::Spc(q.clone()),
            RaQuery::Union(l, r) => {
                RaQuery::Union(Box::new(l.maximal_induced()), Box::new(r.maximal_induced()))
            }
            RaQuery::Difference(l, _) => l.maximal_induced(),
        }
    }

    /// Number of set-difference operators (the `#-diff` knob of the workload).
    pub fn num_differences(&self) -> usize {
        match self {
            RaQuery::Spc(_) => 0,
            RaQuery::Union(l, r) => l.num_differences() + r.num_differences(),
            RaQuery::Difference(l, r) => 1 + l.num_differences() + r.num_differences(),
        }
    }

    /// `true` when the query contains a set difference.
    pub fn has_difference(&self) -> bool {
        self.num_differences() > 0
    }

    /// `true` when the query is a single SPC block.
    pub fn is_spc(&self) -> bool {
        matches!(self, RaQuery::Spc(_))
    }

    /// `||Q||`: total number of relation atoms across all leaves.
    pub fn relation_count(&self) -> usize {
        self.spc_leaves().iter().map(|q| q.relation_count()).sum()
    }

    /// Maximum number of Cartesian products in any single SPC leaf (the
    /// `#-prod` knob of the workload).
    pub fn max_products(&self) -> usize {
        self.spc_leaves()
            .iter()
            .map(|q| q.relation_count().saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// Total number of selection predicates across leaves (`#-sel`).
    pub fn selection_count(&self) -> usize {
        self.spc_leaves().iter().map(|q| q.selection_count()).sum()
    }

    /// Validates the query: every leaf is valid and all leaves share the same
    /// output column names.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        let leaves = self.spc_leaves();
        let first_cols = self.output_columns();
        for leaf in &leaves {
            leaf.validate(schema)?;
            let cols: Vec<String> = leaf.output.iter().map(|o| o.name.clone()).collect();
            if cols != first_cols {
                return Err(BeasError::UnsupportedQuery(format!(
                    "union/difference branches have different outputs: {first_cols:?} vs {cols:?}"
                )));
            }
        }
        Ok(())
    }

    /// Converts to a relational-algebra expression for exact evaluation.
    pub fn to_ra(&self, schema: &DatabaseSchema) -> Result<RaExpr> {
        match self {
            RaQuery::Spc(q) => Ok(q.to_ra(schema)?),
            RaQuery::Union(l, r) => Ok(l.to_ra(schema)?.union(r.to_ra(schema)?)),
            RaQuery::Difference(l, r) => Ok(l.to_ra(schema)?.difference(r.to_ra(schema)?)),
        }
    }

    /// The distance kind of every output column (needed by the accuracy
    /// measures), taken from the leftmost leaf.
    pub fn output_distances(&self, schema: &DatabaseSchema) -> Result<Vec<DistanceKind>> {
        match self {
            RaQuery::Spc(q) => Ok(q.output_distances(schema)?),
            RaQuery::Union(l, _) | RaQuery::Difference(l, _) => l.output_distances(schema),
        }
    }
}

/// An aggregate query `gpBy(Q', X, agg(V))` over an [`RaQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggQuery {
    /// The inner RA query `Q'`.
    pub input: RaQuery,
    /// Group-by columns (names from the inner query's output).
    pub group_by: Vec<String>,
    /// Aggregate function.
    pub agg: AggFunc,
    /// Aggregated column (a name from the inner query's output).
    pub agg_col: String,
    /// Name of the aggregate output column.
    pub out_name: String,
}

impl AggQuery {
    /// Creates an aggregate query, checking that the grouped and aggregated
    /// columns exist in the inner query's output.
    pub fn new(
        input: RaQuery,
        group_by: Vec<String>,
        agg: AggFunc,
        agg_col: impl Into<String>,
        out_name: impl Into<String>,
    ) -> Result<Self> {
        let agg_col = agg_col.into();
        let cols = input.output_columns();
        for g in &group_by {
            if !cols.contains(g) {
                return Err(BeasError::UnsupportedQuery(format!(
                    "group-by column {g} is not an output of the inner query"
                )));
            }
        }
        if !cols.contains(&agg_col) {
            return Err(BeasError::UnsupportedQuery(format!(
                "aggregated column {agg_col} is not an output of the inner query"
            )));
        }
        Ok(AggQuery {
            input,
            group_by,
            agg,
            agg_col,
            out_name: out_name.into(),
        })
    }

    /// Output columns: group-by columns followed by the aggregate.
    pub fn output_columns(&self) -> Vec<String> {
        let mut cols = self.group_by.clone();
        cols.push(self.out_name.clone());
        cols
    }

    /// Validates the query against a schema.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        self.input.validate(schema)
    }

    /// Converts to a [`GroupByQuery`] for exact evaluation.
    pub fn to_group_by(&self, schema: &DatabaseSchema) -> Result<GroupByQuery> {
        Ok(GroupByQuery::new(
            self.input.to_ra(schema)?,
            self.group_by.clone(),
            self.agg,
            self.agg_col.clone(),
            self.out_name.clone(),
        ))
    }
}

/// A BEAS query: "aggregate or not".
#[derive(Debug, Clone, PartialEq)]
pub enum BeasQuery {
    /// A relational-algebra query.
    Ra(RaQuery),
    /// An aggregate query.
    Aggregate(AggQuery),
}

impl BeasQuery {
    /// The inner RA query (`Q'` for aggregates).
    pub fn ra(&self) -> &RaQuery {
        match self {
            BeasQuery::Ra(q) => q,
            BeasQuery::Aggregate(a) => &a.input,
        }
    }

    /// `true` for aggregate queries.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, BeasQuery::Aggregate(_))
    }

    /// `true` when the query is a single SPC block (no ∪/−/aggregation).
    pub fn is_spc(&self) -> bool {
        matches!(self, BeasQuery::Ra(RaQuery::Spc(_)))
    }

    /// Output column names.
    pub fn output_columns(&self) -> Vec<String> {
        match self {
            BeasQuery::Ra(q) => q.output_columns(),
            BeasQuery::Aggregate(a) => a.output_columns(),
        }
    }

    /// `||Q||`: number of relation atoms.
    pub fn relation_count(&self) -> usize {
        self.ra().relation_count()
    }

    /// Validates the query.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<()> {
        match self {
            BeasQuery::Ra(q) => q.validate(schema),
            BeasQuery::Aggregate(a) => a.validate(schema),
        }
    }

    /// Converts to a [`QueryExpr`] for exact (ground truth) evaluation.
    pub fn to_query_expr(&self, schema: &DatabaseSchema) -> Result<QueryExpr> {
        match self {
            BeasQuery::Ra(q) => Ok(QueryExpr::Ra(q.to_ra(schema)?)),
            BeasQuery::Aggregate(a) => Ok(QueryExpr::Aggregate(a.to_group_by(schema)?)),
        }
    }

    /// The distance kind of every output column.
    pub fn output_distances(&self, schema: &DatabaseSchema) -> Result<Vec<DistanceKind>> {
        match self {
            BeasQuery::Ra(q) => q.output_distances(schema),
            BeasQuery::Aggregate(a) => {
                // group-by columns inherit their distance from the inner query;
                // the aggregate column is numeric.
                let inner_cols = a.input.output_columns();
                let inner_dists = a.input.output_distances(schema)?;
                let mut out = Vec::new();
                for g in &a.group_by {
                    let idx = inner_cols
                        .iter()
                        .position(|c| c == g)
                        .ok_or_else(|| RelalError::UnknownColumn(g.clone()))?;
                    out.push(inner_dists[idx]);
                }
                out.push(DistanceKind::Numeric);
                Ok(out)
            }
        }
    }
}

impl From<RaQuery> for BeasQuery {
    fn from(q: RaQuery) -> Self {
        BeasQuery::Ra(q)
    }
}

impl From<SpcQuery> for BeasQuery {
    fn from(q: SpcQuery) -> Self {
        BeasQuery::Ra(RaQuery::Spc(q))
    }
}

impl From<AggQuery> for BeasQuery {
    fn from(q: AggQuery) -> Self {
        BeasQuery::Aggregate(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beas_relal::{Attribute, CompareOp, RelationSchema, SpcQueryBuilder};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![
            RelationSchema::new(
                "person",
                vec![Attribute::id("pid"), Attribute::text("city")],
            ),
            RelationSchema::new("friend", vec![Attribute::id("pid"), Attribute::id("fid")]),
            RelationSchema::new(
                "poi",
                vec![
                    Attribute::text("address"),
                    Attribute::categorical("type"),
                    Attribute::text("city"),
                    Attribute::double("price"),
                ],
            ),
        ])
    }

    fn hotels_below(schema: &DatabaseSchema, price: i64) -> SpcQuery {
        let mut b = SpcQueryBuilder::new(schema);
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", CompareOp::Le, price).unwrap();
        b.output(h, "city", "city").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn spc_leaves_and_counts() {
        let s = schema();
        let q = RaQuery::spc(hotels_below(&s, 95))
            .union(RaQuery::spc(hotels_below(&s, 50)))
            .difference(RaQuery::spc(hotels_below(&s, 20)));
        assert_eq!(q.spc_leaves().len(), 3);
        assert_eq!(q.positive_leaves().len(), 2);
        assert_eq!(q.num_differences(), 1);
        assert!(q.has_difference());
        assert_eq!(q.relation_count(), 3);
        assert_eq!(q.max_products(), 0);
        q.validate(&s).unwrap();
    }

    #[test]
    fn maximal_induced_drops_negated_parts() {
        let s = schema();
        let q = RaQuery::spc(hotels_below(&s, 95)).difference(RaQuery::spc(hotels_below(&s, 20)));
        let induced = q.maximal_induced();
        assert!(induced.is_spc());
        assert!(!induced.has_difference());
        // nested: (A − B) ∪ (C − D) → A ∪ C
        let q2 = q.clone().union(
            RaQuery::spc(hotels_below(&s, 80)).difference(RaQuery::spc(hotels_below(&s, 10))),
        );
        let induced2 = q2.maximal_induced();
        assert_eq!(induced2.spc_leaves().len(), 2);
        assert_eq!(induced2.num_differences(), 0);
    }

    #[test]
    fn validate_rejects_mismatched_branch_outputs() {
        let s = schema();
        let mut other = hotels_below(&s, 95);
        other.output[0].name = "town".into();
        let q = RaQuery::spc(hotels_below(&s, 95)).union(RaQuery::spc(other));
        assert!(q.validate(&s).is_err());
    }

    #[test]
    fn to_ra_composes_union_and_difference() {
        let s = schema();
        let q = RaQuery::spc(hotels_below(&s, 95)).difference(RaQuery::spc(hotels_below(&s, 20)));
        let ra = q.to_ra(&s).unwrap();
        assert!(ra.has_difference());
        assert_eq!(ra.relation_count(), 2);
    }

    #[test]
    fn agg_query_validates_columns() {
        let s = schema();
        let base = RaQuery::spc(hotels_below(&s, 95));
        let agg = AggQuery::new(
            base.clone(),
            vec!["city".into()],
            AggFunc::Count,
            "price",
            "n",
        )
        .unwrap();
        assert_eq!(agg.output_columns(), vec!["city", "n"]);
        assert!(AggQuery::new(
            base.clone(),
            vec!["nope".into()],
            AggFunc::Count,
            "price",
            "n"
        )
        .is_err());
        assert!(AggQuery::new(base, vec!["city".into()], AggFunc::Count, "nope", "n").is_err());
    }

    #[test]
    fn beas_query_conversions_and_metadata() {
        let s = schema();
        let spc: BeasQuery = hotels_below(&s, 95).into();
        assert!(spc.is_spc());
        assert!(!spc.is_aggregate());
        assert_eq!(spc.output_columns(), vec!["city", "price"]);
        assert!(spc.to_query_expr(&s).is_ok());

        let agg: BeasQuery = AggQuery::new(
            RaQuery::spc(hotels_below(&s, 95)),
            vec!["city".into()],
            AggFunc::Avg,
            "price",
            "avg_price",
        )
        .unwrap()
        .into();
        assert!(agg.is_aggregate());
        assert_eq!(agg.output_columns(), vec!["city", "avg_price"]);
        let dists = agg.output_distances(&s).unwrap();
        assert_eq!(dists, vec![DistanceKind::Trivial, DistanceKind::Numeric]);
        assert!(matches!(
            agg.to_query_expr(&s).unwrap(),
            QueryExpr::Aggregate(_)
        ));
    }

    #[test]
    fn output_distances_follow_leftmost_leaf() {
        let s = schema();
        let q = RaQuery::spc(hotels_below(&s, 95)).union(RaQuery::spc(hotels_below(&s, 50)));
        let d = q.output_distances(&s).unwrap();
        assert_eq!(d, vec![DistanceKind::Trivial, DistanceKind::Numeric]);
    }
}
