//! Execution of bounded query plans: runs the fetching plan `ξ_F` through a
//! budget-enforcing [`FetchSession`] and then evaluates the relaxation-
//! compensated evaluation plan `ξ_E` over the fetched data (Sec. 5–7).
//!
//! Set difference is enforced without scanning the database (Sec. 6): when the
//! negated side was fetched approximately, answers of the positive side that
//! fall within the *dangerous distance* of the negated side's maximal induced
//! query are excluded, and the coverage part of the accuracy bound is
//! re-estimated from the two executed answer sets (`d'` of Fig. 5).
//!
//! # Sharded parallel evaluation
//!
//! Fetching stays sequential (budget enforcement is a serial accounting
//! decision), but the evaluation plan `ξ_E` is embarrassingly parallel: with
//! [`ExecOptions::threads`] > 1, each SPC leaf partitions its largest fetched
//! atom relation into per-core row shards, evaluates the leaf expression per
//! shard on `std::thread::scope` threads, and merges the shard outputs.
//! Sharding one atom partitions the set of atom-row combinations exactly, so
//! the merged result is the same (multi)set the sequential evaluation
//! produces; leaf results are then canonicalised (sorted / deduplicated)
//! before RA composition and aggregation, which makes the final answers
//! **bit-for-bit identical for every thread count** — including the
//! floating-point aggregate sums, whose accumulation order is fixed by the
//! canonical row order.
//!
//! # Resumable execution
//!
//! Multi-resolution template families make refinement cheap in the *dual*
//! direction too: the fragments a plan fetches at a coarse budget are exactly
//! the fragments a finer-budget plan re-fetches (same family, same level,
//! same keys) whenever `chAT` kept that level. An [`ExecState`] therefore
//! carries, across executions of *plans for the same query against the same
//! catalog snapshot*:
//!
//! * the **fetched fragment set**, keyed by `(family, level, keys)` — a
//!   repeated fetch is served from the state (and billed against the budget
//!   through [`FetchSession::record_cached`], so the access accounting is
//!   identical to a fresh run) instead of re-materialized;
//! * **partial SPC leaf results**, keyed by the leaf and the fragment
//!   identities of its completion nodes — a leaf whose inputs did not change
//!   between budgets skips relaxation, join and canonicalisation entirely.
//!
//! Because a state hit returns exactly what a fresh fetch/evaluation would
//! return, [`execute_plan_with_state`] is **bit-for-bit identical** to
//! [`execute_plan_with_options`] — answers, η, float aggregate sums and the
//! `accessed` accounting; only wall-clock differs. This is the foundation of
//! the [`AnswerSession`](crate::AnswerSession) refinement loop.
//!
//! # Fragment streams
//!
//! Execution is factored into three public phases so a leaf never cares
//! *where* its input fragments came from — a local fetch, a session's reuse
//! cache, or a peer node of a cluster:
//!
//! 1. [`stream_plan_fragments`] drives the fetching plan `ξ_F` node by node
//!    (each node's keys derive from already-streamed fragments via
//!    [`node_keys`]) and fills a [`PlanFragments`] — the local source. A
//!    distributed coordinator instead gathers fragments from shard nodes and
//!    registers them with [`ExecState::adopt_fragment`] +
//!    [`PlanFragments::set`].
//! 2. [`evaluate_plan_leaf`] evaluates one SPC leaf over whatever fragments
//!    its completion nodes resolved to, returning a canonical [`LeafEval`].
//! 3. [`compose_plan_answer`] combines the per-leaf results along the RA
//!    structure, applies the `d'` correction and the final aggregation.
//!
//! [`execute_plan_with_state`] is exactly the composition of the three, so
//! any other driver of the phases (e.g. a cluster coordinator) inherits the
//! bit-for-bit determinism for free.

use std::collections::HashMap;
use std::sync::Arc;

use beas_access::{Catalog, FetchSession, ResourceSpec, WEIGHT_COLUMN};
use beas_relal::{
    aggregate_relation, eval_bag, eval_set, Column, CompareOp, GroupByQuery, Predicate,
    PredicateAtom, RaExpr, Relation, SelCond, SpcQuery, Value,
};

use crate::error::{BeasError, Result};
use crate::plan::{FetchNode, KeySource, LeafPlan};
use crate::planner::BoundedPlan;
use crate::query::{BeasQuery, RaQuery};

/// The result of executing a bounded plan.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// The (approximate or exact) answers `ξ_α(D)`.
    pub answers: Relation,
    /// The final accuracy lower bound `η` (for queries with approximate set
    /// difference this refines the planned bound using `d'`, Fig. 5 lines 6–7).
    pub eta: f64,
    /// Tuples actually accessed.
    pub accessed: usize,
    /// Number of fetch operations executed.
    pub fetches: usize,
}

/// Default for [`ExecOptions::min_shard_rows`]: the smallest sharded-atom row
/// count for which parallel leaf evaluation is engaged. Below it, thread
/// spawn overhead dominates the evaluation work on typical hardware; override
/// it per execution (e.g. from a startup calibration) via
/// [`ExecOptions::with_min_shard_rows`].
pub const DEFAULT_MIN_SHARD_ROWS: usize = 64;

/// The startup-calibrated value for [`ExecOptions::min_shard_rows`]: the
/// sharded-atom row count at which the measured per-row leaf-evaluation work
/// amortizes the measured cost of spawning and joining scoped worker threads.
///
/// Measured once per process (a few hundred microseconds) on first use —
/// `BeasBuilder::build` reads it unless the builder pinned an explicit
/// threshold. The threshold only gates when parallelism engages; answers are
/// bit-for-bit identical for every value, so a noisy calibration can cost
/// wall-clock but never correctness.
pub fn calibrated_min_shard_rows() -> usize {
    use std::sync::OnceLock;
    static CALIBRATED: OnceLock<usize> = OnceLock::new();
    *CALIBRATED.get_or_init(measure_min_shard_rows)
}

/// One spawn/steal + per-row work measurement (see
/// [`calibrated_min_shard_rows`]).
fn measure_min_shard_rows() -> usize {
    use std::time::Instant;

    // cost of engaging parallelism: spawn + join one scoped worker
    const SPAWN_ITERS: usize = 16;
    let start = Instant::now();
    for _ in 0..SPAWN_ITERS {
        std::thread::scope(|s| {
            s.spawn(|| std::hint::black_box(0u64));
        });
    }
    let spawn_s = start.elapsed().as_secs_f64() / SPAWN_ITERS as f64;

    // representative per-row leaf work: the fused chunked-mask predicate
    // selection over a typed column followed by a per-column gather (see
    // `beas_relal::kernel`) — the exact columnar scan path the shards run.
    // Recalibrated at startup so the threshold tracks the kernel cost of
    // this binary on this machine, not a hard-coded scalar-loop estimate.
    const ROWS: usize = 8 * 1024;
    const EVAL_ITERS: usize = 8;
    let rel = Relation::from_columns(
        vec!["v".to_string()],
        vec![Column::Int(
            (0..ROWS as i64).map(|i| (i * 37) % 1024).collect(),
        )],
    )
    .expect("single aligned column");
    let pred = Predicate::all(vec![PredicateAtom::col_cmp_const(
        "v",
        CompareOp::Lt,
        512i64,
    )]);
    let start = Instant::now();
    for _ in 0..EVAL_ITERS {
        let filtered = pred.filter(&rel).expect("column resolves");
        std::hint::black_box(filtered.len());
    }
    let per_row_s = start.elapsed().as_secs_f64() / (EVAL_ITERS * ROWS) as f64;

    // engage threads once a shard's work amortizes ~4 spawns; clamp away
    // both degenerate timer readings and pathological calibrations
    let rows = (4.0 * spawn_s / per_row_s.max(1e-12)).ceil() as usize;
    rows.clamp(16, 16 * 1024)
}

/// Execution knobs: the enforced budget and the shard parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Tuple budget to enforce (`None` disables enforcement; used by tests
    /// and by the exact-answer path).
    pub budget: Option<usize>,
    /// Number of threads for sharded leaf evaluation (1 = sequential). The
    /// answers are identical for every value — see the module docs.
    pub threads: usize,
    /// Minimum number of rows in the sharded atom relation before a leaf is
    /// evaluated in parallel (defaults to [`DEFAULT_MIN_SHARD_ROWS`]).
    /// Thread count and threshold never affect answers, only wall-clock.
    pub min_shard_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            budget: None,
            threads: 1,
            min_shard_rows: DEFAULT_MIN_SHARD_ROWS,
        }
    }
}

impl ExecOptions {
    /// Options enforcing `budget` on a single thread.
    pub fn budgeted(budget: usize) -> Self {
        ExecOptions {
            budget: Some(budget),
            ..ExecOptions::default()
        }
    }

    /// Sets the shard parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the minimum sharded-atom size for parallel leaf evaluation
    /// (clamped to at least 1).
    pub fn with_min_shard_rows(mut self, rows: usize) -> Self {
        self.min_shard_rows = rows.max(1);
        self
    }
}

/// One cached fetched fragment of an [`ExecState`]: the output of
/// `fetch(X ∈ keys, family, ψ_level)`. Identified by the full fetch identity
/// (family, level and the exact key list, compared for equality — no hash
/// collisions can alias two different fetches).
#[derive(Debug, Clone)]
struct FragmentEntry {
    family: beas_access::FamilyId,
    level: usize,
    keys: Vec<Vec<Value>>,
    /// `Arc`-shared so a state hit hands the fragment back without copying
    /// its column data.
    rel: Arc<Relation>,
}

/// One cached SPC leaf result: the canonicalised output of `evaluate_leaf`
/// for a leaf whose completion nodes resolved to exactly these fragments.
#[derive(Debug, Clone)]
struct LeafEntry {
    leaf: usize,
    /// Indices into [`ExecState::fragments`] of the leaf's completion nodes,
    /// in atom order.
    atom_fragments: Vec<usize>,
    rel: Arc<Relation>,
    out_res: Vec<f64>,
    exact: bool,
}

/// Resumable execution state shared by the steps of a refinement session
/// (see the module docs): the fetched fragment set plus partial SPC leaf
/// results. Only meaningful across plans *for the same query against the
/// same catalog snapshot* — [`AnswerSession`](crate::AnswerSession) pins one
/// [`EngineSnapshot`](crate::EngineSnapshot) for its whole lifetime to
/// guarantee that.
#[derive(Debug, Default)]
pub struct ExecState {
    fragments: Vec<FragmentEntry>,
    leaves: Vec<LeafEntry>,
    /// Tuples actually materialized (not served from the fragment set) over
    /// the state's lifetime.
    new_tuples: usize,
    /// Tuples served from the fragment set over the state's lifetime.
    reused_tuples: usize,
}

impl ExecState {
    /// A fresh state (no fragments, no partial results).
    pub fn new() -> Self {
        ExecState::default()
    }

    /// Cumulative tuples actually fetched (materialized) through this state —
    /// the real access cost of a refinement session so far. Tuples served
    /// from the fragment set are *charged* against each step's budget but not
    /// re-counted here.
    pub fn fetched_tuples(&self) -> usize {
        self.new_tuples
    }

    /// Cumulative tuples served from the fragment set instead of being
    /// re-materialized.
    pub fn reused_tuples(&self) -> usize {
        self.reused_tuples
    }

    /// Number of distinct fragments held.
    pub fn fragments(&self) -> usize {
        self.fragments.len()
    }

    /// Number of cached SPC leaf results held.
    pub fn cached_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Tuples currently held across the fragment set and cached leaf results
    /// — the memory-pressure signal an idle-eviction sweep weighs a session
    /// by.
    pub fn held_tuples(&self) -> usize {
        self.fragments.iter().map(|f| f.rel.len()).sum::<usize>()
            + self.leaves.iter().map(|l| l.rel.len()).sum::<usize>()
    }

    /// Drops every fragment and cached leaf result, keeping the lifetime
    /// counters. A shard node evicting an idle remote session calls this (via
    /// dropping the session) — exposed so holders can also shed memory while
    /// keeping the state allocated.
    pub fn clear(&mut self) {
        self.fragments.clear();
        self.leaves.clear();
    }

    /// Serves one fetch from the fragment set when its exact identity was
    /// fetched before (billing the budget like a fresh fetch), materializing
    /// and recording it otherwise. Returns the fragment index and the
    /// relation. This is the local fragment source of
    /// [`stream_plan_fragments`]; a cluster shard node drives it directly to
    /// serve fetch requests with per-session reuse.
    pub fn fetch_or_reuse(
        &mut self,
        session: &mut FetchSession<'_>,
        family: beas_access::FamilyId,
        level: usize,
        keys: Vec<Vec<Value>>,
    ) -> Result<(usize, Arc<Relation>)> {
        if let Some(i) = self
            .fragments
            .iter()
            .position(|f| f.family == family && f.level == level && f.keys == keys)
        {
            session.record_cached(self.fragments[i].rel.len())?;
            self.reused_tuples += self.fragments[i].rel.len();
            return Ok((i, Arc::clone(&self.fragments[i].rel)));
        }
        let rel = Arc::new(session.fetch(family, level, &keys)?);
        self.new_tuples += rel.len();
        self.fragments.push(FragmentEntry {
            family,
            level,
            keys,
            rel: Arc::clone(&rel),
        });
        Ok((self.fragments.len() - 1, rel))
    }

    /// Registers a fragment that was materialized *elsewhere* (e.g. fetched
    /// by a peer node of a cluster and shipped over the wire), returning its
    /// fragment index. Deduplicates on the full fetch identity like
    /// [`ExecState::fetch_or_reuse`], but performs no budget billing — the
    /// node that materialized the fragment already accounted for it.
    pub fn adopt_fragment(
        &mut self,
        family: beas_access::FamilyId,
        level: usize,
        keys: Vec<Vec<Value>>,
        rel: Arc<Relation>,
    ) -> usize {
        if let Some(i) = self
            .fragments
            .iter()
            .position(|f| f.family == family && f.level == level && f.keys == keys)
        {
            return i;
        }
        self.fragments.push(FragmentEntry {
            family,
            level,
            keys,
            rel,
        });
        self.fragments.len() - 1
    }

    /// The cached result of leaf `leaf` over exactly these completion
    /// fragments, if present.
    fn leaf(&self, leaf: usize, atom_fragments: &[usize]) -> Option<&LeafEntry> {
        self.leaves
            .iter()
            .find(|e| e.leaf == leaf && e.atom_fragments == atom_fragments)
    }
}

/// The per-node fragment inputs of a plan execution: one slot per node of the
/// fetching plan `ξ_F`, holding the node's output relation and its fragment
/// identity in the driving [`ExecState`]. Filled by [`stream_plan_fragments`]
/// locally, or slot by slot (via [`PlanFragments::set`]) by a coordinator
/// gathering fragments from cluster shards — downstream leaf evaluation
/// ([`evaluate_plan_leaf`]) cannot tell the difference.
#[derive(Debug, Clone)]
pub struct PlanFragments {
    outputs: Vec<Option<Arc<Relation>>>,
    fragments: Vec<Option<usize>>,
}

impl PlanFragments {
    /// Empty fragment slots for every node of `plan`'s fetching plan.
    pub fn for_plan(plan: &BoundedPlan) -> Self {
        let n = plan.fetch.nodes.len();
        PlanFragments {
            outputs: vec![None; n],
            fragments: vec![None; n],
        }
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// `true` when the plan has no fetch nodes.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Fills node `node`'s slot with its fragment identity and output.
    pub fn set(&mut self, node: usize, fragment: usize, rel: Arc<Relation>) {
        self.outputs[node] = Some(rel);
        self.fragments[node] = Some(fragment);
    }

    /// The output relation of node `node`, if streamed already.
    pub fn output(&self, node: usize) -> Option<&Arc<Relation>> {
        self.outputs.get(node).and_then(|o| o.as_ref())
    }

    /// The fragment identity of node `node`, if streamed already.
    pub fn fragment(&self, node: usize) -> Option<usize> {
        self.fragments.get(node).and_then(|f| *f)
    }

    fn require_output(&self, node: usize) -> Result<&Arc<Relation>> {
        self.output(node)
            .ok_or_else(|| BeasError::Planning(format!("missing output of fetch node {node}")))
    }
}

/// The keys fetch node `node` asks its template family for, derived from the
/// already-streamed fragments: the constant key for root nodes, one key per
/// input row (via the node's [`KeySource`]s) otherwise. This is the planner's
/// key-provenance contract made executable — a cluster coordinator uses it to
/// compute the key list it sends to the shard owning the node's family.
pub fn node_keys(node: &FetchNode, fragments: &PlanFragments) -> Result<Vec<Vec<Value>>> {
    match node.input_node {
        None => {
            let key: Vec<Value> = node
                .key_sources
                .iter()
                .map(|k| match k {
                    KeySource::Const(v) => Ok(v.clone()),
                    KeySource::Column(c) => Err(BeasError::Planning(format!(
                        "fetch node {} references column {c} but has no input node",
                        node.id
                    ))),
                })
                .collect::<Result<_>>()?;
            Ok(vec![key])
        }
        Some(input) => {
            let input_rel = fragments.require_output(input)?;
            let mut col_idx: Vec<Option<usize>> = Vec::with_capacity(node.key_sources.len());
            for k in &node.key_sources {
                match k {
                    KeySource::Const(_) => col_idx.push(None),
                    KeySource::Column(c) => {
                        col_idx.push(Some(input_rel.column_index(c).map_err(BeasError::from)?))
                    }
                }
            }
            let mut keys = Vec::with_capacity(input_rel.len());
            for row in 0..input_rel.len() {
                let key: Vec<Value> = node
                    .key_sources
                    .iter()
                    .zip(col_idx.iter())
                    .map(|(k, idx)| match (k, idx) {
                        (KeySource::Const(v), _) => v.clone(),
                        (KeySource::Column(_), Some(i)) => input_rel.value_at(row, *i),
                        (KeySource::Column(_), None) => unreachable!(),
                    })
                    .collect();
                keys.push(key);
            }
            Ok(keys)
        }
    }
}

/// Streams every fragment of `plan`'s fetching plan from the local catalog
/// behind `session`, reusing (and re-billing) fragments already held by
/// `state`. The local source of the fragment-stream phases (see the module
/// docs).
pub fn stream_plan_fragments(
    plan: &BoundedPlan,
    session: &mut FetchSession<'_>,
    state: &mut ExecState,
) -> Result<PlanFragments> {
    let mut fragments = PlanFragments::for_plan(plan);
    for node in &plan.fetch.nodes {
        let keys = node_keys(node, &fragments)?;
        let (fragment, fetched) = state.fetch_or_reuse(session, node.family, node.level, keys)?;
        fragments.set(node.id, fragment, fetched);
    }
    Ok(fragments)
}

/// The canonicalised result of one SPC leaf: its relation (sorted when the
/// query aggregates, so weighted float sums accumulate in a fixed order), the
/// resolution of each output column, and whether every needed position was
/// fetched exactly.
#[derive(Debug, Clone)]
pub struct LeafEval {
    /// The leaf's canonical result relation.
    pub rel: Arc<Relation>,
    /// Resolution of each output column under the plan.
    pub out_res: Vec<f64>,
    /// `true` when every needed position of the leaf is fetched exactly.
    pub exact: bool,
}

/// Evaluates SPC leaf `index` of `plan` over the fragments its completion
/// nodes resolved to, serving and feeding the leaf cache of `state` (keyed on
/// the fragment identities, so a leaf whose inputs did not change between
/// refinement steps is skipped entirely). Phase 2 of the fragment-stream
/// factoring; callable for any leaf whose atom-node slots are filled, which
/// is how a cluster shard evaluates its locally-owned leaves.
pub fn evaluate_plan_leaf(
    index: usize,
    plan: &BoundedPlan,
    catalog: &Catalog,
    fragments: &PlanFragments,
    options: &ExecOptions,
    state: &mut ExecState,
) -> Result<LeafEval> {
    let ra = plan.query.ra();
    let leaves = ra.spc_leaves();
    let leaf = *leaves
        .get(index)
        .ok_or_else(|| BeasError::Planning(format!("no SPC leaf {index} in the query")))?;
    let leaf_plan = plan
        .leaves
        .get(index)
        .ok_or_else(|| BeasError::Planning(format!("no leaf plan {index} in the bounded plan")))?;
    let want_weights = plan.query.is_aggregate();
    // the fragment identities of the leaf's completion nodes fully determine
    // its (canonicalised) result for a fixed query and catalog: the inputs
    // are those fragments and every relaxation tolerance derives from their
    // (family, level) pairs
    let atom_fragments: Vec<usize> = leaf_plan
        .atom_nodes
        .iter()
        .map(|&n| {
            fragments.fragment(n).ok_or_else(|| {
                BeasError::Planning(format!("leaf {index} needs unstreamed fetch node {n}"))
            })
        })
        .collect::<Result<_>>()?;
    if let Some(entry) = state.leaf(index, &atom_fragments) {
        return Ok(LeafEval {
            rel: Arc::clone(&entry.rel),
            out_res: entry.out_res.clone(),
            exact: entry.exact,
        });
    }
    let mut rel = evaluate_leaf(
        leaf,
        leaf_plan,
        plan,
        catalog,
        fragments,
        want_weights,
        options,
    )?;
    // canonical row order: makes the downstream composition (including the
    // accumulation order of weighted aggregate sums) independent of both
    // sharding and join order
    if want_weights {
        rel.sort_rows();
    }
    let out_res = output_resolutions(leaf, leaf_plan, plan, catalog)?;
    let exact = leaf_is_exact(leaf, leaf_plan, plan, catalog)?;
    let rel = Arc::new(rel);
    state.leaves.push(LeafEntry {
        leaf: index,
        atom_fragments,
        rel: Arc::clone(&rel),
        out_res: out_res.clone(),
        exact,
    });
    Ok(LeafEval {
        rel,
        out_res,
        exact,
    })
}

/// Combines canonical per-leaf results along the query's RA structure,
/// re-estimates η through the `d'` correction when a set difference was
/// fetched approximately, and applies the final aggregation. Phase 3 of the
/// fragment-stream factoring: the merge a cluster coordinator runs over leaf
/// results gathered from shards. Returns the answers and the final η.
pub fn compose_plan_answer(
    plan: &BoundedPlan,
    catalog: &Catalog,
    leaves: &[LeafEval],
) -> Result<(Relation, f64)> {
    let schema = &catalog.schema;
    let ra = plan.query.ra();
    let want_weights = plan.query.is_aggregate();
    if leaves.len() != plan.leaves.len() {
        return Err(BeasError::Planning(format!(
            "compose needs {} leaf results, got {}",
            plan.leaves.len(),
            leaves.len()
        )));
    }

    let indexed = index_leaves(ra, &mut 0);
    let output_kinds = ra.output_distances(schema)?;
    let ra_result = exec_indexed(
        &indexed,
        leaves,
        &output_kinds,
        want_weights,
        ra.output_columns().len(),
    )?;

    // final eta
    let mut eta = plan.eta;
    if has_approx_difference(&indexed, leaves) {
        // induce over the *indexed* tree so that leaf indices keep referring
        // to the original per-leaf results
        let induced = induce(&indexed);
        let s_hat = exec_indexed(
            &induced,
            leaves,
            &output_kinds,
            false,
            ra.output_columns().len(),
        )?;
        let ncols = ra.output_columns().len();
        let d_prime = max_min_distance(&s_hat, &ra_result, &output_kinds, ncols);
        let worst = plan.d_rel.max(d_prime + plan.d_cov);
        eta = if worst.is_infinite() {
            0.0
        } else {
            1.0 / (1.0 + worst)
        };
        // the planner's special cases (e.g. sum/count/avg aggregates without
        // an exact plan) declare no bound at all; keep that
        if plan.eta == 0.0 {
            eta = 0.0;
        }
    }

    // aggregation
    let answers = finalize_answers(plan, ra_result)?;
    Ok((answers, eta))
}

/// Applies the final projection/dedup (RA queries) or aggregation (aggregate
/// queries) to a composed RA result.
fn finalize_answers(plan: &BoundedPlan, ra_result: Relation) -> Result<Relation> {
    let ra = plan.query.ra();
    match &plan.query {
        BeasQuery::Ra(_) => {
            let mut rel = project_outputs(&ra_result, ra.output_columns().len());
            rel.columns = ra.output_columns();
            rel.dedup();
            Ok(rel)
        }
        BeasQuery::Aggregate(agg) => {
            let mut input = ra_result;
            // name the columns so the aggregate can address them
            let mut cols = ra.output_columns();
            if input.arity() == cols.len() + 1 {
                cols.push(WEIGHT_COLUMN.to_string());
            }
            input.columns = cols;
            let weight_col = if agg.agg.is_extremum() {
                None
            } else if input.columns.iter().any(|c| c == WEIGHT_COLUMN) {
                Some(WEIGHT_COLUMN.to_string())
            } else {
                None
            };
            let gq = GroupByQuery {
                input: RaExpr::scan("__unused", "__unused"),
                group_by: agg.group_by.clone(),
                agg: agg.agg,
                agg_col: agg.agg_col.clone(),
                out_name: agg.out_name.clone(),
                weight_col,
            };
            Ok(aggregate_relation(&input, &gq)?)
        }
    }
}

/// [`compose_plan_answer`] over a leaf-result slice with holes: the merge a
/// degrading cluster coordinator runs when some leaves were lost with their
/// shard (`DegradedPolicy::PartialAnswer`). With every slot present this is
/// exactly [`compose_plan_answer`]. Otherwise the RA tree is pruned to the
/// surviving leaves — a union with one lost side keeps the other, a
/// difference with a lost subtrahend keeps its positive side, a difference
/// with a lost positive side is dropped — and the composed answers carry
/// **η = 0**: with a fragment missing, the coverage distance of the lost
/// tuples is unbounded, so no positive accuracy bound is sound. The honest
/// contract for a partial answer is therefore "these tuples were really
/// computed from the surviving fragments, and any η ≥ 0 the healthy answer
/// reports also bounds them".
pub fn compose_plan_answer_partial(
    plan: &BoundedPlan,
    catalog: &Catalog,
    leaves: &[Option<LeafEval>],
) -> Result<(Relation, f64)> {
    if leaves.len() != plan.leaves.len() {
        return Err(BeasError::Planning(format!(
            "compose needs {} leaf results, got {}",
            plan.leaves.len(),
            leaves.len()
        )));
    }
    if leaves.iter().all(|l| l.is_some()) {
        let full: Vec<LeafEval> = leaves.iter().map(|l| l.clone().unwrap()).collect();
        return compose_plan_answer(plan, catalog, &full);
    }
    let ra = plan.query.ra();
    let present: Vec<bool> = leaves.iter().map(|l| l.is_some()).collect();
    let indexed = index_leaves(ra, &mut 0);
    let Some(pruned) = prune_indexed(&indexed, &present) else {
        // no leaf of the answer-bearing side survived: an empty partial answer
        return Ok((Relation::empty(plan.query.output_columns()), 0.0));
    };
    // compact the surviving leaves and remap the pruned tree onto them
    let mut remap = vec![usize::MAX; leaves.len()];
    let mut survivors = Vec::new();
    for (i, leaf) in leaves.iter().enumerate() {
        if let Some(leaf) = leaf {
            remap[i] = survivors.len();
            survivors.push(leaf.clone());
        }
    }
    let pruned = remap_indexed(&pruned, &remap);
    let want_weights = plan.query.is_aggregate();
    let output_kinds = ra.output_distances(&catalog.schema)?;
    let ra_result = exec_indexed(
        &pruned,
        &survivors,
        &output_kinds,
        want_weights,
        ra.output_columns().len(),
    )?;
    let answers = finalize_answers(plan, ra_result)?;
    Ok((answers, 0.0))
}

/// Restricts an indexed RA tree to the present leaves; `None` when nothing of
/// the subtree's answer-bearing structure survives.
fn prune_indexed(node: &IndexedRa, present: &[bool]) -> Option<IndexedRa> {
    match node {
        IndexedRa::Leaf(i) => present[*i].then_some(IndexedRa::Leaf(*i)),
        IndexedRa::Union(l, r) => match (prune_indexed(l, present), prune_indexed(r, present)) {
            (Some(a), Some(b)) => Some(IndexedRa::Union(Box::new(a), Box::new(b))),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        },
        IndexedRa::Difference(l, r) => {
            let left = prune_indexed(l, present)?;
            match prune_indexed(r, present) {
                Some(b) => Some(IndexedRa::Difference(Box::new(left), Box::new(b))),
                // lost subtrahend: keep the positive side; the extra tuples it
                // may retain are covered by the partial answer's η = 0
                None => Some(left),
            }
        }
    }
}

/// Rewrites leaf indices of a pruned tree through `remap`.
fn remap_indexed(node: &IndexedRa, remap: &[usize]) -> IndexedRa {
    match node {
        IndexedRa::Leaf(i) => IndexedRa::Leaf(remap[*i]),
        IndexedRa::Union(l, r) => IndexedRa::Union(
            Box::new(remap_indexed(l, remap)),
            Box::new(remap_indexed(r, remap)),
        ),
        IndexedRa::Difference(l, r) => IndexedRa::Difference(
            Box::new(remap_indexed(l, remap)),
            Box::new(remap_indexed(r, remap)),
        ),
    }
}

/// Executes `plan` against `catalog`, enforcing the plan's budget.
///
/// When the budget is smaller than one tuple per relation atom (a degenerate
/// α), the plan of last resort may estimate slightly more than the budget; in
/// that case its own tariff is enforced instead, so execution still accesses
/// the minimum the query needs.
pub fn execute_plan(plan: &BoundedPlan, catalog: &Catalog) -> Result<ExecutionOutcome> {
    execute_plan_with_options(
        plan,
        catalog,
        ExecOptions::budgeted(plan.budget.max(plan.tariff)),
    )
}

/// Executes `plan` under the budget a [`ResourceSpec`] resolves to for the
/// catalog — e.g. re-running a cached plan under a different (larger) spec
/// than it was generated for.
pub fn execute_plan_with_spec(
    plan: &BoundedPlan,
    catalog: &Catalog,
    spec: ResourceSpec,
) -> Result<ExecutionOutcome> {
    let budget = catalog.budget(&spec)?;
    execute_plan_with_options(
        plan,
        catalog,
        ExecOptions::budgeted(budget.max(plan.tariff)),
    )
}

/// Executes `plan` with an explicit budget (`None` disables enforcement; used
/// by tests and by the exact-answer path).
pub fn execute_plan_with_budget(
    plan: &BoundedPlan,
    catalog: &Catalog,
    budget: Option<usize>,
) -> Result<ExecutionOutcome> {
    execute_plan_with_options(
        plan,
        catalog,
        ExecOptions {
            budget,
            ..ExecOptions::default()
        },
    )
}

/// Executes `plan` with explicit [`ExecOptions`] (budget enforcement and
/// shard parallelism). This is the path the engine drives with its configured
/// thread count. Equivalent to [`execute_plan_with_state`] over a throwaway
/// fresh [`ExecState`].
pub fn execute_plan_with_options(
    plan: &BoundedPlan,
    catalog: &Catalog,
    options: ExecOptions,
) -> Result<ExecutionOutcome> {
    execute_plan_with_state(plan, catalog, options, &mut ExecState::new())
}

/// Executes `plan` like [`execute_plan_with_options`], threading a resumable
/// [`ExecState`] through the fetch and leaf-evaluation phases: fragments and
/// leaf results already in the state are reused (and billed against the
/// budget exactly like fresh fetches), new ones are recorded into it for the
/// next step of a refinement session.
///
/// The state must only carry over between plans **for the same query against
/// the same catalog snapshot** (an [`AnswerSession`](crate::AnswerSession)
/// guarantees this); under that contract the outcome — answers, η, float
/// aggregate sums and the `accessed` accounting — is bit-for-bit identical to
/// a fresh execution.
pub fn execute_plan_with_state(
    plan: &BoundedPlan,
    catalog: &Catalog,
    options: ExecOptions,
    state: &mut ExecState,
) -> Result<ExecutionOutcome> {
    let budget = options.budget;
    let mut session = FetchSession::new(catalog, budget);

    // phase 1: stream every fragment of ξ_F from the local catalog
    let fragments = stream_plan_fragments(plan, &mut session, state)?;

    // phase 2: canonical per-leaf results
    let mut leaves: Vec<LeafEval> = Vec::with_capacity(plan.leaves.len());
    for i in 0..plan.leaves.len() {
        leaves.push(evaluate_plan_leaf(
            i, plan, catalog, &fragments, &options, state,
        )?);
    }

    // phase 3: RA composition, d' correction, aggregation
    let (answers, eta) = compose_plan_answer(plan, catalog, &leaves)?;

    Ok(ExecutionOutcome {
        answers,
        eta,
        accessed: session.accessed(),
        fetches: session.counter().fetches,
    })
}

// --------------------------------------------------------------------------
// leaf evaluation
// --------------------------------------------------------------------------

/// Evaluates one SPC leaf over its fetched atom relations, applying the
/// targeted relaxation of selection conditions (Sec. 5, "Evaluation plan ξ_E")
/// — across [`ExecOptions::threads`] row shards of the largest atom relation
/// when the input is big enough (see the module docs).
#[allow(clippy::too_many_arguments)]
fn evaluate_leaf(
    leaf: &SpcQuery,
    leaf_plan: &LeafPlan,
    plan: &BoundedPlan,
    catalog: &Catalog,
    fragments: &PlanFragments,
    want_weights: bool,
    options: &ExecOptions,
) -> Result<Relation> {
    let schema = &catalog.schema;
    let res = |pos: beas_relal::Position| -> Result<f64> {
        leaf_plan.position_resolution(&plan.fetch, catalog, schema, leaf, pos)
    };

    // overlay of fetched atom relations
    let mut overlay: HashMap<String, Relation> = HashMap::new();
    let mut expr: Option<RaExpr> = None;
    for (ai, atom) in leaf.atoms.iter().enumerate() {
        let node_id = leaf_plan.atom_nodes[ai];
        let mut rel = Relation::clone(fragments.require_output(node_id)?);
        // pre-qualify with the atom alias so the evaluator's scans borrow the
        // overlay relation instead of re-copying it per evaluation
        beas_relal::qualify_relation(&mut rel, &atom.alias);
        let name = format!("__atom_{}_{}", leaf_plan.leaf, ai);
        overlay.insert(name.clone(), rel);
        let scan = RaExpr::scan(name, atom.alias.clone());
        expr = Some(match expr {
            None => scan,
            Some(e) => e.product(scan),
        });
    }
    let mut expr = expr.ok_or_else(|| BeasError::Planning("leaf without atoms".to_string()))?;

    // relaxed selection conditions
    let mut atoms_pred: Vec<PredicateAtom> = Vec::new();
    for (ai, terms) in leaf.terms.iter().enumerate() {
        for (pi, term) in terms.iter().enumerate() {
            if let beas_relal::Term::Const(v) = term {
                let col = leaf.position_column_named(schema, (ai, pi))?;
                let dk = leaf.position_distance(schema, (ai, pi))?;
                atoms_pred.push(PredicateAtom::ColConst {
                    col,
                    op: CompareOp::Eq,
                    value: v.clone(),
                    distance: dk,
                    tol: res((ai, pi))?,
                });
            }
        }
    }
    for positions in leaf.var_positions().values() {
        if positions.len() > 1 {
            let first_col = leaf.position_column_named(schema, positions[0])?;
            let dk = leaf.position_distance(schema, positions[0])?;
            let first_res = res(positions[0])?;
            for &p in &positions[1..] {
                atoms_pred.push(PredicateAtom::ColCol {
                    left: first_col.clone(),
                    op: CompareOp::Eq,
                    right: leaf.position_column_named(schema, p)?,
                    distance: dk,
                    tol: first_res + res(p)?,
                });
            }
        }
    }
    for sel in &leaf.selections {
        match sel {
            SelCond::VarConst { var, op, value } => {
                let pos = leaf
                    .var_first_position(*var)
                    .ok_or_else(|| BeasError::Planning(format!("unbound variable {var}")))?;
                atoms_pred.push(PredicateAtom::ColConst {
                    col: leaf.position_column_named(schema, pos)?,
                    op: *op,
                    value: value.clone(),
                    distance: leaf.position_distance(schema, pos)?,
                    tol: res(pos)?,
                });
            }
            SelCond::VarVar { left, op, right } => {
                let lpos = leaf
                    .var_first_position(*left)
                    .ok_or_else(|| BeasError::Planning(format!("unbound variable {left}")))?;
                let rpos = leaf
                    .var_first_position(*right)
                    .ok_or_else(|| BeasError::Planning(format!("unbound variable {right}")))?;
                atoms_pred.push(PredicateAtom::ColCol {
                    left: leaf.position_column_named(schema, lpos)?,
                    op: *op,
                    right: leaf.position_column_named(schema, rpos)?,
                    distance: leaf.position_distance(schema, lpos)?,
                    tol: res(lpos)? + res(rpos)?,
                });
            }
        }
    }
    if !atoms_pred.is_empty() {
        expr = expr.select(Predicate::all(atoms_pred));
    }

    // projection: output columns (+ per-atom weights when aggregating)
    let mut proj: Vec<(String, String)> = Vec::new();
    for out in &leaf.output {
        let pos = leaf
            .var_first_position(out.var)
            .ok_or_else(|| BeasError::Planning(format!("unbound output variable {}", out.var)))?;
        proj.push((out.name.clone(), leaf.position_column_named(schema, pos)?));
    }
    if want_weights {
        for (ai, atom) in leaf.atoms.iter().enumerate() {
            proj.push((
                format!("__w{ai}"),
                format!("{}.{}", atom.alias, WEIGHT_COLUMN),
            ));
        }
    }
    let expr = expr.project(proj);

    let rel = eval_leaf_expr(&expr, &mut overlay, want_weights, options)?;
    if want_weights {
        Ok(combine_weights(rel, leaf.output.len()))
    } else {
        Ok(rel)
    }
}

/// Evaluates a leaf expression over its fetched overlay, sharding the largest
/// atom relation across [`ExecOptions::threads`] scoped threads when it is
/// big enough. The overlay is mutable so the shard target's columns can be
/// *moved* into the shards: each shard takes a contiguous range of every
/// typed column vector (string dictionaries are `Arc`-shared, not copied).
fn eval_leaf_expr(
    expr: &RaExpr,
    overlay: &mut HashMap<String, Relation>,
    want_weights: bool,
    options: &ExecOptions,
) -> Result<Relation> {
    // the shard target: the atom relation with the most rows
    let shard_target = overlay
        .iter()
        .max_by(|a, b| a.1.len().cmp(&b.1.len()).then(a.0.cmp(b.0)))
        .map(|(name, rel)| (name.clone(), rel.len()));
    let (shard_name, rows) = match shard_target {
        Some((name, rows)) => (name, rows),
        None => return eval_any(expr, &*overlay, want_weights),
    };
    let threads = options
        .threads
        .max(1)
        .min(rows / options.min_shard_rows.max(1) + 1);
    if threads <= 1 || rows < 2 {
        return eval_any(expr, &*overlay, want_weights);
    }

    // move the target out of the overlay and split it per column, range by
    // range; the shard provider serves the ranges back under the same name
    let mut remaining = overlay
        .remove(&shard_name)
        .expect("shard target chosen from the overlay");
    // align shard boundaries to the kernel mask-word stride so every shard
    // but the last evaluates full 64-row mask words (answers are identical
    // for any split; alignment only avoids partial-word tails mid-relation)
    let chunk_size = rows
        .div_ceil(threads)
        .next_multiple_of(beas_relal::kernel::MASK_CHUNK);
    debug_assert_eq!(
        chunk_size % beas_relal::kernel::LANE_WIDTH,
        0,
        "shard stride must be divisible by the kernel lane width"
    );
    let mut shards: Vec<Relation> = Vec::with_capacity(threads);
    while !remaining.is_empty() {
        let rest = remaining.split_off(remaining.len().min(chunk_size));
        shards.push(std::mem::replace(&mut remaining, rest));
    }
    let overlay = &*overlay;

    let results: Vec<Result<Relation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let shard_name = shard_name.as_str();
                scope.spawn(move || {
                    let provider = ShardProvider {
                        base: overlay,
                        name: shard_name,
                        shard,
                    };
                    eval_any(expr, &provider, want_weights)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard evaluation panicked"))
            .collect()
    });

    // deterministic merge: concatenate in shard order (the hot path asserts
    // shape compatibility in debug builds only), then canonicalise the set
    // path so the result equals the unsharded evaluation exactly
    let mut merged: Option<Relation> = None;
    for result in results {
        let shard_rel = result?;
        match &mut merged {
            None => merged = Some(shard_rel),
            Some(acc) => acc.append(shard_rel),
        }
    }
    let mut merged = merged.expect("at least one shard");
    if !want_weights {
        merged.dedup();
    }
    Ok(merged)
}

/// Bag/set dispatch shared by the sharded and unsharded paths.
fn eval_any<P: beas_relal::RelationProvider>(
    expr: &RaExpr,
    provider: &P,
    bag: bool,
) -> Result<Relation> {
    if bag {
        Ok(eval_bag(expr, provider)?)
    } else {
        Ok(eval_set(expr, provider)?)
    }
}

/// A provider that serves one atom's rows from a shard and everything else
/// from the shared overlay.
struct ShardProvider<'a> {
    base: &'a HashMap<String, Relation>,
    name: &'a str,
    shard: Relation,
}

impl beas_relal::RelationProvider for ShardProvider<'_> {
    fn provide(&self, name: &str) -> Option<&Relation> {
        if name == self.name {
            Some(&self.shard)
        } else {
            self.base.get(name)
        }
    }
}

/// Replaces the per-atom weight columns by a single combined weight column
/// (the product of the per-atom representative counts). Columnar: the output
/// columns are moved over unchanged and the combined weights are computed
/// into one fresh `f64` column.
fn combine_weights(rel: Relation, output_cols: usize) -> Relation {
    let n = rel.len();
    let mut weights: Vec<f64> = Vec::with_capacity(n);
    for i in 0..n {
        weights.push(
            rel.cols()[output_cols..]
                .iter()
                .map(|c| c.f64_at(i).unwrap_or(1.0).max(0.0))
                .product(),
        );
    }
    let (names, cols) = rel.into_parts();
    let out_names: Vec<String> = names[..output_cols]
        .iter()
        .cloned()
        .chain(std::iter::once(WEIGHT_COLUMN.to_string()))
        .collect();
    let mut out_cols: Vec<beas_relal::Column> = cols.into_iter().take(output_cols).collect();
    out_cols.push(beas_relal::Column::Float(weights));
    Relation::from_columns(out_names, out_cols).expect("weight column matches row count")
}

/// The resolution of each output column of a leaf under the plan.
fn output_resolutions(
    leaf: &SpcQuery,
    leaf_plan: &LeafPlan,
    plan: &BoundedPlan,
    catalog: &Catalog,
) -> Result<Vec<f64>> {
    let schema = &catalog.schema;
    leaf.output
        .iter()
        .map(|out| {
            let pos = leaf
                .var_first_position(out.var)
                .ok_or_else(|| BeasError::Planning(format!("unbound output var {}", out.var)))?;
            leaf_plan.position_resolution(&plan.fetch, catalog, schema, leaf, pos)
        })
        .collect()
}

/// `true` when every needed position of the leaf is fetched exactly.
fn leaf_is_exact(
    leaf: &SpcQuery,
    leaf_plan: &LeafPlan,
    plan: &BoundedPlan,
    catalog: &Catalog,
) -> Result<bool> {
    let schema = &catalog.schema;
    let needed = crate::plan::needed_positions(leaf);
    for (ai, positions) in needed.iter().enumerate() {
        for &pi in positions {
            let r = leaf_plan.position_resolution(&plan.fetch, catalog, schema, leaf, (ai, pi))?;
            if r > 0.0 {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

// --------------------------------------------------------------------------
// RA composition
// --------------------------------------------------------------------------

/// An [`RaQuery`] with its SPC leaves replaced by their global index.
#[derive(Debug, Clone)]
enum IndexedRa {
    Leaf(usize),
    Union(Box<IndexedRa>, Box<IndexedRa>),
    Difference(Box<IndexedRa>, Box<IndexedRa>),
}

fn index_leaves(ra: &RaQuery, next: &mut usize) -> IndexedRa {
    match ra {
        RaQuery::Spc(_) => {
            let i = *next;
            *next += 1;
            IndexedRa::Leaf(i)
        }
        RaQuery::Union(l, r) => {
            let li = index_leaves(l, next);
            let ri = index_leaves(r, next);
            IndexedRa::Union(Box::new(li), Box::new(ri))
        }
        RaQuery::Difference(l, r) => {
            let li = index_leaves(l, next);
            let ri = index_leaves(r, next);
            IndexedRa::Difference(Box::new(li), Box::new(ri))
        }
    }
}

/// Evaluates the indexed RA tree over the per-leaf results.
fn exec_indexed(
    node: &IndexedRa,
    leaves: &[LeafEval],
    kinds: &[beas_relal::DistanceKind],
    want_weights: bool,
    ncols: usize,
) -> Result<Relation> {
    match node {
        IndexedRa::Leaf(i) => Ok(Relation::clone(&leaves[*i].rel)),
        IndexedRa::Union(l, r) => {
            let mut a = exec_indexed(l, leaves, kinds, want_weights, ncols)?;
            let b = exec_indexed(r, leaves, kinds, want_weights, ncols)?;
            a.append(b);
            if !want_weights {
                a.dedup();
            }
            Ok(a)
        }
        IndexedRa::Difference(l, r) => {
            let a = exec_indexed(l, leaves, kinds, want_weights, ncols)?;
            let right_exact = subtree_leaves(r).iter().all(|&i| leaves[i].exact);
            if right_exact {
                // exact set difference on the output columns
                let b = exec_indexed(r, leaves, kinds, false, ncols)?;
                let bcols = ncols.min(b.arity());
                let remove: std::collections::HashSet<Vec<Value>> = (0..b.len())
                    .map(|i| (0..bcols).map(|j| b.value_at(i, j)).collect())
                    .collect();
                let acols = ncols.min(a.arity());
                let keep: Vec<usize> = (0..a.len())
                    .filter(|&i| {
                        let prefix: Vec<Value> = (0..acols).map(|j| a.value_at(i, j)).collect();
                        !remove.contains(&prefix)
                    })
                    .collect();
                Ok(a.take_rows(&keep))
            } else {
                // dangerous-distance exclusion (Sec. 6): drop answers of the
                // positive side that are within the combined resolution of an
                // answer to the maximal induced negated query
                let induced = induce(r);
                let b_hat = exec_indexed(&induced, leaves, kinds, false, ncols)?;
                let delta = dangerous_distances(l, r, leaves, ncols);
                let neg_rows = b_hat.to_rows();
                let keep: Vec<usize> = (0..a.len())
                    .filter(|&i| {
                        let row: Vec<Value> = (0..ncols).map(|j| a.value_at(i, j)).collect();
                        !neg_rows.iter().any(|neg| {
                            (0..ncols)
                                .all(|j| kinds[j].distance(&row[j], &neg[j]) <= delta[j] + 1e-12)
                        })
                    })
                    .collect();
                Ok(a.take_rows(&keep))
            }
        }
    }
}

/// The maximal induced query of an indexed subtree (drop negated parts).
fn induce(node: &IndexedRa) -> IndexedRa {
    match node {
        IndexedRa::Leaf(i) => IndexedRa::Leaf(*i),
        IndexedRa::Union(l, r) => IndexedRa::Union(Box::new(induce(l)), Box::new(induce(r))),
        IndexedRa::Difference(l, _) => induce(l),
    }
}

/// All leaf indices of an indexed subtree.
fn subtree_leaves(node: &IndexedRa) -> Vec<usize> {
    match node {
        IndexedRa::Leaf(i) => vec![*i],
        IndexedRa::Union(l, r) | IndexedRa::Difference(l, r) => {
            let mut v = subtree_leaves(l);
            v.extend(subtree_leaves(r));
            v
        }
    }
}

/// Per-output-column dangerous distance δ(A): the combined worst resolution of
/// the positive side and of the (induced) negated side.
fn dangerous_distances(
    left: &IndexedRa,
    right: &IndexedRa,
    leaves: &[LeafEval],
    ncols: usize,
) -> Vec<f64> {
    let mut delta = vec![0.0f64; ncols];
    for &i in &subtree_leaves(left) {
        for (j, d) in delta.iter_mut().enumerate() {
            *d = d.max(leaves[i].out_res.get(j).copied().unwrap_or(0.0));
        }
    }
    let mut right_part = vec![0.0f64; ncols];
    for &i in &subtree_leaves(&induce(right)) {
        for (j, r) in right_part.iter_mut().enumerate() {
            *r = r.max(leaves[i].out_res.get(j).copied().unwrap_or(0.0));
        }
    }
    for (d, r) in delta.iter_mut().zip(&right_part) {
        *d += r;
    }
    delta
}

/// `max_{t ∈ from} min_{s ∈ to} d(s, t)` on the first `ncols` columns.
fn max_min_distance(
    from: &Relation,
    to: &Relation,
    kinds: &[beas_relal::DistanceKind],
    ncols: usize,
) -> f64 {
    if from.is_empty() {
        return 0.0;
    }
    if to.is_empty() {
        return f64::INFINITY;
    }
    let to_rows = to.to_rows();
    let mut worst: f64 = 0.0;
    for t in from.rows() {
        let best = to_rows
            .iter()
            .map(|s| {
                (0..ncols)
                    .map(|j| kinds[j].distance(&s[j], &t[j]))
                    .fold(0.0f64, f64::max)
            })
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(best);
    }
    worst
}

/// Keeps only the first `ncols` columns of a relation — a columnar prefix
/// selection (whole column clones, no per-row copying).
fn project_outputs(rel: &Relation, ncols: usize) -> Relation {
    let n = ncols.min(rel.arity());
    let idx: Vec<usize> = (0..n).collect();
    rel.select_columns(&idx, rel.columns[..n].to_vec())
}

/// Whether the indexed tree contains a difference whose negated side was
/// fetched approximately (requiring the `d'` correction of Fig. 5).
fn has_approx_difference(node: &IndexedRa, leaves: &[LeafEval]) -> bool {
    match node {
        IndexedRa::Leaf(_) => false,
        IndexedRa::Union(l, r) => {
            has_approx_difference(l, leaves) || has_approx_difference(r, leaves)
        }
        IndexedRa::Difference(l, r) => {
            let right_approx = subtree_leaves(r).iter().any(|&i| !leaves[i].exact);
            right_approx || has_approx_difference(l, leaves) || has_approx_difference(r, leaves)
        }
    }
}
