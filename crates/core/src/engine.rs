//! The BEAS framework facade (Fig. 2): offline catalog construction and
//! maintenance, online resource-bounded query answering.
//!
//! ```text
//!              ┌─ offline ─────────────────────────────┐
//!   database ─▶│ C1 build indices I_A for access schema│
//!              │ C2 maintain I_A under updates         │
//!              └───────────────────────────────────────┘
//!              ┌─ online ──────────────────────────────┐
//!   (Q, α)  ──▶│ C3 generate α-bounded plan ξ_α, bound η│──▶ (ξ_α(D), η)
//!              │ C4 execute ξ_α, accessing ≤ α·|D|     │
//!              └───────────────────────────────────────┘
//! ```

use beas_access::{build_constraint, build_extended, AtOptions, Catalog, FamilyId};
use beas_relal::{Database, Relation};

use crate::error::Result;
use crate::executor::{execute_plan, ExecutionOutcome};
use crate::planner::{BoundedPlan, Planner};
use crate::query::BeasQuery;

/// A declarative description of an access constraint to register with the
/// engine (the `R(X → Y, N, 0)` constraints of Sec. 2.1); the engine derives
/// the extended multi-resolution templates `R(X∪Y → Z, 2^i, d̄_i)` from it, as
/// in the experimental setup of Sec. 8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintSpec {
    /// Relation name.
    pub relation: String,
    /// The X attributes.
    pub x: Vec<String>,
    /// The Y attributes.
    pub y: Vec<String>,
    /// Whether to also build the derived extended template on the remaining
    /// attributes.
    pub extend: bool,
}

impl ConstraintSpec {
    /// A constraint `relation(x → y)` that also derives the extended template.
    pub fn new(relation: &str, x: &[&str], y: &[&str]) -> Self {
        ConstraintSpec {
            relation: relation.to_string(),
            x: x.iter().map(|s| s.to_string()).collect(),
            y: y.iter().map(|s| s.to_string()).collect(),
            extend: true,
        }
    }

    /// Disables the derived extended template.
    pub fn without_extension(mut self) -> Self {
        self.extend = false;
        self
    }
}

/// The answer returned by the engine: approximate (or exact) answers plus the
/// deterministic accuracy lower bound and the access accounting.
#[derive(Debug, Clone)]
pub struct BeasAnswer {
    /// The answers `ξ_α(D)`.
    pub answers: Relation,
    /// The accuracy lower bound `η`.
    pub eta: f64,
    /// Whether the answers are exact (`Q(D)`).
    pub exact: bool,
    /// Tuples accessed during execution (≤ `α·|D|`).
    pub accessed: usize,
    /// The estimated tariff of the plan.
    pub planned_tariff: usize,
    /// The tuple budget the plan complied with.
    pub budget: usize,
}

/// The BEAS engine: owns the access-schema catalog built over a database and
/// answers queries under a resource ratio.
#[derive(Debug)]
pub struct Beas {
    catalog: Catalog,
}

impl Beas {
    /// Offline component: builds the canonical `A_t` catalog for the database
    /// and registers the given access constraints (plus their derived extended
    /// templates).
    pub fn build(db: &Database, constraints: &[ConstraintSpec]) -> Result<Self> {
        Self::build_with_options(db, constraints, &AtOptions::default())
    }

    /// [`Beas::build`] with explicit `A_t` options.
    pub fn build_with_options(
        db: &Database,
        constraints: &[ConstraintSpec],
        opts: &AtOptions,
    ) -> Result<Self> {
        let mut catalog = Catalog::for_database(db, opts)?;
        for spec in constraints {
            let x: Vec<&str> = spec.x.iter().map(|s| s.as_str()).collect();
            let y: Vec<&str> = spec.y.iter().map(|s| s.as_str()).collect();
            catalog.add_family(build_constraint(db, &spec.relation, &x, &y)?);
            if spec.extend {
                // the multi-resolution counterpart of the constraint itself:
                // given an X-value, up to 2^i representative Y-values (the ψ_i
                // templates of Example 1)
                catalog.add_family(build_extended(db, &spec.relation, &x, &y)?);
                // derived template: key on X ∪ Y, return the remaining attributes
                let schema = db.schema.relation(&spec.relation)?;
                let xy: Vec<String> = spec.x.iter().chain(spec.y.iter()).cloned().collect();
                let rest: Vec<String> = schema
                    .attr_names()
                    .into_iter()
                    .filter(|a| !xy.contains(a))
                    .collect();
                if !rest.is_empty() {
                    let xy_ref: Vec<&str> = xy.iter().map(|s| s.as_str()).collect();
                    let rest_ref: Vec<&str> = rest.iter().map(|s| s.as_str()).collect();
                    catalog.add_family(build_extended(db, &spec.relation, &xy_ref, &rest_ref)?);
                }
            }
        }
        Ok(Beas { catalog })
    }

    /// Wraps an existing catalog (e.g. one maintained incrementally).
    pub fn from_catalog(catalog: Catalog) -> Self {
        Beas { catalog }
    }

    /// The catalog (access schema + indices).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Registers an additional template family and returns its id.
    pub fn add_family(&mut self, family: beas_access::TemplateFamily) -> FamilyId {
        self.catalog.add_family(family)
    }

    /// Online component C3: generates the α-bounded plan and its bound η
    /// without accessing the database.
    pub fn plan(&self, query: &BeasQuery, alpha: f64) -> Result<BoundedPlan> {
        Planner::new(&self.catalog).plan(query, alpha)
    }

    /// Online components C3 + C4: plans and executes the query under resource
    /// ratio `alpha`, returning the answers, the bound η and the accounting.
    pub fn answer(&self, query: &BeasQuery, alpha: f64) -> Result<BeasAnswer> {
        let plan = self.plan(query, alpha)?;
        let outcome: ExecutionOutcome = execute_plan(&plan, &self.catalog)?;
        Ok(BeasAnswer {
            answers: outcome.answers,
            eta: outcome.eta,
            exact: plan.exact,
            accessed: outcome.accessed,
            planned_tariff: plan.tariff,
            budget: plan.budget,
        })
    }

    /// Executes a previously generated plan.
    pub fn execute(&self, plan: &BoundedPlan) -> Result<ExecutionOutcome> {
        execute_plan(plan, &self.catalog)
    }

    /// The smallest resource ratio for which the query is answered exactly
    /// (Exp-3, Fig. 6(j)).
    pub fn exact_ratio(&self, query: &BeasQuery) -> Result<Option<f64>> {
        Planner::new(&self.catalog).exact_ratio(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{exact_answers, rc_accuracy, AccuracyConfig};
    use crate::query::{AggQuery, RaQuery};
    use beas_relal::{
        AggFunc, Attribute, CompareOp, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
    };

    /// A deterministic Example-1-style database.
    fn example_db(n: i64) -> Database {
        let schema = DatabaseSchema::new(vec![
            RelationSchema::new(
                "person",
                vec![Attribute::id("pid"), Attribute::text("city")],
            ),
            RelationSchema::new("friend", vec![Attribute::id("pid"), Attribute::id("fid")]),
            RelationSchema::new(
                "poi",
                vec![
                    Attribute::text("address"),
                    Attribute::categorical("type"),
                    Attribute::text("city"),
                    Attribute::double("price"),
                ],
            ),
        ]);
        let mut db = Database::new(schema);
        let cities = ["NYC", "LA", "Chicago", "Boston"];
        for i in 0..n {
            db.insert_row("friend", vec![Value::Int(i % 10), Value::Int(i)]).unwrap();
            db.insert_row(
                "person",
                vec![Value::Int(i), Value::from(cities[(i % 4) as usize])],
            )
            .unwrap();
            db.insert_row(
                "poi",
                vec![
                    Value::from(format!("a{i}")),
                    Value::from(if i % 3 == 0 { "hotel" } else { "museum" }),
                    Value::from(cities[(i % 4) as usize]),
                    Value::Double(40.0 + (i % 60) as f64 * 2.0),
                ],
            )
            .unwrap();
        }
        db
    }

    fn constraints() -> Vec<ConstraintSpec> {
        vec![
            ConstraintSpec::new("friend", &["pid"], &["fid"]).without_extension(),
            ConstraintSpec::new("person", &["pid"], &["city"]).without_extension(),
            ConstraintSpec::new("poi", &["type", "city"], &["price"]),
        ]
    }

    /// Q1 of Example 1 with (city, price) output.
    fn q1(db: &Database) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(f, "pid", 1i64).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.join((p, "city"), (h, "city")).unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 95i64).unwrap();
        b.output(h, "city", "city").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    /// Q2 of Example 1.
    fn q2(db: &Database) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        b.bind_const(f, "pid", 1i64).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.output(p, "city", "city").unwrap();
        b.build().unwrap().into()
    }

    /// Hotels of a fixed (type, city) below a price, single atom. The city is
    /// pinned by an equality selection (not folded into the tableau) so it can
    /// still be projected into the output.
    fn hotels_in(db: &Database, city: &str, max_price: i64) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "city", CompareOp::Eq, city).unwrap();
        b.filter_const(h, "price", CompareOp::Le, max_price).unwrap();
        b.output(h, "city", "city").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    #[test]
    fn boundedly_evaluable_query_is_answered_exactly() {
        let db = example_db(400);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let q = q2(&db);
        let answer = beas.answer(&q, 0.1).unwrap();
        assert!(answer.exact);
        assert_eq!(answer.eta, 1.0);
        let truth = exact_answers(&q, &db).unwrap();
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
        assert!(answer.accessed <= answer.budget);
    }

    #[test]
    fn execution_respects_the_budget() {
        let db = example_db(400);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let q = q1(&db);
        for alpha in [0.05, 0.1, 0.3] {
            let answer = beas.answer(&q, alpha).unwrap();
            let budget = beas.catalog().budget_for(alpha);
            assert!(
                answer.accessed <= budget,
                "accessed {} > budget {budget} at α={alpha}",
                answer.accessed
            );
        }
    }

    #[test]
    fn q1_answers_become_exact_with_enough_budget() {
        let db = example_db(400);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let q = q1(&db);
        let answer = beas.answer(&q, 1.0).unwrap();
        assert!(answer.exact, "α = 1 must allow the exact plan");
        let truth = exact_answers(&q, &db).unwrap();
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
    }

    #[test]
    fn approximate_answers_satisfy_the_reported_bound() {
        let db = example_db(400);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let q = q1(&db);
        for alpha in [0.03, 0.08, 0.2, 0.5] {
            let answer = beas.answer(&q, alpha).unwrap();
            let report = rc_accuracy(&answer.answers, &q, &db, &AccuracyConfig::default()).unwrap();
            assert!(
                report.accuracy + 1e-9 >= answer.eta,
                "α={alpha}: measured accuracy {} below promised η {}",
                report.accuracy,
                answer.eta
            );
        }
    }

    #[test]
    fn eta_is_monotone_in_alpha() {
        let db = example_db(400);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let q = q1(&db);
        let mut last = -1.0;
        for alpha in [0.02, 0.05, 0.1, 0.25, 0.6, 1.0] {
            let answer = beas.answer(&q, alpha).unwrap();
            assert!(answer.eta >= last - 1e-12);
            last = answer.eta;
        }
    }

    #[test]
    fn single_relation_selection_query_end_to_end() {
        let db = example_db(300);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let q = hotels_in(&db, "NYC", 90);
        let answer = beas.answer(&q, 0.5).unwrap();
        let truth = exact_answers(&q, &db).unwrap();
        assert!(answer.exact);
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
    }

    #[test]
    fn union_query_combines_branches() {
        let db = example_db(300);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let a = match hotels_in(&db, "NYC", 200) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let b = match hotels_in(&db, "Chicago", 200) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let q: BeasQuery = BeasQuery::Ra(a.union(b));
        let answer = beas.answer(&q, 1.0).unwrap();
        let truth = exact_answers(&q, &db).unwrap();
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
    }

    #[test]
    fn difference_never_returns_excluded_tuples() {
        // Theorem 6(5): if t ∈ Q2(D) then t ∉ ξ_α(D)
        let db = example_db(300);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let all = match hotels_in(&db, "NYC", 1000) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let cheap = match hotels_in(&db, "NYC", 90) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let q: BeasQuery = BeasQuery::Ra(all.difference(cheap.clone()));
        let cheap_exact = exact_answers(&BeasQuery::Ra(cheap), &db).unwrap();
        for alpha in [0.05, 0.2, 1.0] {
            let answer = beas.answer(&q, alpha).unwrap();
            for row in &answer.answers.rows {
                assert!(
                    !cheap_exact.rows.contains(row),
                    "excluded tuple {row:?} returned at α={alpha}"
                );
            }
        }
    }

    #[test]
    fn aggregate_count_query_end_to_end() {
        let db = example_db(300);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let inner = match q1(&db) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let q: BeasQuery = AggQuery::new(inner, vec!["city".into()], AggFunc::Count, "price", "n")
            .unwrap()
            .into();
        let answer = beas.answer(&q, 1.0).unwrap();
        let truth = exact_answers(&q, &db).unwrap();
        // counts grouped by city must match exactly under the exact plan
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());

        // under a small ratio the answer is approximate but non-empty and the
        // group keys are valid cities
        let approx = beas.answer(&q, 0.1).unwrap();
        assert!(approx.eta <= 1.0);
        let report = rc_accuracy(&approx.answers, &q, &db, &AccuracyConfig::default()).unwrap();
        assert!(report.accuracy >= 0.0);
    }

    #[test]
    fn aggregate_min_and_avg_queries_run() {
        let db = example_db(200);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let inner = match hotels_in(&db, "NYC", 1000) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        for agg in [AggFunc::Min, AggFunc::Max, AggFunc::Avg, AggFunc::Sum] {
            let q: BeasQuery =
                AggQuery::new(inner.clone(), vec!["city".into()], agg, "price", "v")
                    .unwrap()
                    .into();
            let exact = beas.answer(&q, 1.0).unwrap();
            let truth = exact_answers(&q, &db).unwrap();
            assert_eq!(exact.answers.clone().sorted(), truth.sorted(), "agg {agg}");
            let approx = beas.answer(&q, 0.05).unwrap();
            assert!(approx.accessed <= beas.catalog().budget_for(0.05));
        }
    }

    #[test]
    fn exact_ratio_is_small_for_bounded_queries() {
        let db = example_db(500);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let r = beas.exact_ratio(&q2(&db)).unwrap().unwrap();
        assert!(r < 0.2, "Q2 exact ratio should be small, got {r}");
        let r1 = beas.exact_ratio(&q1(&db)).unwrap().unwrap();
        assert!(r1 >= r);
    }

    #[test]
    fn catalog_reports_index_sizes() {
        let db = example_db(200);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let report = beas.catalog().index_size_report();
        assert!(report.constraint_index_tuples > 0);
        assert!(report.template_index_tuples > 0);
        assert!(report.total_ratio() > 0.0);
    }

    #[test]
    fn answer_rejects_invalid_query() {
        let db = example_db(50);
        let beas = Beas::build(&db, &constraints()).unwrap();
        let mut bad = match q2(&db) {
            BeasQuery::Ra(RaQuery::Spc(q)) => q,
            _ => unreachable!(),
        };
        bad.output.clear();
        assert!(beas.answer(&bad.into(), 0.5).is_err());
    }
}
