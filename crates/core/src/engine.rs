//! The BEAS framework facade (Fig. 2): offline catalog construction and
//! maintenance, online resource-bounded query answering.
//!
//! ```text
//!              ┌─ offline ─────────────────────────────┐
//!   database ─▶│ C1 build indices I_A for access schema│
//!              │ C2 maintain I_A under updates         │
//!              └───────────────────────────────────────┘
//!              ┌─ online ──────────────────────────────┐
//!   (Q, spec)─▶│ C3 generate α-bounded plan ξ_α, bound η│──▶ (ξ_α(D), η)
//!              │ C4 execute ξ_α, accessing ≤ α·|D|     │
//!              └───────────────────────────────────────┘
//! ```
//!
//! The engine is *session-oriented and concurrent*: it is constructed through
//! the fluent [`BeasBuilder`] (constraints, `A_t` options, budget policy,
//! thread count), answers queries under a typed [`ResourceSpec`], hands out
//! re-usable [`PreparedQuery`] handles that cache bounded plans per budget
//! (amortizing C3 across repeated requests), and maintains its indices
//! incrementally under inserts ([`Beas::insert_row`], [`Beas::apply_update`]
//! — component C2) instead of requiring an offline rebuild.
//!
//! # Concurrency model
//!
//! The engine is `Send + Sync` and built for many readers and occasional
//! writers:
//!
//! * **Readers** (`answer`, `plan`, `prepare`, `execute`, …) grab an
//!   [`EngineSnapshot`] — two `Arc` clones taken under a briefly-held read
//!   lock — and run entirely against that immutable snapshot. They are never
//!   blocked by an in-progress update batch, and each request sees one
//!   consistent `(database, catalog)` pair.
//! * **Writers** (`insert_row`, `apply_update`, `add_family`, all `&self`)
//!   serialize among themselves on a writer mutex, apply the batch to a
//!   *private copy-on-write clone* of the state, and publish it with one
//!   atomic snapshot swap (epoch style). A reader holding the previous
//!   snapshot keeps serving it until it drops its `Arc`s.
//!
//! Intra-query parallelism (sharded plan execution, parallel index build) is
//! governed by [`BeasBuilder::num_threads`], which defaults to the machine's
//! available parallelism.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use beas_access::{
    build_constraint, build_extended_threaded, AtOptions, BudgetPolicy, Catalog, FamilyId,
    ResourceSpec,
};
use beas_relal::{Database, DatabaseSchema, Relation, Row};
use beas_slo::{AccuracyTarget, CurveStore, SloCounters, SloPrior};
use beas_store::{Calibration, Store, StoreOptions};

use crate::accuracy::{exact_answers, rc_accuracy, AccuracyConfig, RcReport};
use crate::error::Result;
use crate::executor::{
    calibrated_min_shard_rows, execute_plan_with_options, execute_plan_with_state, ExecOptions,
    ExecState, ExecutionOutcome,
};
use crate::fingerprint::QueryFingerprint;
use crate::planner::{BoundedPlan, Planner};
use crate::prepared::PreparedQuery;
use crate::query::BeasQuery;

/// A declarative description of an access constraint to register with the
/// engine (the `R(X → Y, N, 0)` constraints of Sec. 2.1); the engine derives
/// the extended multi-resolution templates `R(X∪Y → Z, 2^i, d̄_i)` from it, as
/// in the experimental setup of Sec. 8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintSpec {
    /// Relation name.
    pub relation: String,
    /// The X attributes.
    pub x: Vec<String>,
    /// The Y attributes.
    pub y: Vec<String>,
    /// Whether to also build the derived extended template on the remaining
    /// attributes.
    pub extend: bool,
}

impl ConstraintSpec {
    /// A constraint `relation(x → y)` that also derives the extended template.
    pub fn new(relation: &str, x: &[&str], y: &[&str]) -> Self {
        ConstraintSpec {
            relation: relation.to_string(),
            x: x.iter().map(|s| s.to_string()).collect(),
            y: y.iter().map(|s| s.to_string()).collect(),
            extend: true,
        }
    }

    /// Disables the derived extended template.
    pub fn without_extension(mut self) -> Self {
        self.extend = false;
        self
    }
}

/// The answer returned by the engine: approximate (or exact) answers plus the
/// deterministic accuracy lower bound and the access accounting.
#[derive(Debug, Clone)]
pub struct BeasAnswer {
    /// The answers `ξ_α(D)`.
    pub answers: Relation,
    /// The accuracy lower bound `η`.
    pub eta: f64,
    /// Whether the answers are exact (`Q(D)`).
    pub exact: bool,
    /// Tuples accessed during execution (≤ the budget the spec resolved to).
    pub accessed: usize,
    /// The estimated tariff of the plan.
    pub planned_tariff: usize,
    /// The tuple budget the plan complied with.
    pub budget: usize,
    /// Whether the answer was composed from a strict subset of the plan's
    /// leaves (e.g. a cluster coordinator degrading around a dead shard).
    /// Single-node execution always answers over every leaf, so this is
    /// `false` everywhere except degraded cluster answers, where `eta` is
    /// recomputed from the surviving fragments only.
    pub partial: bool,
}

impl BeasAnswer {
    /// Assembles an answer from a plan and its execution outcome — the same
    /// packaging [`Beas::answer`] applies, exposed so other drivers of plan
    /// execution (e.g. a cluster coordinator composing shard results) return
    /// answers with identical semantics.
    pub fn from_execution(plan: &BoundedPlan, outcome: ExecutionOutcome) -> Self {
        answer_from(plan, outcome)
    }

    /// The answer for a zero-budget spec: no access, no answers, no bound.
    /// [`Beas::answer`] returns this for specs resolving to zero tuples.
    pub fn empty(columns: Vec<String>) -> Self {
        empty_answer(columns)
    }
}

/// The result of [`Beas::answer_with_target`]: the answer itself plus the
/// SLO accounting a serving layer reconciles admission against.
#[derive(Debug, Clone)]
pub struct TargetedAnswer {
    /// The answer actually served (its `eta` is the achieved bound).
    pub answer: BeasAnswer,
    /// The target that was asked for.
    pub target: AccuracyTarget,
    /// The spec of the final (served) attempt, in absolute tuples.
    pub spec: ResourceSpec,
    /// The budget of the *first* attempt — what admission charged
    /// ([`Beas::predict_target_cost`] returns the same number beforehand).
    pub predicted_budget: usize,
    /// Fresh tuples fetched across all attempts (escalations re-use earlier
    /// fragments, so this is the true total spend to reconcile against).
    pub spent: usize,
    /// `true` when the achieved η meets the target. `false` means the target
    /// was honestly infeasible within `target.max_budget`.
    pub feasible: bool,
    /// `true` when the first budget came from a learned curve (as opposed to
    /// the cold-start prior).
    pub curve_backed: bool,
    /// Budget-doubling escalations taken after the first attempt.
    pub escalations: usize,
}

/// A batch of database updates for [`Beas::apply_update`] (component C2).
///
/// The batch is validated as a whole before any row is applied, so a bad row
/// leaves the engine untouched.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    inserts: Vec<(String, Row)>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Adds an insert of `row` into `relation`.
    pub fn insert(mut self, relation: &str, row: Row) -> Self {
        self.inserts.push((relation.to_string(), row));
        self
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len()
    }

    /// `true` when the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty()
    }

    /// The buffered inserts, in application order.
    pub fn inserts(&self) -> &[(String, Row)] {
        &self.inserts
    }
}

/// Fluent construction of a [`Beas`] engine (offline component C1).
///
/// ```
/// use beas_core::{Beas, ConstraintSpec};
/// use beas_relal::{Attribute, Database, DatabaseSchema, RelationSchema};
///
/// let schema = DatabaseSchema::new(vec![RelationSchema::new(
///     "poi",
///     vec![Attribute::categorical("type"), Attribute::double("price")],
/// )]);
/// let engine = Beas::builder(Database::new(schema))
///     .constraint(ConstraintSpec::new("poi", &["type"], &["price"]))
///     .build()
///     .unwrap();
/// assert_eq!(engine.database().total_tuples(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct BeasBuilder {
    db: Arc<Database>,
    constraints: Vec<ConstraintSpec>,
    options: AtOptions,
    policy: BudgetPolicy,
    threads: Option<usize>,
    min_shard_rows: Option<usize>,
    plan_cache_capacity: usize,
    persist: Option<(PathBuf, StoreOptions)>,
}

impl BeasBuilder {
    /// A builder over a database the engine will own. Accepts either a
    /// [`Database`] or an existing [`Arc<Database>`] (shared snapshots stay
    /// cheap: maintenance copies-on-write only when another handle is alive).
    pub fn new(db: impl Into<Arc<Database>>) -> Self {
        BeasBuilder {
            db: db.into(),
            constraints: Vec::new(),
            options: AtOptions::default(),
            policy: BudgetPolicy::default(),
            threads: None,
            min_shard_rows: None,
            plan_cache_capacity: crate::prepared::PLAN_CACHE_CAPACITY,
            persist: None,
        }
    }

    /// Makes the engine durable: [`BeasBuilder::build`] additionally creates
    /// a [`Store`] at `dir` (which must not already hold one), writes the
    /// freshly built state as its first snapshot, and attaches the store so
    /// every subsequent [`Beas::apply_update`] is write-ahead logged before
    /// it is published. Reopen later with [`Beas::open`] for a warm restart.
    pub fn persist_to(self, dir: impl Into<PathBuf>) -> Self {
        self.persist_with(dir, StoreOptions::default())
    }

    /// [`BeasBuilder::persist_to`] with explicit storage options (WAL sync
    /// mode, paging threshold, compaction thresholds).
    pub fn persist_with(mut self, dir: impl Into<PathBuf>, options: StoreOptions) -> Self {
        self.persist = Some((dir.into(), options));
        self
    }

    /// Sets the capacity of the engine's shared plan cache (entries, one per
    /// `(query fingerprint, budget)` pair; least-recently-used eviction
    /// beyond it). Clamped to at least 1. Defaults to
    /// [`PLAN_CACHE_CAPACITY`](crate::prepared::PLAN_CACHE_CAPACITY).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity.max(1);
        self
    }

    /// Sets the engine's thread count, used for the parallel index build (C1)
    /// and for sharded plan execution (C4). Clamped to at least 1; the
    /// default is the machine's available parallelism. Thread count never
    /// affects results: index builds and sharded execution are bit-for-bit
    /// deterministic.
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Pins the smallest sharded-atom row count for which plan execution
    /// engages parallel leaf evaluation, overriding the startup calibration
    /// ([`calibrated_min_shard_rows`]) the builder performs otherwise.
    /// Clamped to at least 1; never affects answers, only wall-clock.
    pub fn min_shard_rows(mut self, rows: usize) -> Self {
        self.min_shard_rows = Some(rows.max(1));
        self
    }

    /// Registers one access constraint.
    pub fn constraint(mut self, spec: ConstraintSpec) -> Self {
        self.constraints.push(spec);
        self
    }

    /// Registers several access constraints.
    pub fn constraints<I: IntoIterator<Item = ConstraintSpec>>(mut self, specs: I) -> Self {
        self.constraints.extend(specs);
        self
    }

    /// Sets the `A_t` construction options (e.g. the level cap).
    pub fn at_options(mut self, options: AtOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the budget policy used to resolve [`ResourceSpec`]s.
    pub fn budget_policy(mut self, policy: BudgetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Offline component C1: builds the canonical `A_t` catalog plus the
    /// registered constraints (and their derived extended templates) across
    /// the configured number of threads, and returns the engine owning the
    /// database.
    pub fn build(self) -> Result<Beas> {
        let threads = self.threads.unwrap_or_else(default_threads);
        let db = &*self.db;
        let mut catalog = Catalog::for_database_threaded(db, &self.options, threads)?;
        catalog.policy = self.policy;
        for spec in &self.constraints {
            let x: Vec<&str> = spec.x.iter().map(|s| s.as_str()).collect();
            let y: Vec<&str> = spec.y.iter().map(|s| s.as_str()).collect();
            catalog.add_family(build_constraint(db, &spec.relation, &x, &y)?);
            if spec.extend {
                // the multi-resolution counterpart of the constraint itself:
                // given an X-value, up to 2^i representative Y-values (the ψ_i
                // templates of Example 1)
                catalog.add_family(build_extended_threaded(
                    db,
                    &spec.relation,
                    &x,
                    &y,
                    threads,
                )?);
                // derived template: key on X ∪ Y, return the remaining attributes
                let schema = db.schema.relation(&spec.relation)?;
                let xy: Vec<String> = spec.x.iter().chain(spec.y.iter()).cloned().collect();
                let rest: Vec<String> = schema
                    .attr_names()
                    .into_iter()
                    .filter(|a| !xy.contains(a))
                    .collect();
                if !rest.is_empty() {
                    let xy_ref: Vec<&str> = xy.iter().map(|s| s.as_str()).collect();
                    let rest_ref: Vec<&str> = rest.iter().map(|s| s.as_str()).collect();
                    catalog.add_family(build_extended_threaded(
                        db,
                        &spec.relation,
                        &xy_ref,
                        &rest_ref,
                        threads,
                    )?);
                }
            }
        }
        let schema = db.schema.clone();
        let catalog = Arc::new(catalog);
        let min_shard_rows = self
            .min_shard_rows
            .unwrap_or_else(calibrated_min_shard_rows);
        let store = match self.persist {
            Some((dir, options)) => {
                let store = Store::create(dir, options)?;
                store.write_snapshot(&self.db, &catalog)?;
                store.save_calibration(&current_calibration(min_shard_rows))?;
                Some(Arc::new(store))
            }
            None => None,
        };
        Ok(Beas {
            state: RwLock::new(EngineSnapshot {
                db: self.db,
                catalog,
            }),
            writer: Mutex::new(()),
            schema,
            threads,
            min_shard_rows,
            plan_cache: crate::prepared::SharedPlanCache::new(self.plan_cache_capacity),
            stats: StatsCounters::default(),
            slo: Arc::new(CurveStore::new()),
            store,
        })
    }
}

/// How often the curve store autosaves to an attached durable store, in
/// observations — frequent enough that a crash loses little learning, rare
/// enough that answering stays hot-path cheap.
const SLO_AUTOSAVE_EVERY: u64 = 64;

/// The calibration record describing *this* build on *this* machine — the
/// staleness key a persisted record is compared against at [`Beas::open`].
fn current_calibration(min_shard_rows: usize) -> Calibration {
    Calibration {
        min_shard_rows,
        package_version: env!("CARGO_PKG_VERSION").to_string(),
        parallelism: default_threads(),
    }
}

/// The engine's default thread count: the machine's available parallelism.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Internal atomic request counters of one [`Beas`] handle. Bumped lock-free
/// on the hot paths; read as one [`EngineStats`] snapshot.
#[derive(Debug, Default)]
pub(crate) struct StatsCounters {
    pub(crate) queries: AtomicU64,
    pub(crate) tuples_accessed: AtomicU64,
    pub(crate) updates: AtomicU64,
    pub(crate) rows_inserted: AtomicU64,
    pub(crate) plan_cache_hits: AtomicU64,
    pub(crate) plan_cache_misses: AtomicU64,
}

impl StatsCounters {
    /// Records one answered query and its access accounting.
    pub(crate) fn record_answer(&self, accessed: usize) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.tuples_accessed
            .fetch_add(accessed as u64, Ordering::Relaxed);
    }

    /// Records one applied update batch.
    pub(crate) fn record_update(&self, rows: usize) {
        self.updates.fetch_add(1, Ordering::Relaxed);
        self.rows_inserted.fetch_add(rows as u64, Ordering::Relaxed);
    }
}

/// A point-in-time copy of an engine handle's request statistics — the
/// request-stats hook a serving front-end exposes under `GET /metrics`.
/// Counters are per [`Beas`] handle (a [`Beas::clone`] starts at zero) and
/// cover both the direct [`Beas::answer`] path and every [`PreparedQuery`]
/// created from the handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Queries answered (including zero-budget empty answers).
    pub queries: u64,
    /// Total tuples accessed by answered queries.
    pub tuples_accessed: u64,
    /// Update batches applied (component C2).
    pub updates: u64,
    /// Rows inserted across all applied batches.
    pub rows_inserted: u64,
    /// Prepared-query plan-cache hits (answers that skipped planning).
    pub plan_cache_hits: u64,
    /// Prepared-query plan-cache misses (budgets planned for the first time,
    /// or re-planned after maintenance invalidated the cache).
    pub plan_cache_misses: u64,
    /// Storage: segment files written (snapshots, calibration records).
    /// Zero on engines without an attached store.
    pub segments_written: u64,
    /// Storage: segment files read and verified (eager loads + page-ins).
    pub segments_loaded: u64,
    /// Storage: bytes currently in the write-ahead log (resets when the log
    /// compacts into a snapshot).
    pub wal_bytes: u64,
    /// Storage: update batches recovered from the WAL tail by [`Beas::open`].
    pub replayed_batches: u64,
    /// Storage: paged index levels loaded on first fetch.
    pub page_ins: u64,
    /// SLO: distinct query fingerprints with learned η-vs-budget curves.
    pub slo_fingerprints: u64,
    /// SLO: `(budget, η)` observations absorbed by the curve store.
    pub slo_observations: u64,
    /// SLO: targeted answers whose curve-backed first attempt met the target.
    pub slo_prediction_hits: u64,
    /// SLO: targeted answers served cold or escalated past the prediction.
    pub slo_prediction_misses: u64,
    /// SLO: settled targeted answers (predicted cost reconciled).
    pub slo_settlements: u64,
    /// SLO: sum over settlements of `|predicted − actual|` spend, in tuples.
    pub slo_spend_error_sum: u64,
}

/// One consistent `(database, catalog)` pair published by the engine.
///
/// Snapshots are cheap to take (two `Arc` clones) and immutable: a request
/// that grabbed one keeps seeing exactly that state even while update batches
/// publish newer snapshots concurrently.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    db: Arc<Database>,
    catalog: Arc<Catalog>,
}

impl EngineSnapshot {
    /// The snapshot's database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The snapshot's catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }
}

/// The BEAS engine: owns its database and the access-schema catalog built
/// over it, answers queries under typed resource specs, and maintains the
/// catalog incrementally under inserts. `Send + Sync` — share it behind an
/// `Arc` (or plain references within a scope) and call [`Beas::answer`] /
/// [`Beas::apply_update`] from any number of threads; see the module docs for
/// the snapshot/swap concurrency model.
#[derive(Debug)]
pub struct Beas {
    /// The published state; readers clone it under a briefly-held read lock.
    state: RwLock<EngineSnapshot>,
    /// Serializes writers (copy-on-write + swap), so concurrent update
    /// batches cannot lose each other's rows. Readers never take this lock.
    writer: Mutex<()>,
    /// The schema, immutable for the engine's lifetime (no DDL), so query
    /// building and validation need no snapshot.
    schema: DatabaseSchema,
    threads: usize,
    /// Parallel-leaf threshold for sharded execution, resolved at build time
    /// (startup calibration unless the builder pinned it).
    min_shard_rows: usize,
    /// The shared plan cache: one per engine, keyed on
    /// `(query fingerprint, budget)` and shared by every [`PreparedQuery`]
    /// handle — independent handles for the same query share plans.
    pub(crate) plan_cache: crate::prepared::SharedPlanCache,
    /// Request statistics (see [`Beas::stats`]); plain atomics so the hot
    /// paths bump them without any lock.
    pub(crate) stats: StatsCounters,
    /// The accuracy-SLO curve store: online η-vs-budget observations from
    /// every answer and refinement step, consulted by
    /// [`Beas::answer_with_target`] and adaptive refinement schedules.
    /// Per handle, like `stats` — a clone learns its own curves.
    pub(crate) slo: Arc<CurveStore>,
    /// The attached durable store, when the engine was built with
    /// [`BeasBuilder::persist_to`] or reopened with [`Beas::open`]. Updates
    /// are write-ahead logged here before they are published.
    store: Option<Arc<Store>>,
}

impl Clone for Beas {
    /// Clones the engine handle over the current snapshot. The clone starts
    /// with fresh request statistics — stats are per-handle, not per-data —
    /// and is *not* durable: the store (single-writer WAL) stays with the
    /// original handle, so a clone's updates are never logged.
    fn clone(&self) -> Self {
        Beas {
            state: RwLock::new(self.snapshot()),
            writer: Mutex::new(()),
            schema: self.schema.clone(),
            threads: self.threads,
            min_shard_rows: self.min_shard_rows,
            plan_cache: crate::prepared::SharedPlanCache::new(self.plan_cache.capacity()),
            stats: StatsCounters::default(),
            slo: Arc::new(CurveStore::new()),
            store: None,
        }
    }
}

impl Beas {
    /// Starts building an engine over `db` (see [`BeasBuilder`]).
    pub fn builder(db: impl Into<Arc<Database>>) -> BeasBuilder {
        BeasBuilder::new(db)
    }

    /// Warm restart: opens the durable store at `dir` (created by
    /// [`BeasBuilder::persist_to`]), loads its snapshot, and replays the
    /// WAL tail — every update batch that was applied after the snapshot —
    /// so the reopened engine answers bit-for-bit like the engine that was
    /// killed. No indices are rebuilt: large index levels stay on disk and
    /// page in lazily on first fetch.
    pub fn open(dir: impl AsRef<Path>) -> Result<Beas> {
        Beas::open_with(dir, StoreOptions::default())
    }

    /// [`Beas::open`] with explicit storage options.
    pub fn open_with(dir: impl AsRef<Path>, options: StoreOptions) -> Result<Beas> {
        let store = Store::open(dir.as_ref(), options)?;
        let (db, catalog) = store.load_snapshot()?;

        // satellite calibration: reuse the persisted executor threshold only
        // when it was measured by this build on this core count — otherwise
        // re-calibrate and refresh the record
        let current = current_calibration(0);
        let min_shard_rows = match store.load_calibration()? {
            Some(cal)
                if cal.package_version == current.package_version
                    && cal.parallelism == current.parallelism =>
            {
                cal.min_shard_rows
            }
            _ => {
                let measured = calibrated_min_shard_rows();
                store.save_calibration(&current_calibration(measured))?;
                measured
            }
        };

        // warm restart of learned SLO curves: a corrupt or absent payload
        // means "start cold," never an error — curves are a cache
        let slo = store
            .load_slo_state()?
            .and_then(|bytes| CurveStore::from_bytes(&bytes))
            .unwrap_or_default();

        let schema = db.schema.clone();
        let engine = Beas {
            state: RwLock::new(EngineSnapshot {
                db: Arc::new(db),
                catalog: Arc::new(catalog),
            }),
            writer: Mutex::new(()),
            schema,
            threads: default_threads(),
            min_shard_rows,
            plan_cache: crate::prepared::SharedPlanCache::new(crate::prepared::PLAN_CACHE_CAPACITY),
            stats: StatsCounters::default(),
            slo: Arc::new(slo),
            store: Some(Arc::new(store)),
        };

        // WAL-tail replay: re-apply the recovered batches through the normal
        // incremental maintenance path, but do not re-log them (they are
        // already in the WAL) and do not count them as served updates (the
        // store counts them as `replayed_batches`)
        let replay = engine
            .store
            .as_ref()
            .expect("store attached above")
            .take_replay();
        for batch in replay {
            let _writer = engine.writer.lock().expect("writer lock poisoned");
            engine.apply_inserts_locked(&batch, false)?;
        }
        Ok(engine)
    }

    /// `true` when the engine has an attached durable store.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// The attached durable store, when the engine is durable.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The engine's current consistent `(database, catalog)` snapshot.
    pub fn snapshot(&self) -> EngineSnapshot {
        self.state.read().expect("engine state poisoned").clone()
    }

    /// The current database snapshot.
    pub fn database(&self) -> Arc<Database> {
        self.snapshot().db
    }

    /// A shared handle to the engine's database (e.g. for accuracy tooling
    /// that outlives a borrow of the engine). Alias of [`Beas::database`].
    pub fn database_arc(&self) -> Arc<Database> {
        self.database()
    }

    /// The current catalog snapshot (access schema + indices).
    pub fn catalog(&self) -> Arc<Catalog> {
        self.snapshot().catalog
    }

    /// The database schema (immutable for the engine's lifetime).
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The engine's thread count for index building and sharded execution.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// The parallel-leaf threshold sharded execution runs with: the startup
    /// calibration's pick ([`calibrated_min_shard_rows`]) unless
    /// [`BeasBuilder::min_shard_rows`] pinned a value.
    pub fn min_shard_rows(&self) -> usize {
        self.min_shard_rows
    }

    /// The shared plan cache (internal hook for prepared queries and
    /// sessions).
    pub(crate) fn plan_cache(&self) -> &crate::prepared::SharedPlanCache {
        &self.plan_cache
    }

    /// Capacity of the engine's shared plan cache
    /// ([`BeasBuilder::plan_cache_capacity`], default
    /// [`PLAN_CACHE_CAPACITY`](crate::prepared::PLAN_CACHE_CAPACITY)).
    pub fn plan_cache_capacity(&self) -> usize {
        self.plan_cache.capacity()
    }

    /// Plans currently held by the shared plan cache (across all queries).
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// A snapshot of this handle's request statistics (queries answered,
    /// tuples accessed, updates applied, plan-cache hits/misses). Lock-free
    /// on both the read and the write side.
    pub fn stats(&self) -> EngineStats {
        let storage = self.store.as_deref().map(Store::stats).unwrap_or_default();
        let slo = self.slo.snapshot();
        EngineStats {
            queries: self.stats.queries.load(Ordering::Relaxed),
            tuples_accessed: self.stats.tuples_accessed.load(Ordering::Relaxed),
            updates: self.stats.updates.load(Ordering::Relaxed),
            rows_inserted: self.stats.rows_inserted.load(Ordering::Relaxed),
            plan_cache_hits: self.stats.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.stats.plan_cache_misses.load(Ordering::Relaxed),
            segments_written: storage.segments_written,
            segments_loaded: storage.segments_loaded,
            wal_bytes: storage.wal_bytes,
            replayed_batches: storage.replayed_batches,
            page_ins: storage.page_ins,
            slo_fingerprints: slo.fingerprints as u64,
            slo_observations: slo.observations,
            slo_prediction_hits: slo.prediction_hits,
            slo_prediction_misses: slo.prediction_misses,
            slo_settlements: slo.settlements,
            slo_spend_error_sum: slo.spend_error_sum,
        }
    }

    /// Registers an additional template family and returns its id.
    pub fn add_family(&self, family: beas_access::TemplateFamily) -> FamilyId {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let snapshot = self.snapshot();
        let mut catalog = (*snapshot.catalog).clone();
        let id = catalog.add_family(family);
        self.publish(EngineSnapshot {
            db: snapshot.db,
            catalog: Arc::new(catalog),
        });
        id
    }

    /// Online component C3: generates the bounded plan and its bound η for a
    /// resource spec, without accessing the database. Zero specs are an error
    /// here (no plan can access zero tuples); [`Beas::answer`] maps them to an
    /// empty answer instead.
    pub fn plan(&self, query: &BeasQuery, spec: ResourceSpec) -> Result<BoundedPlan> {
        Planner::new(&self.snapshot().catalog).plan(query, spec)
    }

    /// Online components C3 + C4: plans and executes the query under a
    /// resource spec, returning the answers, the bound η and the accounting.
    /// Safe to call from many threads at once; each call runs against one
    /// consistent snapshot.
    pub fn answer(&self, query: &BeasQuery, spec: ResourceSpec) -> Result<BeasAnswer> {
        let snapshot = self.snapshot();
        let budget = snapshot.catalog.budget(&spec)?;
        if budget == 0 {
            query.validate(&snapshot.catalog.schema)?;
            self.stats.record_answer(0);
            return Ok(empty_answer(query.output_columns()));
        }
        let plan = Planner::new(&snapshot.catalog).plan_with_budget(query, budget)?;
        let outcome = self.execute_on(&plan, &snapshot)?;
        self.stats.record_answer(outcome.accessed);
        let answer = answer_from(&plan, outcome);
        self.record_slo_observation(
            QueryFingerprint::of(query).as_u128(),
            snapshot.catalog.version,
            budget,
            answer.eta,
            answer.accessed,
        );
        Ok(answer)
    }

    /// Answers `query` at an accuracy SLO: resolves the *minimal* budget the
    /// learned η-vs-budget curve predicts to reach `target.eta` (a cold
    /// engine falls back to the catalog-prior budget — in practice full
    /// evaluation — and never over-promises), executes there, and escalates
    /// by budget doubling (re-using fetched fragments, like a refinement
    /// session) whenever the achieved η still falls short. The loop stops at
    /// `target.max_budget`; an answer that misses the target there is
    /// returned with [`TargetedAnswer::feasible`] `== false` rather than
    /// pretending. Every attempt feeds the curve store, so serving a target
    /// *is* the warm-up.
    pub fn answer_with_target(
        &self,
        query: &BeasQuery,
        target: &AccuracyTarget,
    ) -> Result<TargetedAnswer> {
        target.validate().map_err(crate::BeasError::Access)?;
        let snapshot = self.snapshot();
        let catalog = &snapshot.catalog;
        let max_budget = catalog.budget(&target.max_budget)?;
        if max_budget == 0 {
            return Err(crate::BeasError::Access(
                beas_access::AccessError::InvalidSpec(format!(
                    "accuracy target budget cap `{}` resolves to a zero budget",
                    target.max_budget
                )),
            ));
        }
        let fp = QueryFingerprint::of(query).as_u128();
        let version = catalog.version;
        let predicted = self.slo.plan_budget(fp, version, target.eta, max_budget);
        let curve_backed = predicted.is_some();
        let first_budget = predicted
            .unwrap_or_else(|| SloPrior::from_catalog(catalog).exact_budget)
            .clamp(1, max_budget);

        let mut state = ExecState::new();
        let mut budget = first_budget;
        let mut escalations = 0usize;
        let mut billed = 0usize;
        let answer = loop {
            let plan = Planner::new(catalog).plan_with_budget(query, budget)?;
            let outcome = execute_plan_with_state(
                &plan,
                catalog,
                ExecOptions::budgeted(plan.budget.max(plan.tariff))
                    .with_threads(self.threads)
                    .with_min_shard_rows(self.min_shard_rows),
                &mut state,
            )?;
            // bill only the freshly fetched delta, like a refinement session
            let fetched = state.fetched_tuples();
            self.stats.record_answer(fetched - billed);
            billed = fetched;
            let answer = answer_from(&plan, outcome);
            self.record_slo_observation(fp, version, budget, answer.eta, answer.accessed);
            if answer.eta >= target.eta || budget >= max_budget {
                break answer;
            }
            escalations += 1;
            budget = budget.saturating_mul(2).min(max_budget);
        };

        let feasible = answer.eta >= target.eta;
        let spent = billed;
        // a "hit" is a curve-backed first attempt that met the target with no
        // escalation; cold answers and escalated answers count as misses
        self.slo.record_settlement(
            curve_backed && feasible && escalations == 0,
            first_budget,
            spent,
        );
        Ok(TargetedAnswer {
            spec: ResourceSpec::Tuples(answer.budget),
            answer,
            target: *target,
            predicted_budget: first_budget,
            spent,
            feasible,
            curve_backed,
            escalations,
        })
    }

    /// The tuple cost a serving layer should charge *before* executing
    /// [`Beas::answer_with_target`]: the curve-predicted minimal budget for
    /// the target, or the cold-start prior budget (capped at the target's
    /// budget ceiling). Reconcile against [`TargetedAnswer::spent`] after
    /// execution.
    pub fn predict_target_cost(&self, query: &BeasQuery, target: &AccuracyTarget) -> Result<usize> {
        target.validate().map_err(crate::BeasError::Access)?;
        query.validate(&self.schema)?;
        let snapshot = self.snapshot();
        let catalog = &snapshot.catalog;
        let max_budget = catalog.budget(&target.max_budget)?.max(1);
        let fp = QueryFingerprint::of(query).as_u128();
        Ok(self
            .slo
            .plan_budget(fp, catalog.version, target.eta, max_budget)
            .unwrap_or_else(|| SloPrior::from_catalog(catalog).exact_budget)
            .clamp(1, max_budget))
    }

    /// The accuracy-SLO accounting snapshot (also folded into
    /// [`Beas::stats`] as the `slo_*` fields).
    pub fn slo_counters(&self) -> SloCounters {
        self.slo.snapshot()
    }

    /// The engine's curve store (shared with sessions and serving layers).
    pub(crate) fn slo_store(&self) -> &Arc<CurveStore> {
        &self.slo
    }

    /// Feeds one `(fingerprint, budget, η, spent)` observation to the curve
    /// store and autosaves the learned state to the attached durable store
    /// every [`SLO_AUTOSAVE_EVERY`] observations (best-effort: curves are a
    /// cache, so an autosave failure never fails the answer that triggered
    /// it).
    pub(crate) fn record_slo_observation(
        &self,
        fingerprint: u128,
        version: u64,
        budget: usize,
        eta: f64,
        spent: usize,
    ) {
        let total = self.slo.observe(fingerprint, version, budget, eta, spent);
        if total > 0 && total.is_multiple_of(SLO_AUTOSAVE_EVERY) {
            let _ = self.flush_slo();
        }
    }

    /// Persists the learned η-vs-budget curves to the attached durable store
    /// (no-op without one), so a warm restart ([`Beas::open`]) keeps the
    /// models. Called automatically every `SLO_AUTOSAVE_EVERY` (64)
    /// observations; call it explicitly before a planned shutdown.
    pub fn flush_slo(&self) -> Result<()> {
        if let Some(store) = &self.store {
            store.save_slo_state(&self.slo.to_bytes())?;
        }
        Ok(())
    }

    /// Caches validation and per-budget plans for a query that will be asked
    /// repeatedly: `prepare` once, then [`PreparedQuery::answer`] per request
    /// — re-planning is skipped whenever the budget was seen before (and the
    /// catalog has not changed since).
    pub fn prepare(&self, query: &BeasQuery) -> Result<PreparedQuery<'_>> {
        PreparedQuery::borrowed(self, query)
    }

    /// [`Beas::prepare`] for an engine shared behind an `Arc`: the returned
    /// handle owns an `Arc` clone instead of a borrow, so it is `'static` and
    /// can be stored in long-lived serving state (a connection pool, a
    /// prepared-statement registry) that outlives any one stack frame.
    pub fn prepare_shared(self: &Arc<Self>, query: &BeasQuery) -> Result<PreparedQuery<'static>> {
        PreparedQuery::shared(Arc::clone(self), query)
    }

    /// Executes a previously generated plan against the current snapshot.
    pub fn execute(&self, plan: &BoundedPlan) -> Result<ExecutionOutcome> {
        let snapshot = self.snapshot();
        self.execute_on(plan, &snapshot)
    }

    /// Executes a plan against an explicit snapshot with the engine's thread
    /// count (the prepared-query path re-uses the snapshot it budgeted with).
    pub(crate) fn execute_on(
        &self,
        plan: &BoundedPlan,
        snapshot: &EngineSnapshot,
    ) -> Result<ExecutionOutcome> {
        execute_plan_with_options(
            plan,
            &snapshot.catalog,
            ExecOptions::budgeted(plan.budget.max(plan.tariff))
                .with_threads(self.threads)
                .with_min_shard_rows(self.min_shard_rows),
        )
    }

    /// The smallest resource ratio for which the query is answered exactly
    /// (Exp-3, Fig. 6(j)).
    pub fn exact_ratio(&self, query: &BeasQuery) -> Result<Option<f64>> {
        Planner::new(&self.snapshot().catalog).exact_ratio(query)
    }

    /// Ground truth `Q(D)` over the owned database (full evaluation — ignores
    /// every resource bound).
    pub fn exact_answers(&self, query: &BeasQuery) -> Result<Relation> {
        exact_answers(query, &self.snapshot().db)
    }

    /// Measures the RC accuracy of an answer set against the owned database.
    pub fn accuracy(
        &self,
        approx: &Relation,
        query: &BeasQuery,
        config: &AccuracyConfig,
    ) -> Result<RcReport> {
        rc_accuracy(approx, query, &self.snapshot().db, config)
    }

    /// Offline component C2: inserts one row into the owned database and
    /// propagates it through every affected family index — updating
    /// representatives, cardinality bounds, `|D|` and therefore budget
    /// accounting — without rebuilding the catalog.
    ///
    /// Existing level resolutions never change, so η bounds computed before
    /// the insert remain valid; answers at the full spec match a freshly
    /// rebuilt engine because exact levels absorb inserts exactly.
    ///
    /// Takes `&self`: the row is absorbed into a private copy of the state
    /// and published with one snapshot swap, so concurrent readers are never
    /// blocked (they keep serving the previous snapshot). Prefer
    /// [`Beas::apply_update`] for more than a handful of rows — every call
    /// pays one copy-on-write of the state.
    pub fn insert_row(&self, relation: &str, row: Row) -> Result<()> {
        self.apply_update(&UpdateBatch::new().insert(relation, row))
            .map(|_| ())
    }

    /// Batched component C2: validates the whole batch against a private
    /// copy-on-write clone of the state, applies every insert through the
    /// incremental index maintenance path, and publishes the result with one
    /// atomic snapshot swap. A bad row leaves the engine untouched; readers
    /// are never blocked. Returns the number of rows applied.
    ///
    /// The copy-on-write is *structural*: database relations and catalog
    /// families sit behind `Arc`s, so cloning the state shares everything and
    /// only the relations/families of the relations named in the batch are
    /// deep-copied — a small batch costs O(touched relation), not O(|D|).
    pub fn apply_update(&self, batch: &UpdateBatch) -> Result<usize> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        self.apply_inserts_locked(batch.inserts(), true)?;
        self.stats.record_update(batch.len());
        // compaction: once the WAL has grown past its thresholds, fold it
        // into a fresh snapshot (still under the writer lock, so the
        // snapshot captures exactly the state just published)
        if let Some(store) = &self.store {
            if store.should_compact() {
                let snapshot = self.snapshot();
                store.write_snapshot(&snapshot.db, &snapshot.catalog)?;
            }
        }
        Ok(batch.len())
    }

    /// The shared C2 application path (callers hold the writer lock): clone,
    /// validate, apply, WAL-log (when `log` and a store is attached), then
    /// publish. The WAL append happens strictly *before* the publish, so a
    /// batch a reader can observe is always recoverable; conversely a WAL
    /// failure leaves the engine state untouched.
    fn apply_inserts_locked(&self, inserts: &[(String, Row)], log: bool) -> Result<()> {
        let snapshot = self.snapshot();
        // copy-on-write: all mutation happens on a private clone, so readers
        // keep serving the published snapshot until the swap below
        let mut catalog = (*snapshot.catalog).clone();
        // the catalog validates the whole batch before touching any index
        catalog.insert_rows(inserts)?;
        let mut db = (*snapshot.db).clone();
        for (relation, row) in inserts {
            db.insert_row(relation, row.clone())?;
        }
        if log {
            if let Some(store) = &self.store {
                store.append_batch(inserts)?;
            }
        }
        self.publish(EngineSnapshot {
            db: Arc::new(db),
            catalog: Arc::new(catalog),
        });
        Ok(())
    }

    /// Atomically swaps in a new snapshot (callers hold the writer lock).
    fn publish(&self, snapshot: EngineSnapshot) {
        *self.state.write().expect("engine state poisoned") = snapshot;
    }
}

/// A cheaply cloneable serving handle over a shared engine: the hook a
/// network front-end builds on. It wraps `Arc<Beas>`, hands out owned
/// (`'static`) [`PreparedQuery`] handles via [`ServeHandle::prepare`], and
/// exposes the engine's request statistics for a `/metrics` endpoint —
/// without the front-end having to thread lifetimes through its connection
/// state.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    engine: Arc<Beas>,
}

impl ServeHandle {
    /// A serving handle over `engine`. Accepts a [`Beas`] or an existing
    /// `Arc<Beas>`; clones of the handle share the engine (and its stats).
    pub fn new(engine: impl Into<Arc<Beas>>) -> Self {
        ServeHandle {
            engine: engine.into(),
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Beas> {
        &self.engine
    }

    /// Prepares a query into an owned handle (see [`Beas::prepare_shared`]).
    pub fn prepare(&self, query: &BeasQuery) -> Result<PreparedQuery<'static>> {
        self.engine.prepare_shared(query)
    }

    /// The engine's request statistics.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

/// The answer for a zero-budget spec: no access, no answers, no bound.
pub(crate) fn empty_answer(columns: Vec<String>) -> BeasAnswer {
    BeasAnswer {
        answers: Relation::empty(columns),
        eta: 0.0,
        exact: false,
        accessed: 0,
        planned_tariff: 0,
        budget: 0,
        partial: false,
    }
}

/// Assembles a [`BeasAnswer`] from a plan and its execution outcome.
pub(crate) fn answer_from(plan: &BoundedPlan, outcome: ExecutionOutcome) -> BeasAnswer {
    BeasAnswer {
        answers: outcome.answers,
        eta: outcome.eta,
        exact: plan.exact,
        accessed: outcome.accessed,
        planned_tariff: plan.tariff,
        budget: plan.budget,
        partial: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::AccuracyConfig;
    use crate::query::{AggQuery, RaQuery};
    use beas_relal::{
        AggFunc, Attribute, CompareOp, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
    };

    /// A deterministic Example-1-style database.
    fn example_db(n: i64) -> Database {
        let schema = DatabaseSchema::new(vec![
            RelationSchema::new(
                "person",
                vec![Attribute::id("pid"), Attribute::text("city")],
            ),
            RelationSchema::new("friend", vec![Attribute::id("pid"), Attribute::id("fid")]),
            RelationSchema::new(
                "poi",
                vec![
                    Attribute::text("address"),
                    Attribute::categorical("type"),
                    Attribute::text("city"),
                    Attribute::double("price"),
                ],
            ),
        ]);
        let mut db = Database::new(schema);
        let cities = ["NYC", "LA", "Chicago", "Boston"];
        for i in 0..n {
            db.insert_row("friend", vec![Value::Int(i % 10), Value::Int(i)])
                .unwrap();
            db.insert_row(
                "person",
                vec![Value::Int(i), Value::from(cities[(i % 4) as usize])],
            )
            .unwrap();
            db.insert_row(
                "poi",
                vec![
                    Value::from(format!("a{i}")),
                    Value::from(if i % 3 == 0 { "hotel" } else { "museum" }),
                    Value::from(cities[(i % 4) as usize]),
                    Value::Double(40.0 + (i % 60) as f64 * 2.0),
                ],
            )
            .unwrap();
        }
        db
    }

    fn constraints() -> Vec<ConstraintSpec> {
        vec![
            ConstraintSpec::new("friend", &["pid"], &["fid"]).without_extension(),
            ConstraintSpec::new("person", &["pid"], &["city"]).without_extension(),
            ConstraintSpec::new("poi", &["type", "city"], &["price"]),
        ]
    }

    fn engine(n: i64) -> Beas {
        Beas::builder(example_db(n))
            .constraints(constraints())
            .build()
            .unwrap()
    }

    /// Q1 of Example 1 with (city, price) output.
    fn q1(db: &Database) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(f, "pid", 1i64).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.join((p, "city"), (h, "city")).unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 95i64).unwrap();
        b.output(h, "city", "city").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    /// Q2 of Example 1.
    fn q2(db: &Database) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        b.bind_const(f, "pid", 1i64).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.output(p, "city", "city").unwrap();
        b.build().unwrap().into()
    }

    /// Hotels of a fixed (type, city) below a price, single atom. The city is
    /// pinned by an equality selection (not folded into the tableau) so it can
    /// still be projected into the output.
    fn hotels_in(db: &Database, city: &str, max_price: i64) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "city", CompareOp::Eq, city).unwrap();
        b.filter_const(h, "price", CompareOp::Le, max_price)
            .unwrap();
        b.output(h, "city", "city").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    #[test]
    fn boundedly_evaluable_query_is_answered_exactly() {
        let beas = engine(400);
        let q = q2(&beas.database());
        let answer = beas.answer(&q, ResourceSpec::Ratio(0.1)).unwrap();
        assert!(answer.exact);
        assert_eq!(answer.eta, 1.0);
        let truth = beas.exact_answers(&q).unwrap();
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
        assert!(answer.accessed <= answer.budget);
    }

    #[test]
    fn execution_respects_the_budget() {
        let beas = engine(400);
        let q = q1(&beas.database());
        for alpha in [0.05, 0.1, 0.3] {
            let spec = ResourceSpec::ratio(alpha).unwrap();
            let answer = beas.answer(&q, spec).unwrap();
            let budget = beas.catalog().budget(&spec).unwrap();
            assert!(
                answer.accessed <= budget,
                "accessed {} > budget {budget} at α={alpha}",
                answer.accessed
            );
        }
    }

    #[test]
    fn q1_answers_become_exact_with_enough_budget() {
        let beas = engine(400);
        let q = q1(&beas.database());
        let answer = beas.answer(&q, ResourceSpec::FULL).unwrap();
        assert!(answer.exact, "α = 1 must allow the exact plan");
        let truth = beas.exact_answers(&q).unwrap();
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
    }

    #[test]
    fn approximate_answers_satisfy_the_reported_bound() {
        let beas = engine(400);
        let q = q1(&beas.database());
        for alpha in [0.03, 0.08, 0.2, 0.5] {
            let answer = beas.answer(&q, ResourceSpec::Ratio(alpha)).unwrap();
            let report = beas
                .accuracy(&answer.answers, &q, &AccuracyConfig::default())
                .unwrap();
            assert!(
                report.accuracy + 1e-9 >= answer.eta,
                "α={alpha}: measured accuracy {} below promised η {}",
                report.accuracy,
                answer.eta
            );
        }
    }

    #[test]
    fn eta_is_monotone_in_alpha() {
        let beas = engine(400);
        let q = q1(&beas.database());
        let mut last = -1.0;
        for alpha in [0.02, 0.05, 0.1, 0.25, 0.6, 1.0] {
            let answer = beas.answer(&q, ResourceSpec::Ratio(alpha)).unwrap();
            assert!(answer.eta >= last - 1e-12);
            last = answer.eta;
        }
    }

    #[test]
    fn tuple_specs_and_ratio_specs_share_the_budget_vocabulary() {
        let beas = engine(400);
        let q = q1(&beas.database());
        let db_size = beas.database().total_tuples();
        let by_ratio = beas.answer(&q, ResourceSpec::Ratio(0.1)).unwrap();
        let by_tuples = beas.answer(&q, ResourceSpec::Tuples(db_size / 10)).unwrap();
        assert_eq!(by_ratio.budget, by_tuples.budget);
        assert_eq!(
            by_ratio.answers.clone().sorted(),
            by_tuples.answers.clone().sorted()
        );
    }

    #[test]
    fn zero_spec_answers_empty_without_access() {
        let beas = engine(100);
        let q = q1(&beas.database());
        let answer = beas.answer(&q, ResourceSpec::Ratio(0.0)).unwrap();
        assert_eq!(answer.accessed, 0);
        assert_eq!(answer.budget, 0);
        assert!(answer.answers.is_empty());
        assert_eq!(answer.answers.columns, vec!["city", "price"]);
        assert_eq!(answer.eta, 0.0);
        // planning a zero spec is an error: no plan can access zero tuples
        assert!(beas.plan(&q, ResourceSpec::Tuples(0)).is_err());
        // invalid specs are rejected outright
        assert!(beas.answer(&q, ResourceSpec::Ratio(-1.0)).is_err());
        assert!(beas.answer(&q, ResourceSpec::Ratio(2.0)).is_err());
    }

    #[test]
    fn builder_applies_options_and_policy() {
        let beas = Beas::builder(example_db(200))
            .constraints(constraints())
            .at_options(AtOptions { level_cap: Some(2) })
            .budget_policy(BudgetPolicy::capped(25))
            .build()
            .unwrap();
        let at = beas.catalog().at_family_for("poi").unwrap();
        assert!(beas.catalog().family(at).unwrap().num_levels() <= 2);
        assert_eq!(beas.catalog().budget(&ResourceSpec::FULL).unwrap(), 25);
        let q = hotels_in(&beas.database(), "NYC", 200);
        let answer = beas.answer(&q, ResourceSpec::FULL).unwrap();
        assert!(answer.accessed <= 25, "capped policy must bound access");
    }

    #[test]
    fn single_relation_selection_query_end_to_end() {
        let beas = engine(300);
        let q = hotels_in(&beas.database(), "NYC", 90);
        let answer = beas.answer(&q, ResourceSpec::Ratio(0.5)).unwrap();
        let truth = beas.exact_answers(&q).unwrap();
        assert!(answer.exact);
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
    }

    #[test]
    fn union_query_combines_branches() {
        let beas = engine(300);
        let a = match hotels_in(&beas.database(), "NYC", 200) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let b = match hotels_in(&beas.database(), "Chicago", 200) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let q: BeasQuery = BeasQuery::Ra(a.union(b));
        let answer = beas.answer(&q, ResourceSpec::FULL).unwrap();
        let truth = beas.exact_answers(&q).unwrap();
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
    }

    #[test]
    fn difference_never_returns_excluded_tuples() {
        // Theorem 6(5): if t ∈ Q2(D) then t ∉ ξ_α(D)
        let beas = engine(300);
        let all = match hotels_in(&beas.database(), "NYC", 1000) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let cheap = match hotels_in(&beas.database(), "NYC", 90) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let q: BeasQuery = BeasQuery::Ra(all.difference(cheap.clone()));
        let cheap_exact = beas.exact_answers(&BeasQuery::Ra(cheap)).unwrap();
        for alpha in [0.05, 0.2, 1.0] {
            let answer = beas.answer(&q, ResourceSpec::Ratio(alpha)).unwrap();
            let excluded = cheap_exact.to_rows();
            for row in answer.answers.rows() {
                assert!(
                    !excluded.contains(&row),
                    "excluded tuple {row:?} returned at α={alpha}"
                );
            }
        }
    }

    #[test]
    fn aggregate_count_query_end_to_end() {
        let beas = engine(300);
        let inner = match q1(&beas.database()) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let q: BeasQuery = AggQuery::new(inner, vec!["city".into()], AggFunc::Count, "price", "n")
            .unwrap()
            .into();
        let answer = beas.answer(&q, ResourceSpec::FULL).unwrap();
        let truth = beas.exact_answers(&q).unwrap();
        // counts grouped by city must match exactly under the exact plan
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());

        // under a small ratio the answer is approximate but non-empty and the
        // group keys are valid cities
        let approx = beas.answer(&q, ResourceSpec::Ratio(0.1)).unwrap();
        assert!(approx.eta <= 1.0);
        let report = beas
            .accuracy(&approx.answers, &q, &AccuracyConfig::default())
            .unwrap();
        assert!(report.accuracy >= 0.0);
    }

    #[test]
    fn aggregate_min_and_avg_queries_run() {
        let beas = engine(200);
        let inner = match hotels_in(&beas.database(), "NYC", 1000) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let small = ResourceSpec::Ratio(0.05);
        for agg in [AggFunc::Min, AggFunc::Max, AggFunc::Avg, AggFunc::Sum] {
            let q: BeasQuery = AggQuery::new(inner.clone(), vec!["city".into()], agg, "price", "v")
                .unwrap()
                .into();
            let exact = beas.answer(&q, ResourceSpec::FULL).unwrap();
            let truth = beas.exact_answers(&q).unwrap();
            assert_eq!(exact.answers.clone().sorted(), truth.sorted(), "agg {agg}");
            let approx = beas.answer(&q, small).unwrap();
            assert!(approx.accessed <= beas.catalog().budget(&small).unwrap());
        }
    }

    #[test]
    fn exact_ratio_is_small_for_bounded_queries() {
        let beas = engine(500);
        let r = beas.exact_ratio(&q2(&beas.database())).unwrap().unwrap();
        assert!(r < 0.2, "Q2 exact ratio should be small, got {r}");
        let r1 = beas.exact_ratio(&q1(&beas.database())).unwrap().unwrap();
        assert!(r1 >= r);
    }

    #[test]
    fn catalog_reports_index_sizes() {
        let beas = engine(200);
        let report = beas.catalog().index_size_report();
        assert!(report.constraint_index_tuples > 0);
        assert!(report.template_index_tuples > 0);
        assert!(report.total_ratio() > 0.0);
    }

    #[test]
    fn answer_rejects_invalid_query() {
        let beas = engine(50);
        let mut bad = match q2(&beas.database()) {
            BeasQuery::Ra(RaQuery::Spc(q)) => q,
            _ => unreachable!(),
        };
        bad.output.clear();
        assert!(beas.answer(&bad.into(), ResourceSpec::Ratio(0.5)).is_err());
    }

    #[test]
    fn insert_row_keeps_answers_consistent_with_a_rebuild() {
        let beas = engine(200);
        // insert a batch of new NYC hotels through the incremental C2 path
        for i in 0..25i64 {
            beas.insert_row(
                "poi",
                vec![
                    Value::from(format!("new{i}")),
                    Value::from("hotel"),
                    Value::from("NYC"),
                    Value::Double(50.0 + i as f64),
                ],
            )
            .unwrap();
        }
        assert_eq!(beas.catalog().db_size, beas.database().total_tuples());

        // a freshly rebuilt engine over the same (updated) data
        let rebuilt = Beas::builder(beas.database_arc())
            .constraints(constraints())
            .build()
            .unwrap();
        let q = hotels_in(&beas.database(), "NYC", 70);
        let incremental = beas.answer(&q, ResourceSpec::FULL).unwrap();
        let fresh = rebuilt.answer(&q, ResourceSpec::FULL).unwrap();
        assert!(incremental.exact && fresh.exact);
        assert_eq!(
            incremental.answers.clone().sorted(),
            fresh.answers.clone().sorted()
        );
        // the new tuples are actually visible
        let truth = beas.exact_answers(&q).unwrap();
        assert_eq!(incremental.answers.clone().sorted(), truth.sorted());

        // budgets keep being respected after the size change
        let spec = ResourceSpec::Ratio(0.1);
        let approx = beas.answer(&q, spec).unwrap();
        assert!(approx.accessed <= beas.catalog().budget(&spec).unwrap());
    }

    #[test]
    fn apply_update_batches_inserts_atomically() {
        let beas = engine(100);
        let before = beas.database().total_tuples();
        let bad = UpdateBatch::new()
            .insert("poi", vec![Value::from("x"), Value::from("hotel")])
            .insert("friend", vec![Value::Int(1), Value::Int(2)]);
        assert!(beas.apply_update(&bad).is_err());
        assert_eq!(
            beas.database().total_tuples(),
            before,
            "bad batch must not apply"
        );

        let good = UpdateBatch::new()
            .insert("friend", vec![Value::Int(1), Value::Int(500)])
            .insert("person", vec![Value::Int(500), Value::from("NYC")]);
        assert_eq!(beas.apply_update(&good).unwrap(), 2);
        assert_eq!(beas.database().total_tuples(), before + 2);
        assert_eq!(beas.catalog().db_size, before + 2);

        // the inserted friend edge is visible through a bounded answer
        let q = q2(&beas.database());
        let answer = beas.answer(&q, ResourceSpec::FULL).unwrap();
        let truth = beas.exact_answers(&q).unwrap();
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
        assert!(answer.answers.rows().any(|r| r == vec![Value::from("NYC")]));
    }

    #[test]
    fn apply_update_shares_untouched_relations_and_families() {
        use std::sync::Arc as StdArc;
        let beas = engine(150);
        let before = beas.snapshot();

        // a batch touching only `friend`
        let batch = UpdateBatch::new().insert("friend", vec![Value::Int(1), Value::Int(777)]);
        beas.apply_update(&batch).unwrap();
        let after = beas.snapshot();

        // untouched relations are structurally shared with the old snapshot…
        for rel in ["person", "poi"] {
            assert!(
                StdArc::ptr_eq(
                    before.database().relation_arc(rel).unwrap(),
                    after.database().relation_arc(rel).unwrap()
                ),
                "{rel} must be shared, not deep-copied"
            );
        }
        // …while the touched one detached
        assert!(!StdArc::ptr_eq(
            before.database().relation_arc("friend").unwrap(),
            after.database().relation_arc("friend").unwrap()
        ));

        // same for catalog families: only families on `friend` detach
        for id in 0..before.catalog().len() {
            let fam = before.catalog().family(id).unwrap();
            let shared = StdArc::ptr_eq(
                before.catalog().family_arc(id).unwrap(),
                after.catalog().family_arc(id).unwrap(),
            );
            if fam.relation == "friend" {
                assert!(!shared, "family {id} on friend must detach");
            } else {
                assert!(shared, "family {id} on {} must stay shared", fam.relation);
            }
        }
    }

    #[test]
    fn maintenance_takes_shared_references_and_swaps_snapshots() {
        // writers are &self: an engine shared behind an Arc keeps accepting
        // updates, and a snapshot taken before an update keeps serving the
        // state it saw
        let beas = std::sync::Arc::new(engine(100));
        let q = q2(&beas.database());
        let before_snapshot = beas.snapshot();
        let before_size = before_snapshot.database().total_tuples();

        beas.insert_row("friend", vec![Value::Int(1), Value::Int(900)])
            .unwrap();
        assert_eq!(beas.database().total_tuples(), before_size + 1);
        // the pre-update snapshot is immutable
        assert_eq!(before_snapshot.database().total_tuples(), before_size);
        assert_eq!(
            before_snapshot.catalog().version + 1,
            beas.catalog().version
        );

        // the new edge is served by post-update answers
        let answer = beas.answer(&q, ResourceSpec::FULL).unwrap();
        let truth = beas.exact_answers(&q).unwrap();
        assert_eq!(answer.answers.clone().sorted(), truth.sorted());
    }

    #[test]
    fn min_shard_rows_is_calibrated_and_overridable() {
        let calibrated = Beas::builder(example_db(50))
            .constraints(constraints())
            .build()
            .unwrap();
        assert_eq!(
            calibrated.min_shard_rows(),
            crate::executor::calibrated_min_shard_rows(),
            "builder default must be the startup calibration"
        );
        assert!(calibrated.min_shard_rows() >= 16);
        let pinned = Beas::builder(example_db(50))
            .constraints(constraints())
            .min_shard_rows(128)
            .build()
            .unwrap();
        assert_eq!(pinned.min_shard_rows(), 128);
        // zero is clamped
        let clamped = Beas::builder(example_db(50))
            .constraints(constraints())
            .min_shard_rows(0)
            .build()
            .unwrap();
        assert_eq!(clamped.min_shard_rows(), 1);
        // the threshold never affects answers
        let q = hotels_in(&pinned.database(), "NYC", 200);
        let a = pinned.answer(&q, ResourceSpec::FULL).unwrap();
        let b = calibrated.answer(&q, ResourceSpec::FULL).unwrap();
        assert_eq!(a.answers, b.answers);
    }

    #[test]
    fn stats_hook_counts_queries_updates_and_cache_traffic() {
        let beas = engine(200);
        assert_eq!(beas.stats(), crate::engine::EngineStats::default());
        let q = hotels_in(&beas.database(), "NYC", 200);

        let answer = beas.answer(&q, ResourceSpec::Ratio(0.2)).unwrap();
        let after_answer = beas.stats();
        assert_eq!(after_answer.queries, 1);
        assert_eq!(after_answer.tuples_accessed, answer.accessed as u64);

        // prepared path: first answer misses the plan cache, repeat hits
        let prepared = beas.prepare(&q).unwrap();
        prepared.answer(ResourceSpec::Ratio(0.2)).unwrap();
        prepared.answer(ResourceSpec::Ratio(0.2)).unwrap();
        let after_prepared = beas.stats();
        assert_eq!(after_prepared.queries, 3);
        assert_eq!(after_prepared.plan_cache_misses, 1);
        assert_eq!(after_prepared.plan_cache_hits, 1);

        // zero-budget answers count as queries with zero access
        beas.answer(&q, ResourceSpec::Ratio(0.0)).unwrap();
        assert_eq!(beas.stats().queries, 4);
        assert_eq!(beas.stats().tuples_accessed, after_prepared.tuples_accessed);

        // updates
        beas.insert_row(
            "poi",
            vec![
                Value::from("x"),
                Value::from("hotel"),
                Value::from("NYC"),
                Value::Double(50.0),
            ],
        )
        .unwrap();
        let after_update = beas.stats();
        assert_eq!(after_update.updates, 1);
        assert_eq!(after_update.rows_inserted, 1);

        // a cloned handle starts fresh
        assert_eq!(beas.clone().stats(), crate::engine::EngineStats::default());
    }

    #[test]
    fn prepare_shared_hands_out_static_handles() {
        let beas = Arc::new(engine(150));
        let q = hotels_in(&beas.database(), "NYC", 200);
        let direct = beas.answer(&q, ResourceSpec::Ratio(0.5)).unwrap();

        // the prepared handle may outlive every borrow of the engine
        let prepared: PreparedQuery<'static> = beas.prepare_shared(&q).unwrap();
        let handle = std::thread::spawn(move || prepared.answer(ResourceSpec::Ratio(0.5)).unwrap());
        let via_shared = handle.join().unwrap();
        assert_eq!(via_shared.answers.sorted(), direct.answers.clone().sorted());

        // the ServeHandle facade wraps the same machinery
        let serve = crate::engine::ServeHandle::new(Arc::clone(&beas));
        let prepared = serve.prepare(&q).unwrap();
        prepared.answer(ResourceSpec::Ratio(0.5)).unwrap();
        assert!(serve.stats().queries >= 3);
        assert!(Arc::ptr_eq(serve.engine(), &beas));
    }

    #[test]
    fn num_threads_is_configurable_and_defaults_to_available_parallelism() {
        let single = Beas::builder(example_db(50))
            .constraints(constraints())
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(single.num_threads(), 1);
        let auto = Beas::builder(example_db(50))
            .constraints(constraints())
            .build()
            .unwrap();
        assert!(auto.num_threads() >= 1);
        // zero is clamped to one
        let clamped = Beas::builder(example_db(50))
            .constraints(constraints())
            .num_threads(0)
            .build()
            .unwrap();
        assert_eq!(clamped.num_threads(), 1);
    }

    /// A fresh scratch directory for persistence tests.
    fn store_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("beas-core-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Answer digests across the Example-1 queries at several budgets — the
    /// bit-for-bit restart equivalence check (digests are NaN-safe where
    /// `Relation` equality is not).
    fn answer_digests(beas: &Beas) -> Vec<u64> {
        let db = beas.database();
        let mut digests = Vec::new();
        for q in [q1(&db), q2(&db), hotels_in(&db, "NYC", 200)] {
            for spec in [
                ResourceSpec::Ratio(0.1),
                ResourceSpec::Ratio(0.5),
                ResourceSpec::FULL,
            ] {
                let a = beas.answer(&q, spec).unwrap();
                digests.push(a.answers.digest());
                digests.push(a.eta.to_bits());
                digests.push(a.exact as u64);
            }
        }
        digests
    }

    #[test]
    fn persisted_engine_reopens_warm_with_identical_answers() {
        let dir = store_dir("warm-restart");
        // page aggressively so the reopened engine exercises the tiered path
        let opts = StoreOptions {
            resident_level_tuples: 16,
            ..StoreOptions::default()
        };
        let built = Beas::builder(example_db(200))
            .constraints(constraints())
            .persist_with(&dir, opts)
            .build()
            .unwrap();
        assert!(built.is_durable());
        assert!(built.stats().segments_written > 0);

        // updates after the snapshot land in the WAL
        for i in 0..3i64 {
            built
                .apply_update(
                    &UpdateBatch::new()
                        .insert("friend", vec![Value::Int(1), Value::Int(900 + i)])
                        .insert("person", vec![Value::Int(900 + i), Value::from("NYC")]),
                )
                .unwrap();
        }
        let want = answer_digests(&built);
        assert!(built.stats().wal_bytes > 0);
        drop(built);

        let reopened = Beas::open_with(&dir, opts).unwrap();
        let stats = reopened.stats();
        assert_eq!(stats.replayed_batches, 3);
        // replay absorbs into the families of the touched relations (friend,
        // person) and pages those in; the poi families stay on disk until a
        // query actually fetches from them
        let after_open = stats.page_ins;
        assert_eq!(answer_digests(&reopened), want);
        assert!(
            reopened.stats().page_ins > after_open,
            "answering pages the untouched fine levels in"
        );
        // replayed batches are not served updates
        assert_eq!(reopened.stats().updates, 0);
        // updates keep flowing (and keep being logged) after the restart
        reopened
            .apply_update(
                &UpdateBatch::new().insert("friend", vec![Value::Int(1), Value::Int(999)]),
            )
            .unwrap();
        assert_eq!(reopened.stats().updates, 1);
    }

    #[test]
    fn opening_without_a_wal_tail_pages_nothing_in() {
        let dir = store_dir("lazy-open");
        let opts = StoreOptions {
            resident_level_tuples: 0, // page everything
            ..StoreOptions::default()
        };
        let built = Beas::builder(example_db(120))
            .constraints(constraints())
            .persist_with(&dir, opts)
            .build()
            .unwrap();
        drop(built);
        let reopened = Beas::open_with(&dir, opts).unwrap();
        assert_eq!(
            reopened.stats().page_ins,
            0,
            "a replay-free open is metadata-only"
        );
        let q = q2(&reopened.database());
        reopened.answer(&q, ResourceSpec::Ratio(0.2)).unwrap();
        assert!(reopened.stats().page_ins > 0);
    }

    #[test]
    fn wal_compaction_folds_updates_into_a_new_snapshot() {
        let dir = store_dir("compaction");
        let opts = StoreOptions {
            compact_wal_batches: 2,
            ..StoreOptions::default()
        };
        let built = Beas::builder(example_db(60))
            .constraints(constraints())
            .persist_with(&dir, opts)
            .build()
            .unwrap();
        let store = Arc::clone(built.store().unwrap());
        assert_eq!(store.generation(), 1);
        for i in 0..5i64 {
            built
                .apply_update(
                    &UpdateBatch::new().insert("friend", vec![Value::Int(2), Value::Int(700 + i)]),
                )
                .unwrap();
        }
        // batches 2 and 4 crossed the threshold and compacted
        assert_eq!(store.generation(), 3);
        let want = answer_digests(&built);
        drop(built);

        // the tail after the last compaction (batch 5) replays on open
        let reopened = Beas::open_with(&dir, opts).unwrap();
        assert_eq!(reopened.stats().replayed_batches, 1);
        assert_eq!(answer_digests(&reopened), want);
    }

    #[test]
    fn calibration_survives_restart_and_stale_records_recalibrate() {
        let dir = store_dir("calibration");
        let built = Beas::builder(example_db(50))
            .constraints(constraints())
            .min_shard_rows(12345)
            .persist_to(&dir)
            .build()
            .unwrap();
        drop(built);

        // fresh record from this build on this machine: reused verbatim
        let reopened = Beas::open(&dir).unwrap();
        assert_eq!(reopened.min_shard_rows(), 12345);
        let store = Arc::clone(reopened.store().unwrap());
        // stale record (other core count): fall back to re-calibration and
        // refresh the persisted record
        store
            .save_calibration(&beas_store::Calibration {
                min_shard_rows: 777,
                package_version: env!("CARGO_PKG_VERSION").to_string(),
                parallelism: default_threads() + 1,
            })
            .unwrap();
        drop(reopened);
        let recalibrated = Beas::open(&dir).unwrap();
        assert_ne!(recalibrated.min_shard_rows(), 777);
        let refreshed = recalibrated.store().unwrap().load_calibration().unwrap();
        assert_eq!(
            refreshed.unwrap().min_shard_rows,
            recalibrated.min_shard_rows()
        );
    }

    #[test]
    fn clones_share_data_but_not_the_store() {
        let dir = store_dir("clone-durability");
        let built = Beas::builder(example_db(50))
            .constraints(constraints())
            .persist_to(&dir)
            .build()
            .unwrap();
        let clone = built.clone();
        assert!(built.is_durable());
        assert!(!clone.is_durable());
        // storage counters ride only on the durable handle
        assert!(built.stats().segments_written > 0);
        assert_eq!(clone.stats().segments_written, 0);
    }
}
