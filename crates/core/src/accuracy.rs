//! Accuracy measures for approximate answers (Sec. 3), plus the competing
//! measures used in the evaluation (MAC and F-measure).
//!
//! The **RC-measure** is the paper's contribution: it combines
//!
//! * a *coverage* ratio `F_cov = 1 / (1 + max_{t ∈ Q(D)} δ_cov(Q, S, t))` —
//!   how well the approximate answers `S` cover every exact answer, and
//! * a *relevance* ratio `F_rel = 1 / (1 + max_{s ∈ S} δ_rel(Q, D, s))` —
//!   how relevant every approximate answer is, allowing query relaxation
//!   `Q_r` so that sensible near-miss answers (the $99 hotel of Example 1)
//!   are not penalised as if they were arbitrary noise,
//!
//! and reports `accuracy = min(F_rel, F_cov)`.
//!
//! The relevance distance `δ_rel(Q, D, s) = min_{r ≥ 0} max(r, d(s, Q_r(D)))`
//! is evaluated through a finite grid of relaxation radii bounded by the
//! distance of `s` to the nearest exact answer (a valid upper bound), which
//! makes the measure computable with a handful of query evaluations per query
//! instead of one per candidate radius; this is an evaluation-side concern
//! only and is documented in DESIGN.md.

use std::collections::HashSet;

use beas_relal::{eval_query, eval_set, Database, DistanceKind, QueryExpr, RaExpr, Relation, Row};

use crate::error::Result;
use crate::query::BeasQuery;

/// Configuration of the RC-measure computation.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyConfig {
    /// Number of relaxation radii probed between 0 and the cap when computing
    /// relevance distances.
    pub relax_grid: usize,
    /// Relaxation cap used when there are no exact answers to bound the
    /// search (`Q(D) = ∅`).
    pub fallback_cap: f64,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig {
            relax_grid: 6,
            fallback_cap: 1000.0,
        }
    }
}

/// The RC-measure of a set of approximate answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcReport {
    /// Relevance ratio `F_rel ∈ \[0, 1\]`.
    pub relevance: f64,
    /// Coverage ratio `F_cov ∈ \[0, 1\]`.
    pub coverage: f64,
    /// `min(F_rel, F_cov)`.
    pub accuracy: f64,
    /// The worst relevance distance `max_s δ_rel`.
    pub max_relevance_distance: f64,
    /// The worst coverage distance `max_t δ_cov`.
    pub max_coverage_distance: f64,
}

/// Precision / recall / F1 of approximate answers under exact set membership.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FMeasure {
    /// |S ∩ Q(D)| / |S|.
    pub precision: f64,
    /// |S ∩ Q(D)| / |Q(D)|.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Converts a distance into an accuracy ratio `1 / (1 + d)`.
pub fn ratio_of_distance(d: f64) -> f64 {
    if d.is_infinite() {
        0.0
    } else {
        1.0 / (1.0 + d.max(0.0))
    }
}

/// Distance between two output rows: the worst per-column distance.
pub fn row_distance(kinds: &[DistanceKind], a: &Row, b: &Row) -> f64 {
    beas_relal::tuple_distance(kinds, a, b)
}

/// Relaxes every selection condition of an RA expression by `r`
/// (`σ_{A=c}` → `σ_{|dis(A,c)| ≤ r}`, `σ_{A=B}` → `σ_{|dis(A,B)| ≤ 2r}`,
/// Sec. 3.1). Conditions that already carry a tolerance keep the larger one.
pub fn relax_ra(expr: &RaExpr, r: f64) -> RaExpr {
    use beas_relal::PredicateAtom;
    match expr {
        RaExpr::Scan { .. } => expr.clone(),
        RaExpr::Select { input, predicate } => {
            let mut pred = predicate.clone();
            for atom in &mut pred.atoms {
                match atom {
                    PredicateAtom::ColConst { tol, distance, .. } => {
                        if distance.is_trivial() {
                            // trivial distances cannot be meaningfully relaxed
                            continue;
                        }
                        *tol = tol.max(r);
                    }
                    PredicateAtom::ColCol { tol, distance, .. } => {
                        if distance.is_trivial() {
                            continue;
                        }
                        *tol = tol.max(2.0 * r);
                    }
                }
            }
            RaExpr::Select {
                input: Box::new(relax_ra(input, r)),
                predicate: pred,
            }
        }
        RaExpr::Project { input, columns } => RaExpr::Project {
            input: Box::new(relax_ra(input, r)),
            columns: columns.clone(),
        },
        RaExpr::Product { left, right } => RaExpr::Product {
            left: Box::new(relax_ra(left, r)),
            right: Box::new(relax_ra(right, r)),
        },
        RaExpr::Union { left, right } => RaExpr::Union {
            left: Box::new(relax_ra(left, r)),
            right: Box::new(relax_ra(right, r)),
        },
        RaExpr::Difference { left, right } => RaExpr::Difference {
            // only the positive side is relaxed: relaxing the negated side
            // would remove answers instead of admitting near-misses
            left: Box::new(relax_ra(left, r)),
            right: right.clone(),
        },
        RaExpr::Rename { input, columns } => RaExpr::Rename {
            input: Box::new(relax_ra(input, r)),
            columns: columns.clone(),
        },
    }
}

/// Coverage distance of one exact answer `t` w.r.t. the approximate answers.
pub fn coverage_distance(kinds: &[DistanceKind], approx: &Relation, t: &Row) -> f64 {
    coverage_distance_rows(kinds, &approx.to_rows(), t)
}

/// [`coverage_distance`] over already-materialised answer rows (callers that
/// loop over many `t`s materialise the approximate side once).
fn coverage_distance_rows(kinds: &[DistanceKind], approx: &[Row], t: &Row) -> f64 {
    approx
        .iter()
        .map(|s| row_distance(kinds, s, t))
        .fold(f64::INFINITY, f64::min)
}

/// Computes the RC-measure of `approx` as an answer to `query` on `db`.
pub fn rc_accuracy(
    approx: &Relation,
    query: &BeasQuery,
    db: &Database,
    cfg: &AccuracyConfig,
) -> Result<RcReport> {
    let schema = &db.schema;
    let expr = query.to_query_expr(schema)?;
    let exact = eval_query(&expr, db)?;
    let kinds = query.output_distances(schema)?;

    match query {
        BeasQuery::Ra(_) => rc_for_rows(approx, &exact, &kinds, query, db, cfg, None),
        BeasQuery::Aggregate(agg) => {
            if agg.agg.is_extremum() {
                // min/max: distances inherit from the inner query (Sec. 3.2
                // case (1)); the aggregate value is in the active domain so the
                // plain row distance applies.
                rc_for_rows(
                    approx,
                    &exact,
                    &kinds,
                    query,
                    db,
                    cfg,
                    Some(agg.group_by.len()),
                )
            } else {
                // sum/count/avg (Sec. 3.2 case (2)): relevance is judged on
                // the group key only; coverage adds the aggregate-value gap.
                rc_for_rows(
                    approx,
                    &exact,
                    &kinds,
                    query,
                    db,
                    cfg,
                    Some(agg.group_by.len()),
                )
            }
        }
    }
}

/// Shared relevance/coverage computation.
///
/// `group_cols`: for aggregate queries, the number of leading group-by
/// columns; relevance of a sum/count/avg answer is judged on these columns
/// only and coverage uses the `d_agg` distance of Sec. 3.2.
#[allow(clippy::too_many_arguments)]
fn rc_for_rows(
    approx: &Relation,
    exact: &Relation,
    kinds: &[DistanceKind],
    query: &BeasQuery,
    db: &Database,
    cfg: &AccuracyConfig,
    group_cols: Option<usize>,
) -> Result<RcReport> {
    // rows are materialised once at this boundary; every pairwise loop below
    // runs over the same two row sets
    let approx_rows = approx.to_rows();
    let exact_rows = exact.to_rows();

    // ------------------------------------------------------------------ coverage
    let max_cov = if exact.is_empty() {
        0.0 // F_cov = 1 when Q(D) = ∅ (paper's special case (1))
    } else if approx.is_empty() {
        f64::INFINITY // F_cov = 0 when S = ∅ but Q(D) ≠ ∅ (special case (2))
    } else {
        let mut worst: f64 = 0.0;
        for t in &exact_rows {
            let d = match (group_cols, query) {
                (Some(g), BeasQuery::Aggregate(agg)) if !agg.agg.is_extremum() => {
                    // d_agg(s, t) = max_{A ∈ X} dis_A(s[A], t[A]) + |t[V] − s[V]|
                    approx_rows
                        .iter()
                        .map(|s| agg_coverage_distance(kinds, g, s, t))
                        .fold(f64::INFINITY, f64::min)
                }
                _ => coverage_distance_rows(kinds, &approx_rows, t),
            };
            worst = worst.max(d);
        }
        worst
    };

    // ----------------------------------------------------------------- relevance
    let max_rel = if approx.is_empty() {
        0.0
    } else {
        let (rel_kinds, rel_cols, duplicate_penalty): (Vec<DistanceKind>, usize, bool) =
            match (group_cols, query) {
                (Some(g), BeasQuery::Aggregate(agg)) if !agg.agg.is_extremum() => {
                    // relevance of s is the relevance of s[X] to π_X(Q')
                    (kinds[..g].to_vec(), g, true)
                }
                (Some(g), BeasQuery::Aggregate(_)) => (kinds.to_vec(), kinds.len().max(g), true),
                _ => (kinds.to_vec(), kinds.len(), false),
            };

        // duplicate group keys violate the group-by semantics → δ_rel = +∞
        let has_duplicate_keys = if duplicate_penalty {
            let g = group_cols.unwrap_or(0);
            let mut seen = HashSet::new();
            approx_rows
                .iter()
                .any(|r| !seen.insert(r[..g.min(r.len())].to_vec()))
        } else {
            false
        };
        if has_duplicate_keys {
            f64::INFINITY
        } else {
            let projected_approx: Vec<Row> = approx_rows
                .iter()
                .map(|r| r[..rel_cols.min(r.len())].to_vec())
                .collect();
            let projected_exact: Vec<Row> = exact_rows
                .iter()
                .map(|r| r[..rel_cols.min(r.len())].to_vec())
                .collect();
            relevance_distances(
                &projected_approx,
                &projected_exact,
                &rel_kinds,
                query,
                rel_cols,
                db,
                cfg,
            )?
            .into_iter()
            .fold(0.0f64, f64::max)
        }
    };

    let relevance = ratio_of_distance(max_rel);
    let coverage = ratio_of_distance(max_cov);
    Ok(RcReport {
        relevance,
        coverage,
        accuracy: relevance.min(coverage),
        max_relevance_distance: max_rel,
        max_coverage_distance: max_cov,
    })
}

/// `d_agg` coverage distance for sum/count/avg aggregates (Sec. 3.2 case 2).
fn agg_coverage_distance(kinds: &[DistanceKind], group_cols: usize, s: &Row, t: &Row) -> f64 {
    if s.len() != t.len() || s.len() < group_cols + 1 {
        return f64::INFINITY;
    }
    let mut key_d: f64 = 0.0;
    for i in 0..group_cols {
        key_d = key_d.max(kinds[i].distance(&s[i], &t[i]));
    }
    let v = s.len() - 1;
    let agg_gap = match (s[v].as_f64(), t[v].as_f64()) {
        (Some(a), Some(b)) => (a - b).abs(),
        _ => {
            if s[v] == t[v] {
                0.0
            } else {
                f64::INFINITY
            }
        }
    };
    key_d + agg_gap
}

/// Computes `δ_rel` for each approximate answer using a grid of relaxation
/// radii: `δ_rel(s) = min_r max(r, d(s, Q_r(D)))`, where the grid is bounded
/// by the distance of the worst answer to the nearest exact answer.
fn relevance_distances(
    approx: &[Row],
    exact: &[Row],
    kinds: &[DistanceKind],
    query: &BeasQuery,
    rel_cols: usize,
    db: &Database,
    cfg: &AccuracyConfig,
) -> Result<Vec<f64>> {
    // Upper bound per answer from the exact (r = 0) answers.
    let mut best: Vec<f64> = approx
        .iter()
        .map(|s| {
            exact
                .iter()
                .map(|t| row_distance(kinds, s, t))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    for b in &mut best {
        if b.is_infinite() {
            *b = cfg.fallback_cap;
        }
    }
    let cap = best.iter().cloned().fold(0.0f64, f64::max);
    if cap == 0.0 {
        return Ok(best); // every answer is already exact
    }

    // The inner RA query (aggregates judge relevance against Q', projected).
    let inner = query.ra().to_ra(&db.schema)?;
    let grid = relaxation_grid(cap, cfg.relax_grid);
    for r in grid {
        let relaxed = relax_ra(&inner, r);
        let answers = eval_set(&relaxed, db)?;
        if answers.is_empty() {
            continue;
        }
        let projected: Vec<Row> = answers
            .rows()
            .map(|row| row[..rel_cols.min(row.len())].to_vec())
            .collect();
        for (s, b) in approx.iter().zip(best.iter_mut()) {
            let d = projected
                .iter()
                .map(|u| row_distance(kinds, s, u))
                .fold(f64::INFINITY, f64::min);
            let candidate = r.max(d);
            if candidate < *b {
                *b = candidate;
            }
        }
    }
    Ok(best)
}

/// A small increasing grid of candidate relaxation radii in `(0, cap]`.
fn relaxation_grid(cap: f64, points: usize) -> Vec<f64> {
    let points = points.max(1);
    (1..=points)
        .map(|i| cap * i as f64 / points as f64)
        .collect()
}

/// A MAC-style accuracy in `\[0, 1\]` (adapted from the match-and-compare
/// measure of Ioannidis & Poosala used by the `Histo` baseline): the symmetric
/// average normalized distance between the two answer sets, turned into an
/// accuracy by `1 − distance`.
pub fn mac_accuracy(approx: &Relation, exact: &Relation, kinds: &[DistanceKind]) -> f64 {
    if exact.is_empty() && approx.is_empty() {
        return 1.0;
    }
    if exact.is_empty() || approx.is_empty() {
        return 0.0;
    }
    let arity = kinds.len();
    let exact_rows = exact.to_rows();
    let approx_rows = approx.to_rows();
    // per-attribute normalisation ranges over both sets
    let mut ranges = vec![0.0f64; arity];
    for (j, range) in ranges.iter_mut().enumerate() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in exact_rows.iter().chain(approx_rows.iter()) {
            if let Some(v) = row.get(j).and_then(|v| v.as_f64()) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        *range = if hi > lo { hi - lo } else { 0.0 };
    }
    let norm_dist = |a: &Row, b: &Row| -> f64 {
        let mut total = 0.0;
        for j in 0..arity {
            let d = kinds[j].distance(&a[j], &b[j]);
            let nd = if d == 0.0 {
                0.0
            } else if ranges[j] > 0.0 {
                (d / ranges[j]).min(1.0)
            } else {
                1.0
            };
            total += nd;
        }
        total / arity as f64
    };
    let dir = |from: &[Row], to: &[Row]| -> f64 {
        let sum: f64 = from
            .iter()
            .map(|a| {
                to.iter()
                    .map(|b| norm_dist(a, b))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        sum / from.len() as f64
    };
    let d = 0.5 * (dir(&exact_rows, &approx_rows) + dir(&approx_rows, &exact_rows));
    (1.0 - d).clamp(0.0, 1.0)
}

/// The classical F-measure under exact tuple membership.
pub fn f_measure(approx: &Relation, exact: &Relation) -> FMeasure {
    if approx.is_empty() || exact.is_empty() {
        let precision = 0.0;
        let recall = if exact.is_empty() { 1.0 } else { 0.0 };
        return FMeasure {
            precision,
            recall,
            f1: 0.0,
        };
    }
    let exact_set: HashSet<Row> = exact.rows().collect();
    let approx_set: HashSet<Row> = approx.rows().collect();
    let inter = approx_set.iter().filter(|r| exact_set.contains(*r)).count() as f64;
    let precision = inter / approx_set.len() as f64;
    let recall = inter / exact_set.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    FMeasure {
        precision,
        recall,
        f1,
    }
}

/// Convenience: evaluate the exact answers of a BEAS query.
pub fn exact_answers(query: &BeasQuery, db: &Database) -> Result<Relation> {
    let expr: QueryExpr = query.to_query_expr(&db.schema)?;
    Ok(eval_query(&expr, db)?)
}

/// Convenience: the coverage-only ratio of `approx` against `exact`.
pub fn coverage_ratio(approx: &Relation, exact: &Relation, kinds: &[DistanceKind]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    if approx.is_empty() {
        return 0.0;
    }
    let approx_rows = approx.to_rows();
    let worst = exact
        .rows()
        .map(|t| coverage_distance_rows(kinds, &approx_rows, &t))
        .fold(0.0f64, f64::max);
    ratio_of_distance(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AggQuery;
    use beas_relal::{
        AggFunc, Attribute, CompareOp, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
    };

    fn poi_db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::new(
            "poi",
            vec![
                Attribute::text("address"),
                Attribute::categorical("type"),
                Attribute::text("city"),
                Attribute::double("price"),
            ],
        )]);
        let mut db = Database::new(schema);
        for (addr, ty, city, price) in [
            ("a1", "hotel", "NYC", 90.0),
            ("a2", "hotel", "NYC", 99.0),
            ("a3", "hotel", "Chicago", 80.0),
            ("a4", "hotel", "Chicago", 140.0),
            ("a5", "museum", "NYC", 20.0),
        ] {
            db.insert_row(
                "poi",
                vec![
                    Value::from(addr),
                    Value::from(ty),
                    Value::from(city),
                    Value::Double(price),
                ],
            )
            .unwrap();
        }
        db
    }

    /// hotels with price ≤ 95, outputting (city, price)
    fn hotels_query(db: &Database) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 95i64).unwrap();
        b.output(h, "city", "city").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    fn rel(rows: Vec<Vec<Value>>) -> Relation {
        Relation::new(vec!["city".into(), "price".into()], rows).unwrap()
    }

    #[test]
    fn exact_answers_get_perfect_accuracy() {
        let db = poi_db();
        let q = hotels_query(&db);
        let exact = exact_answers(&q, &db).unwrap();
        assert_eq!(exact.len(), 2); // (NYC, 90), (Chicago, 80)
        let report = rc_accuracy(&exact, &q, &db, &AccuracyConfig::default()).unwrap();
        assert_eq!(report.accuracy, 1.0);
        assert_eq!(report.relevance, 1.0);
        assert_eq!(report.coverage, 1.0);
    }

    #[test]
    fn empty_answers_get_zero_accuracy_when_exact_nonempty() {
        let db = poi_db();
        let q = hotels_query(&db);
        let empty = rel(vec![]);
        let report = rc_accuracy(&empty, &q, &db, &AccuracyConfig::default()).unwrap();
        assert_eq!(report.accuracy, 0.0);
        assert_eq!(report.coverage, 0.0);
        assert_eq!(report.relevance, 1.0);
    }

    #[test]
    fn near_miss_answer_is_relevant_not_random() {
        // the $99 hotel of Example 1: excluded by Q but within relaxation 4
        let db = poi_db();
        let q = hotels_query(&db);
        let near = rel(vec![
            vec![Value::from("NYC"), Value::Double(99.0)],
            vec![Value::from("NYC"), Value::Double(90.0)],
            vec![Value::from("Chicago"), Value::Double(80.0)],
        ]);
        let report = rc_accuracy(&near, &q, &db, &AccuracyConfig::default()).unwrap();
        // relevance distance of the $99 answer should be ≤ 9 (distance to the
        // $90 exact answer) and in fact ≤ 4 thanks to relaxation
        assert!(report.max_relevance_distance <= 9.0 + 1e-9);
        assert!(report.coverage == 1.0);
        assert!(report.accuracy > 0.0);

        // a wildly wrong answer has much lower relevance
        let far = rel(vec![vec![Value::from("NYC"), Value::Double(500.0)]]);
        let far_report = rc_accuracy(&far, &q, &db, &AccuracyConfig::default()).unwrap();
        assert!(far_report.relevance < report.relevance);
    }

    #[test]
    fn f_measure_is_zero_for_disjoint_but_close_answers() {
        // the motivating Example 2: F-measure says 0, RC stays positive
        let db = poi_db();
        let q = hotels_query(&db);
        let near = rel(vec![vec![Value::from("NYC"), Value::Double(99.0)]]);
        let exact = exact_answers(&q, &db).unwrap();
        let f = f_measure(&near, &exact);
        assert_eq!(f.f1, 0.0);
        let rc = rc_accuracy(&near, &q, &db, &AccuracyConfig::default()).unwrap();
        assert!(rc.relevance > 0.0);
    }

    #[test]
    fn coverage_detects_missing_exact_answers() {
        let db = poi_db();
        let q = hotels_query(&db);
        // only covers the NYC answer; Chicago (80) is 10 away on price and
        // infinitely away on city (trivial distance)
        let partial = rel(vec![vec![Value::from("NYC"), Value::Double(90.0)]]);
        let report = rc_accuracy(&partial, &q, &db, &AccuracyConfig::default()).unwrap();
        assert_eq!(report.relevance, 1.0);
        assert_eq!(report.coverage, 0.0, "uncovered city has infinite distance");
    }

    #[test]
    fn empty_exact_answers_mean_full_coverage() {
        let db = poi_db();
        // hotels below 10 do not exist
        let mut b = SpcQueryBuilder::new(&db.schema);
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 10i64).unwrap();
        b.output(h, "price", "price").unwrap();
        let q: BeasQuery = b.build().unwrap().into();
        let approx = Relation::new(vec!["price".into()], vec![vec![Value::Double(20.0)]]).unwrap();
        let report = rc_accuracy(&approx, &q, &db, &AccuracyConfig::default()).unwrap();
        assert_eq!(report.coverage, 1.0);
        assert!(report.relevance > 0.0);
    }

    #[test]
    fn aggregate_count_accuracy_uses_dagg() {
        let db = poi_db();
        let q_ra = match hotels_query(&db) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let agg: BeasQuery = AggQuery::new(q_ra, vec!["city".into()], AggFunc::Count, "price", "n")
            .unwrap()
            .into();
        let exact = exact_answers(&agg, &db).unwrap();
        assert_eq!(exact.len(), 2); // NYC: 1, Chicago: 1 hotels ≤ 95

        // approximate counts off by one
        let approx = Relation::new(
            vec!["city".into(), "n".into()],
            vec![
                vec![Value::from("NYC"), Value::Double(2.0)],
                vec![Value::from("Chicago"), Value::Double(1.0)],
            ],
        )
        .unwrap();
        let report = rc_accuracy(&approx, &agg, &db, &AccuracyConfig::default()).unwrap();
        assert!(report.coverage <= 1.0 / (1.0 + 1.0) + 1e-9);
        assert!(report.relevance > 0.9, "group keys are exactly relevant");
        assert!(report.accuracy > 0.0);
    }

    #[test]
    fn aggregate_duplicate_group_keys_kill_relevance() {
        let db = poi_db();
        let q_ra = match hotels_query(&db) {
            BeasQuery::Ra(q) => q,
            _ => unreachable!(),
        };
        let agg: BeasQuery = AggQuery::new(q_ra, vec!["city".into()], AggFunc::Count, "price", "n")
            .unwrap()
            .into();
        let approx = Relation::new(
            vec!["city".into(), "n".into()],
            vec![
                vec![Value::from("NYC"), Value::Double(1.0)],
                vec![Value::from("NYC"), Value::Double(2.0)],
            ],
        )
        .unwrap();
        let report = rc_accuracy(&approx, &agg, &db, &AccuracyConfig::default()).unwrap();
        assert_eq!(report.relevance, 0.0);
        assert_eq!(report.accuracy, 0.0);
    }

    #[test]
    fn mac_accuracy_rewards_close_sets() {
        let kinds = [DistanceKind::Trivial, DistanceKind::Numeric];
        let exact = rel(vec![
            vec![Value::from("NYC"), Value::Double(90.0)],
            vec![Value::from("Chicago"), Value::Double(80.0)],
        ]);
        let perfect = mac_accuracy(&exact, &exact, &kinds);
        assert!((perfect - 1.0).abs() < 1e-9);
        let close = rel(vec![
            vec![Value::from("NYC"), Value::Double(91.0)],
            vec![Value::from("Chicago"), Value::Double(82.0)],
        ]);
        let far = rel(vec![vec![Value::from("NYC"), Value::Double(500.0)]]);
        let a_close = mac_accuracy(&close, &exact, &kinds);
        let a_far = mac_accuracy(&far, &exact, &kinds);
        assert!(a_close > a_far);
        assert!(a_close > 0.5);
        assert_eq!(mac_accuracy(&rel(vec![]), &exact, &kinds), 0.0);
        assert_eq!(mac_accuracy(&rel(vec![]), &rel(vec![]), &kinds), 1.0);
    }

    #[test]
    fn f_measure_counts_exact_matches() {
        let exact = rel(vec![
            vec![Value::from("NYC"), Value::Double(90.0)],
            vec![Value::from("Chicago"), Value::Double(80.0)],
        ]);
        let approx = rel(vec![
            vec![Value::from("NYC"), Value::Double(90.0)],
            vec![Value::from("LA"), Value::Double(10.0)],
        ]);
        let f = f_measure(&approx, &exact);
        assert!((f.precision - 0.5).abs() < 1e-9);
        assert!((f.recall - 0.5).abs() < 1e-9);
        assert!((f.f1 - 0.5).abs() < 1e-9);
        let empty = f_measure(&rel(vec![]), &exact);
        assert_eq!(empty.f1, 0.0);
    }

    #[test]
    fn relax_ra_widens_constants_not_trivial_columns() {
        let db = poi_db();
        let q = hotels_query(&db);
        let expr = q.ra().to_ra(&db.schema).unwrap();
        let relaxed = relax_ra(&expr, 5.0);
        let strict = eval_set(&expr, &db).unwrap();
        let wide = eval_set(&relaxed, &db).unwrap();
        assert!(wide.len() >= strict.len());
        // relaxation by 5 admits the $99 hotel and (because the categorical
        // `type` distance is 1 ≤ 5) the cheap museum, but not the $140 hotel
        assert_eq!(wide.len(), 4);
    }

    #[test]
    fn ratio_of_distance_handles_infinity() {
        assert_eq!(ratio_of_distance(0.0), 1.0);
        assert_eq!(ratio_of_distance(1.0), 0.5);
        assert_eq!(ratio_of_distance(f64::INFINITY), 0.0);
    }

    #[test]
    fn coverage_ratio_matches_manual_computation() {
        let kinds = [DistanceKind::Trivial, DistanceKind::Numeric];
        let exact = rel(vec![vec![Value::from("NYC"), Value::Double(90.0)]]);
        let approx = rel(vec![vec![Value::from("NYC"), Value::Double(95.0)]]);
        let c = coverage_ratio(&approx, &exact, &kinds);
        assert!((c - 1.0 / 6.0).abs() < 1e-9);
    }
}
