//! Error type for the BEAS core.

use std::fmt;

use beas_access::AccessError;
use beas_relal::RelalError;

/// Result alias for `beas-core`.
pub type Result<T> = std::result::Result<T, BeasError>;

/// Errors raised by planning or executing bounded query plans.
#[derive(Debug, Clone, PartialEq)]
pub enum BeasError {
    /// Error from the relational substrate.
    Relal(RelalError),
    /// Error from the access schema layer (including budget violations).
    Access(AccessError),
    /// The planner could not produce a plan (e.g. the catalog lacks an `A_t`
    /// family for a relation used by the query).
    Planning(String),
    /// The query is structurally unsupported (e.g. an aggregate over a column
    /// missing from the inner query's output).
    UnsupportedQuery(String),
    /// Error from the durable storage layer (WAL append, snapshot I/O,
    /// corrupt or unsupported store files).
    Storage(String),
}

impl fmt::Display for BeasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeasError::Relal(e) => write!(f, "{e}"),
            BeasError::Access(e) => write!(f, "{e}"),
            BeasError::Planning(msg) => write!(f, "planning error: {msg}"),
            BeasError::UnsupportedQuery(msg) => write!(f, "unsupported query: {msg}"),
            BeasError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for BeasError {}

impl From<RelalError> for BeasError {
    fn from(e: RelalError) -> Self {
        BeasError::Relal(e)
    }
}

impl From<AccessError> for BeasError {
    fn from(e: AccessError) -> Self {
        BeasError::Access(e)
    }
}

impl From<beas_store::StoreError> for BeasError {
    /// Flattened to the message: `StoreError` is not `Clone`, `BeasError` is.
    fn from(e: beas_store::StoreError) -> Self {
        BeasError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BeasError = RelalError::UnknownRelation("r".into()).into();
        assert!(e.to_string().contains("unknown relation"));
        let e: BeasError = AccessError::UnknownFamily(3).into();
        assert!(e.to_string().contains("family 3"));
        let e = BeasError::Planning("no catalog family for poi".into());
        assert!(e.to_string().contains("no catalog family"));
    }
}
