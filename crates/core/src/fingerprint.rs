//! Query fingerprints: the cross-handle identity of a query.
//!
//! The engine-level shared plan cache (see [`crate::prepared`]) is keyed on
//! `(query fingerprint, catalog version, budget)`, so *independent*
//! [`PreparedQuery`](crate::PreparedQuery) and
//! [`ServeHandle`](crate::ServeHandle) instances asking the same question
//! share one cached [`BoundedPlan`](crate::BoundedPlan) instead of each
//! re-planning it. A [`QueryFingerprint`] is a 128-bit structural hash of the
//! query's canonical rendering: two queries with the same atoms, tableau
//! terms, selections, composition and output produce the same fingerprint,
//! regardless of which handle (or which connection) built them.
//!
//! The fingerprint is computed once at prepare time and is deliberately wide
//! (two salted 64-bit [`FxHasher`] passes): at 128 bits an *accidental*
//! collision between distinct queries is negligible even for a server that
//! prepares billions of them. `FxHasher` is not collision-resistant against
//! an adversary, though, so the fingerprint is only the cache *key* — on
//! every hit the shared cache additionally compares the cached plan's query
//! against the requested one (see `SharedPlanCache::get`) and treats a
//! mismatch as a miss. That comparison is load-bearing: do not remove it to
//! save the hot-path equality check, or a crafted collision in the
//! multi-tenant serving cache could hand one tenant another tenant's plan.

use std::fmt;
use std::hash::Hasher;

use beas_relal::FxHasher;

use crate::query::BeasQuery;

/// A 128-bit structural fingerprint of a [`BeasQuery`] (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint {
    hi: u64,
    lo: u64,
}

impl QueryFingerprint {
    /// Fingerprints a query. Structurally equal queries (same atoms, terms,
    /// selections, composition, aggregation and output names) get equal
    /// fingerprints; the alias names chosen for atoms do participate, exactly
    /// like they do in query equality.
    pub fn of(query: &BeasQuery) -> Self {
        // the canonical rendering: the derived Debug format walks every field
        // of the tableau deterministically, so it is a faithful structural
        // serialization (used only as hash input, never parsed back)
        let canonical = format!("{query:?}");
        let mut hi = FxHasher::default();
        hi.write(b"beas-fp-hi");
        hi.write(canonical.as_bytes());
        let mut lo = FxHasher::default();
        lo.write(b"beas-fp-lo");
        lo.write(canonical.as_bytes());
        QueryFingerprint {
            hi: hi.finish(),
            lo: lo.finish(),
        }
    }

    /// The fingerprint as one 128-bit integer.
    pub fn as_u128(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beas_relal::{Attribute, CompareOp, DatabaseSchema, RelationSchema, SpcQueryBuilder};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![RelationSchema::new(
            "poi",
            vec![
                Attribute::categorical("type"),
                Attribute::text("city"),
                Attribute::double("price"),
            ],
        )])
    }

    fn hotels(max_price: i64) -> BeasQuery {
        let s = schema();
        let mut b = SpcQueryBuilder::new(&s);
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", CompareOp::Le, max_price)
            .unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    #[test]
    fn equal_queries_share_a_fingerprint_independent_of_the_builder() {
        let a = QueryFingerprint::of(&hotels(95));
        let b = QueryFingerprint::of(&hotels(95));
        assert_eq!(a, b);
        assert_eq!(a.to_string().len(), 32);
    }

    #[test]
    fn different_queries_get_different_fingerprints() {
        let a = QueryFingerprint::of(&hotels(95));
        let b = QueryFingerprint::of(&hotels(96));
        assert_ne!(a, b);
        assert_ne!(a.as_u128(), b.as_u128());
    }
}
