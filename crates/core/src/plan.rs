//! Bounded query plans: fetch plans, tariff estimation and per-position
//! resolutions (Sec. 2.2 and Sec. 5).
//!
//! A bounded plan is canonical, `ξ_α = (ξ_F, ξ_E)` (Lemma 3): the *fetching
//! plan* `ξ_F` is a DAG of [`FetchNode`]s, each corresponding to one
//! `fetch(X ∈ T, R, Y, ψ)` operation whose input keys come from constants of
//! the query and/or from the output of an earlier fetch; the *evaluation plan*
//! `ξ_E` then runs the (relaxation-compensated) relational operations of the
//! query over the fetched data — it is built by the executor from the
//! per-position resolutions recorded here.
//!
//! The number of tuples a plan accesses (its *tariff*) is estimated from the
//! cardinality bounds `N` of the access templates alone, without touching the
//! database — property (2) of the approximation scheme.

use std::collections::BTreeSet;

use beas_access::{Catalog, FamilyId};
use beas_relal::{DatabaseSchema, SpcQuery, Term, Value};

use crate::error::{BeasError, Result};

/// Where one component of a fetch key comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum KeySource {
    /// A constant of the query.
    Const(Value),
    /// A column of the input node's output (identified by the attribute name
    /// in that node's output relation).
    Column(String),
}

/// One `fetch(X ∈ T, R, Y, ψ)` operation of a fetching plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchNode {
    /// Node id (index into the plan's node list).
    pub id: usize,
    /// The template family used.
    pub family: FamilyId,
    /// The resolution level of the family used (mutated by `chAT`).
    pub level: usize,
    /// The relation fetched from.
    pub relation: String,
    /// Index of the SPC leaf (within the planned [`RaQuery`](crate::RaQuery))
    /// this node belongs to.
    pub subquery: usize,
    /// Index of the atom within the leaf this node fetches for.
    pub atom: usize,
    /// The node whose output supplies the variable components of the key, if
    /// any.
    pub input_node: Option<usize>,
    /// One entry per X attribute of the family, in the family's X order.
    pub key_sources: Vec<KeySource>,
    /// Whether this node's output is the fetched relation used for its atom in
    /// the evaluation plan (the "completion" fetch of the atom).
    pub is_completion: bool,
}

impl FetchNode {
    /// `true` when the key is built from constants only.
    pub fn constant_key(&self) -> bool {
        self.input_node.is_none()
    }
}

/// The fetching plan `ξ_F`: fetch nodes in execution (topological) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FetchPlan {
    /// The fetch nodes. A node may only reference earlier nodes as input.
    pub nodes: Vec<FetchNode>,
}

impl FetchPlan {
    /// Adds a node, assigning its id, and returns the id.
    pub fn push(&mut self, mut node: FetchNode) -> usize {
        node.id = self.nodes.len();
        debug_assert!(node.input_node.is_none_or(|i| i < node.id));
        self.nodes.push(node);
        node_id_of(&self.nodes)
    }

    /// The node with the given id.
    pub fn node(&self, id: usize) -> Result<&FetchNode> {
        self.nodes
            .get(id)
            .ok_or_else(|| BeasError::Planning(format!("unknown fetch node {id}")))
    }

    /// Estimated number of distinct keys probed by `node` (the size of its
    /// input relation `T`), derived from the `N` bounds of upstream templates.
    pub fn est_keys(&self, catalog: &Catalog, id: usize) -> Result<usize> {
        let node = self.node(id)?;
        match node.input_node {
            None => Ok(1),
            Some(input) => self.est_output_rows(catalog, input),
        }
    }

    /// Estimated number of rows output by `node`: `est_keys · N_level`, capped
    /// by the number of tuples stored at that level of the family (a fetch of
    /// distinct keys can never return more than the whole level).
    pub fn est_output_rows(&self, catalog: &Catalog, id: usize) -> Result<usize> {
        let node = self.node(id)?;
        let family = catalog.family(node.family)?;
        let level = family.level(node.level)?;
        let n = level.n.max(1);
        let per_key = self.est_keys(catalog, id)?.saturating_mul(n);
        Ok(per_key.min(level.stored_tuples().max(1)))
    }

    /// Estimated tariff of one node: the number of tuples its fetch accesses.
    pub fn node_tariff(&self, catalog: &Catalog, id: usize) -> Result<usize> {
        self.est_output_rows(catalog, id)
    }

    /// Estimated total tariff of the plan (`tariff(ξ_F)` in Fig. 3).
    pub fn total_tariff(&self, catalog: &Catalog) -> Result<usize> {
        let mut total = 0usize;
        for node in &self.nodes {
            total = total.saturating_add(self.node_tariff(catalog, node.id)?);
        }
        Ok(total)
    }

    /// The family ids used by the plan (deduplicated).
    pub fn used_families(&self) -> Vec<FamilyId> {
        let mut ids: Vec<FamilyId> = self.nodes.iter().map(|n| n.family).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The resolution with which `attr` of the node's relation is fetched:
    /// `0` when the attribute is part of the lookup key (its values come from
    /// exactly-covered variables or constants), the family's level resolution
    /// when it is part of Y, and `+∞` when the node does not produce it.
    pub fn attr_resolution(&self, catalog: &Catalog, id: usize, attr: &str) -> Result<f64> {
        let node = self.node(id)?;
        let family = catalog.family(node.family)?;
        if family.x.iter().any(|a| a == attr) {
            return Ok(0.0);
        }
        match family.resolution_of(node.level, attr) {
            Some(r) => Ok(r),
            None => Ok(f64::INFINITY),
        }
    }
}

fn node_id_of(nodes: &[FetchNode]) -> usize {
    nodes.len() - 1
}

/// Per-leaf planning information: which fetch node provides each atom's
/// relation for the evaluation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafPlan {
    /// Index of the SPC leaf within the query.
    pub leaf: usize,
    /// `atom_nodes[i]` is the id of the completion [`FetchNode`] of atom `i`.
    pub atom_nodes: Vec<usize>,
}

impl LeafPlan {
    /// Resolution of a tableau position `(atom, attribute index)` under the
    /// current plan.
    pub fn position_resolution(
        &self,
        plan: &FetchPlan,
        catalog: &Catalog,
        schema: &DatabaseSchema,
        leaf: &SpcQuery,
        pos: beas_relal::Position,
    ) -> Result<f64> {
        let node_id = *self
            .atom_nodes
            .get(pos.0)
            .ok_or_else(|| BeasError::Planning(format!("no completion node for atom {}", pos.0)))?;
        let atom = &leaf.atoms[pos.0];
        let rel_schema = schema.relation(&atom.relation)?;
        let attr = rel_schema
            .attributes
            .get(pos.1)
            .ok_or_else(|| BeasError::Planning(format!("bad position {pos:?}")))?;
        plan.attr_resolution(catalog, node_id, &attr.name)
    }
}

/// The attribute positions of each atom that the plan must provide: constants
/// (used as selection conditions), output variables, variables in explicit
/// selection conditions, and join variables shared between atoms.
pub fn needed_positions(leaf: &SpcQuery) -> Vec<BTreeSet<usize>> {
    let mut needed: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); leaf.atoms.len()];
    let var_positions = leaf.var_positions();

    // constants
    for (ai, terms) in leaf.terms.iter().enumerate() {
        for (pi, term) in terms.iter().enumerate() {
            if term.is_const() {
                needed[ai].insert(pi);
            }
        }
    }
    // join variables (occurring in more than one atom or more than once)
    for positions in var_positions.values() {
        if positions.len() > 1 {
            for &(ai, pi) in positions {
                needed[ai].insert(pi);
            }
        }
    }
    // output variables
    let mark_var = |v: usize, needed: &mut Vec<BTreeSet<usize>>| {
        if let Some(positions) = var_positions.get(&v) {
            for &(ai, pi) in positions {
                needed[ai].insert(pi);
            }
        }
    };
    for out in &leaf.output {
        mark_var(out.var, &mut needed);
    }
    // selection variables
    for sel in &leaf.selections {
        match sel {
            beas_relal::SelCond::VarConst { var, .. } => mark_var(*var, &mut needed),
            beas_relal::SelCond::VarVar { left, right, .. } => {
                mark_var(*left, &mut needed);
                mark_var(*right, &mut needed);
            }
        }
    }
    needed
}

/// Returns the term at a position.
pub fn term_at(leaf: &SpcQuery, pos: beas_relal::Position) -> &Term {
    &leaf.terms[pos.0][pos.1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use beas_access::{build_constraint, build_extended, AtOptions};
    use beas_relal::{Attribute, CompareOp, Database, RelationSchema, SpcQueryBuilder};

    fn example_db() -> Database {
        let schema = DatabaseSchema::new(vec![
            RelationSchema::new(
                "person",
                vec![Attribute::id("pid"), Attribute::text("city")],
            ),
            RelationSchema::new("friend", vec![Attribute::id("pid"), Attribute::id("fid")]),
            RelationSchema::new(
                "poi",
                vec![
                    Attribute::text("address"),
                    Attribute::categorical("type"),
                    Attribute::text("city"),
                    Attribute::double("price"),
                ],
            ),
        ]);
        let mut db = Database::new(schema);
        for i in 0..40i64 {
            db.insert_row("friend", vec![Value::Int(i % 8), Value::Int(i)])
                .unwrap();
            db.insert_row(
                "person",
                vec![
                    Value::Int(i),
                    Value::from(if i % 2 == 0 { "NYC" } else { "LA" }),
                ],
            )
            .unwrap();
            db.insert_row(
                "poi",
                vec![
                    Value::from(format!("a{i}")),
                    Value::from(if i % 3 == 0 { "hotel" } else { "museum" }),
                    Value::from(if i % 2 == 0 { "NYC" } else { "LA" }),
                    Value::Double(40.0 + i as f64 * 2.0),
                ],
            )
            .unwrap();
        }
        db
    }

    fn catalog_for(db: &Database) -> Catalog {
        let mut catalog = Catalog::for_database(db, &AtOptions::default()).unwrap();
        catalog.add_family(build_constraint(db, "friend", &["pid"], &["fid"]).unwrap());
        catalog.add_family(build_constraint(db, "person", &["pid"], &["city"]).unwrap());
        catalog.add_family(
            build_extended(db, "poi", &["type", "city"], &["price", "address"]).unwrap(),
        );
        catalog
    }

    fn q1(db: &Database) -> SpcQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(f, "pid", 1i64).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.join((p, "city"), (h, "city")).unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 95i64).unwrap();
        b.output(h, "address", "address").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn needed_positions_cover_constants_joins_selections_and_output() {
        let db = example_db();
        let q = q1(&db);
        let needed = needed_positions(&q);
        // friend: pid (const), fid (join)
        assert_eq!(needed[0], BTreeSet::from([0, 1]));
        // person: pid (join), city (join)
        assert_eq!(needed[1], BTreeSet::from([0, 1]));
        // poi: address (output), type (const), city (join), price (sel+output)
        assert_eq!(needed[2], BTreeSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn tariff_estimation_composes_n_bounds() {
        let db = example_db();
        let catalog = catalog_for(&db);
        let friend_c = catalog.constraints_for("friend")[0];
        let person_c = catalog.constraints_for("person")[0];

        let mut plan = FetchPlan::default();
        let n0 = plan.push(FetchNode {
            id: 0,
            family: friend_c,
            level: 0,
            relation: "friend".into(),
            subquery: 0,
            atom: 0,
            input_node: None,
            key_sources: vec![KeySource::Const(Value::Int(1))],
            is_completion: true,
        });
        let n1 = plan.push(FetchNode {
            id: 0,
            family: person_c,
            level: 0,
            relation: "person".into(),
            subquery: 0,
            atom: 1,
            input_node: Some(n0),
            key_sources: vec![KeySource::Column("fid".into())],
            is_completion: true,
        });
        let friend_n = catalog.family(friend_c).unwrap().levels[0].n;
        assert_eq!(plan.est_keys(&catalog, n0).unwrap(), 1);
        assert_eq!(plan.est_output_rows(&catalog, n0).unwrap(), friend_n);
        assert_eq!(plan.est_keys(&catalog, n1).unwrap(), friend_n);
        // person constraint returns 1 city per pid
        assert_eq!(plan.est_output_rows(&catalog, n1).unwrap(), friend_n);
        assert_eq!(plan.total_tariff(&catalog).unwrap(), 2 * friend_n);
        assert_eq!(plan.used_families(), {
            let mut v = vec![friend_c, person_c];
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn attr_resolution_distinguishes_key_and_fetched_attributes() {
        let db = example_db();
        let catalog = catalog_for(&db);
        let poi_t = *catalog
            .families_for("poi")
            .iter()
            .find(|&&id| {
                let f = catalog.family(id).unwrap();
                !f.is_constraint() && !f.is_full_relation()
            })
            .unwrap();
        let mut plan = FetchPlan::default();
        let n = plan.push(FetchNode {
            id: 0,
            family: poi_t,
            level: 0,
            relation: "poi".into(),
            subquery: 0,
            atom: 2,
            input_node: None,
            key_sources: vec![
                KeySource::Const(Value::from("hotel")),
                KeySource::Const(Value::from("NYC")),
            ],
            is_completion: true,
        });
        // key attributes are exact
        assert_eq!(plan.attr_resolution(&catalog, n, "type").unwrap(), 0.0);
        assert_eq!(plan.attr_resolution(&catalog, n, "city").unwrap(), 0.0);
        // fetched attributes carry the level-0 resolution (> 0 here)
        assert!(plan.attr_resolution(&catalog, n, "price").unwrap() > 0.0);
        // attributes the family does not produce are unknown → ∞
        assert!(plan
            .attr_resolution(&catalog, n, "nonexistent")
            .unwrap()
            .is_infinite());
        // the exact level brings the resolution to 0
        let exact = catalog.family(poi_t).unwrap().exact_level();
        let mut plan2 = plan.clone();
        plan2.nodes[n].level = exact;
        assert_eq!(plan2.attr_resolution(&catalog, n, "price").unwrap(), 0.0);
    }

    #[test]
    fn leaf_plan_position_resolution_uses_completion_node() {
        let db = example_db();
        let catalog = catalog_for(&db);
        let q = q1(&db);
        let poi_t = *catalog
            .families_for("poi")
            .iter()
            .find(|&&id| {
                let f = catalog.family(id).unwrap();
                !f.is_constraint() && !f.is_full_relation()
            })
            .unwrap();
        let friend_c = catalog.constraints_for("friend")[0];
        let person_c = catalog.constraints_for("person")[0];
        let mut plan = FetchPlan::default();
        for (i, (fam, rel)) in [(friend_c, "friend"), (person_c, "person"), (poi_t, "poi")]
            .into_iter()
            .enumerate()
        {
            plan.push(FetchNode {
                id: 0,
                family: fam,
                level: 0,
                relation: rel.into(),
                subquery: 0,
                atom: i,
                input_node: None,
                key_sources: vec![],
                is_completion: true,
            });
        }
        let leaf_plan = LeafPlan {
            leaf: 0,
            atom_nodes: vec![0, 1, 2],
        };
        // poi.price (atom 2, attr 3) is fetched approximately at level 0
        let r = leaf_plan
            .position_resolution(&plan, &catalog, &db.schema, &q, (2, 3))
            .unwrap();
        assert!(r > 0.0);
        // friend.fid (atom 0, attr 1) is fetched by a constraint → exact
        let r = leaf_plan
            .position_resolution(&plan, &catalog, &db.schema, &q, (0, 1))
            .unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn unknown_node_lookup_errors() {
        let plan = FetchPlan::default();
        assert!(plan.node(0).is_err());
        let catalog = Catalog::new(DatabaseSchema::default(), 0);
        assert!(plan.est_keys(&catalog, 3).is_err());
    }
}
