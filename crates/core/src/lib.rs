//! # beas-core — resource-bounded approximate query answering
//!
//! This crate implements BEAS ("Boundedly EvAluable Sql"), the framework of
//! *Data Driven Approximation with Bounded Resources* (Cao & Fan, VLDB 2017):
//! given a dataset `D`, an access schema `A` with `D |= A`, a query `Q`
//! (SPC, RA, or aggregate) and a resource ratio `α ∈ (0, 1]`, it produces an
//! α-bounded query plan `ξ_α` and a deterministic accuracy lower bound `η`
//! such that executing `ξ_α` accesses at most `α·|D|` tuples and the answers
//! have RC-accuracy at least `η`.
//!
//! The main entry points are:
//!
//! * [`Beas`] — the session-oriented, `Send + Sync` engine (built through
//!   [`BeasBuilder`], owns its database, Fig. 2 of the paper), with
//!   [`Beas::prepare`] for plan-cached repeated queries and
//!   [`Beas::insert_row`] / [`Beas::apply_update`] for incremental
//!   maintenance (component C2) — readers run on immutable snapshots and are
//!   never blocked by writers, execution shards across
//!   [`BeasBuilder::num_threads`] cores deterministically;
//! * [`ResourceSpec`] (re-exported from `beas-access`) — the typed budget
//!   vocabulary used by engine, planner and baselines alike;
//! * [`Planner`] — the approximation scheme `Γ_A` (chase + `chAT`);
//! * [`execute_plan`] — runs a bounded plan under a budget-enforcing fetch
//!   session;
//! * [`accuracy`] — the RC measure, MAC and F-measure used in the evaluation.
//!
//! ```
//! use beas_core::{Beas, ConstraintSpec, BeasQuery, ResourceSpec};
//! use beas_relal::{Attribute, Database, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value};
//!
//! // a tiny database of points of interest
//! let schema = DatabaseSchema::new(vec![RelationSchema::new(
//!     "poi",
//!     vec![Attribute::categorical("type"), Attribute::text("city"), Attribute::double("price")],
//! )]);
//! let mut db = Database::new(schema);
//! for i in 0..100i64 {
//!     db.insert_row("poi", vec![
//!         Value::from(if i % 2 == 0 { "hotel" } else { "museum" }),
//!         Value::from(if i % 4 == 0 { "NYC" } else { "LA" }),
//!         Value::Double(50.0 + i as f64),
//!     ]).unwrap();
//! }
//!
//! // offline: build the access schema (A_t plus one constraint); the engine
//! // takes ownership of the database
//! let beas = Beas::builder(db)
//!     .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
//!     .build()
//!     .unwrap();
//!
//! // online: ask for hotels in NYC under a 20% resource ratio
//! let mut b = SpcQueryBuilder::new(beas.schema());
//! let h = b.atom("poi", "h").unwrap();
//! b.bind_const(h, "type", "hotel").unwrap();
//! b.bind_const(h, "city", "NYC").unwrap();
//! b.output(h, "price", "price").unwrap();
//! let query: BeasQuery = b.build().unwrap().into();
//!
//! let spec = ResourceSpec::Ratio(0.2);
//! let prepared = beas.prepare(&query).unwrap();
//! let answer = prepared.answer(spec).unwrap();
//! assert!(answer.eta > 0.0 && answer.eta <= 1.0);
//! assert!(answer.accessed <= beas.catalog().budget(&spec).unwrap());
//! // the second answer at the same budget reuses the cached plan
//! let again = prepared.answer(spec).unwrap();
//! assert_eq!(prepared.cached_plans(), 1);
//! assert_eq!(answer.answers.sorted(), again.answers.sorted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod chase;
pub mod engine;
pub mod error;
pub mod executor;
pub mod fingerprint;
pub mod plan;
pub mod planner;
pub mod prepared;
pub mod query;
pub mod session;

pub use accuracy::{
    coverage_ratio, exact_answers, f_measure, mac_accuracy, rc_accuracy, relax_ra, AccuracyConfig,
    FMeasure, RcReport,
};
pub use beas_access::{BudgetPolicy, ResourceSpec};
pub use beas_slo::{AccuracyTarget, CurveStore, SloCounters, SloPrior};
pub use beas_store::{Calibration, Store, StoreOptions, StoreStatsSnapshot};
pub use engine::{
    Beas, BeasAnswer, BeasBuilder, ConstraintSpec, EngineSnapshot, EngineStats, ServeHandle,
    TargetedAnswer, UpdateBatch,
};
pub use error::{BeasError, Result};
pub use executor::{
    calibrated_min_shard_rows, compose_plan_answer, compose_plan_answer_partial,
    evaluate_plan_leaf, execute_plan, execute_plan_with_budget, execute_plan_with_options,
    execute_plan_with_spec, execute_plan_with_state, node_keys, stream_plan_fragments, ExecOptions,
    ExecState, ExecutionOutcome, LeafEval, PlanFragments, DEFAULT_MIN_SHARD_ROWS,
};
pub use fingerprint::QueryFingerprint;
pub use plan::{FetchNode, FetchPlan, KeySource, LeafPlan};
pub use planner::{BoundedPlan, DistanceBounds, Planner};
pub use prepared::{PreparedQuery, PLAN_CACHE_CAPACITY};
pub use query::{AggQuery, BeasQuery, RaQuery};
pub use session::{AnswerSession, RefinementSchedule, RefinementStep, DEFAULT_RATIO_LADDER};
