//! The chase of SPC tableaux under an access schema (Sec. 5, Fig. 4), used to
//! derive the initial fetching plan of a bounded query plan.
//!
//! A chasing sequence repeatedly applies access constraints / templates of the
//! catalog to the tuple templates of the query's tableau, marking variables
//! and tuples *exactly* or *approximately* covered. Each chase step
//! corresponds to one fetch operation; the sequence terminates for every SPC
//! query because the canonical schema `A_t` always provides a
//! `R(∅ → attr(R), 2^k, d̄_k)` fallback for every relation (Lemma 4).
//!
//! This implementation makes one deliberate restriction (documented in
//! DESIGN.md): fetches are only keyed on constants and *exactly* covered
//! variables. When a key would have to come from an approximately covered
//! variable, the planner falls back to the `A_t` whole-relation template
//! instead, which keeps the coverage part of the accuracy bound honest.

use std::collections::BTreeSet;

use beas_access::{Catalog, FamilyId};
use beas_relal::{SpcQuery, Term};

use crate::error::{BeasError, Result};
use crate::plan::{needed_positions, FetchNode, FetchPlan, KeySource, LeafPlan};

/// Provenance of an exactly covered variable: which node's output column holds
/// its values.
#[derive(Debug, Clone, PartialEq)]
struct VarProvenance {
    node: usize,
    column: String,
}

/// Outcome of chasing one SPC leaf: the leaf's completion nodes plus the
/// number of fetch nodes appended to the shared plan.
#[derive(Debug, Clone)]
pub struct ChaseOutcome {
    /// The per-atom completion information for the leaf.
    pub leaf_plan: LeafPlan,
    /// `true` when every needed position is covered exactly (the leaf is
    /// boundedly evaluable under the catalog within the budget).
    pub all_exact: bool,
}

/// Chases one SPC leaf under the catalog, appending fetch nodes to `plan`.
///
/// `budget` is the global tuple budget `α·|D|`; constraint applications whose
/// estimated tariff would exceed it are skipped in favour of coarse templates,
/// exactly as in Fig. 3 ("if tariff exceeds budget B, we use template
/// `R(∅ → attr(R), 2^0, d̄_0)` instead").
///
/// `atoms_after` is the number of atoms of *later* leaves that still need a
/// completion fetch: one tuple of budget is reserved for each of them (and for
/// each not-yet-completed atom of this leaf), so that a greedy exact choice
/// for an early atom can never starve a later atom of its level-0 fallback and
/// push the overall plan past the budget.
pub fn chase_leaf(
    leaf: &SpcQuery,
    leaf_index: usize,
    catalog: &Catalog,
    plan: &mut FetchPlan,
    budget: usize,
    atoms_after: usize,
) -> Result<ChaseOutcome> {
    let needed = needed_positions(leaf);
    let schema = &catalog.schema;

    // attribute names per atom position
    let mut attr_names: Vec<Vec<String>> = Vec::with_capacity(leaf.atoms.len());
    for atom in &leaf.atoms {
        attr_names.push(schema.relation(&atom.relation)?.attr_names());
    }

    // variable coverage: var → provenance of an exact covering
    let mut exact_vars: std::collections::BTreeMap<usize, VarProvenance> =
        std::collections::BTreeMap::new();

    // variables pinned to a constant by an equality selection (σ_{A=c} written
    // as an explicit condition rather than folded into the tableau)
    let const_vars: std::collections::BTreeMap<usize, beas_relal::Value> = leaf
        .selections
        .iter()
        .filter_map(|sel| match sel {
            beas_relal::SelCond::VarConst {
                var,
                op: beas_relal::CompareOp::Eq,
                value,
            } => Some((*var, value.clone())),
            _ => None,
        })
        .collect();

    // ---------------------------------------------------------------- phase 1
    // Apply access constraints to a fixpoint, covering variables exactly.
    let mut progress = true;
    while progress {
        progress = false;
        for (ai, atom) in leaf.atoms.iter().enumerate() {
            for &fam_id in &catalog.constraints_for(&atom.relation) {
                let family = catalog.family(fam_id)?;
                // does applying this constraint cover a new needed variable?
                let covers_new = family.y.iter().any(|y_attr| {
                    position_of(&attr_names[ai], y_attr).is_some_and(|pi| {
                        needed[ai].contains(&pi)
                            && matches!(leaf.terms[ai][pi], Term::Var(v) if !exact_vars.contains_key(&v))
                    })
                });
                if !covers_new {
                    continue;
                }
                let Some((sources, input_node)) = key_sources_for(
                    leaf,
                    ai,
                    &attr_names[ai],
                    &family.x,
                    &exact_vars,
                    &const_vars,
                ) else {
                    continue;
                };
                // tariff check against the global budget, reserving one tuple
                // for every atom that still needs its completion fetch
                let exact_level = family.exact_level();
                let est_keys = match input_node {
                    None => 1,
                    Some(n) => plan.est_output_rows(catalog, n)?,
                };
                let added = est_keys.saturating_mul(family.level(exact_level)?.n.max(1));
                let current = plan.total_tariff(catalog)?;
                let reserve = atoms_after + leaf.atoms.len();
                if current.saturating_add(added).saturating_add(reserve) > budget {
                    continue;
                }
                // apply the constraint: one fetch node, Y variables become exact
                let node_id = plan.push(FetchNode {
                    id: 0,
                    family: fam_id,
                    level: exact_level,
                    relation: atom.relation.clone(),
                    subquery: leaf_index,
                    atom: ai,
                    input_node,
                    key_sources: sources,
                    is_completion: false,
                });
                for y_attr in &family.y {
                    if let Some(pi) = position_of(&attr_names[ai], y_attr) {
                        if let Term::Var(v) = leaf.terms[ai][pi] {
                            exact_vars.entry(v).or_insert(VarProvenance {
                                node: node_id,
                                column: y_attr.clone(),
                            });
                        }
                    }
                }
                progress = true;
            }
        }
    }

    // ---------------------------------------------------------------- phase 2
    // Completion: give every atom a fetch node whose output contains all of
    // its needed positions.
    let mut atom_nodes = vec![usize::MAX; leaf.atoms.len()];
    let mut all_exact = true;
    for (ai, atom) in leaf.atoms.iter().enumerate() {
        // Is some already-created node for this atom a valid completion?
        if let Some(existing) = plan.nodes.iter().find(|n| {
            n.subquery == leaf_index
                && n.atom == ai
                && covers_all_needed(catalog, n.family, &needed[ai], &attr_names[ai])
        }) {
            let id = existing.id;
            atom_nodes[ai] = id;
            plan.nodes[id].is_completion = true;
            continue;
        }

        // Otherwise pick the best applicable family: prefer exact coverage
        // (constraints / exact levels) within budget, then the multi-level
        // family with the most selective key, then the A_t fallback. One
        // budget tuple stays reserved for every atom still to be completed.
        let reserve = atoms_after + leaf.atoms.len().saturating_sub(ai + 1);
        let candidate = select_completion_family(
            leaf,
            ai,
            &attr_names[ai],
            &needed[ai],
            catalog,
            &exact_vars,
            &const_vars,
            plan,
            budget.saturating_sub(reserve),
        )?;
        let Some((fam_id, level, sources, input_node, exact)) = candidate else {
            return Err(BeasError::Planning(format!(
                "no access template covers atom {} of relation {} (is A_t present in the catalog?)",
                ai, atom.relation
            )));
        };
        if !exact {
            all_exact = false;
        }
        let node_id = plan.push(FetchNode {
            id: 0,
            family: fam_id,
            level,
            relation: atom.relation.clone(),
            subquery: leaf_index,
            atom: ai,
            input_node,
            key_sources: sources,
            is_completion: true,
        });
        atom_nodes[ai] = node_id;
        // the completion node also provides exact provenance for key-side and
        // (if exact) fetched variables of this atom
        let family = catalog.family(fam_id)?;
        for (pi, term) in leaf.terms[ai].iter().enumerate() {
            if let Term::Var(v) = term {
                let attr = &attr_names[ai][pi];
                let in_x = family.x.iter().any(|a| a == attr);
                let exact_y = exact && family.y.iter().any(|a| a == attr);
                if (in_x || exact_y) && !exact_vars.contains_key(v) {
                    exact_vars.insert(
                        *v,
                        VarProvenance {
                            node: node_id,
                            column: attr.clone(),
                        },
                    );
                }
            }
        }
    }

    Ok(ChaseOutcome {
        leaf_plan: LeafPlan {
            leaf: leaf_index,
            atom_nodes,
        },
        all_exact,
    })
}

/// Index of an attribute name within an atom's attribute list.
fn position_of(attr_names: &[String], attr: &str) -> Option<usize> {
    attr_names.iter().position(|a| a == attr)
}

/// `true` when the family's X ∪ Y contains every needed attribute of the atom.
fn covers_all_needed(
    catalog: &Catalog,
    family: FamilyId,
    needed: &BTreeSet<usize>,
    attr_names: &[String],
) -> bool {
    let Ok(family) = catalog.family(family) else {
        return false;
    };
    needed.iter().all(|&pi| {
        let attr = &attr_names[pi];
        family.x.iter().any(|a| a == attr) || family.y.iter().any(|a| a == attr)
    })
}

/// Builds the key sources for applying a family to an atom: every X attribute
/// must be a constant of the atom or an exactly covered variable, and all
/// variable sources must come from the same provenance node.
fn key_sources_for(
    leaf: &SpcQuery,
    atom: usize,
    attr_names: &[String],
    x_attrs: &[String],
    exact_vars: &std::collections::BTreeMap<usize, VarProvenance>,
    const_vars: &std::collections::BTreeMap<usize, beas_relal::Value>,
) -> Option<(Vec<KeySource>, Option<usize>)> {
    let mut sources = Vec::with_capacity(x_attrs.len());
    let mut input_node: Option<usize> = None;
    for x_attr in x_attrs {
        let pi = position_of(attr_names, x_attr)?;
        match &leaf.terms[atom][pi] {
            Term::Const(v) => sources.push(KeySource::Const(v.clone())),
            Term::Var(v) => {
                if let Some(prov) = exact_vars.get(v) {
                    match input_node {
                        None => input_node = Some(prov.node),
                        Some(existing) if existing == prov.node => {}
                        // variable keys from two different nodes: not
                        // supported, the caller falls back to another family
                        Some(_) => return None,
                    }
                    sources.push(KeySource::Column(prov.column.clone()));
                } else if let Some(value) = const_vars.get(v) {
                    // the variable is pinned to a constant by an equality
                    // selection: use the constant as the key component
                    sources.push(KeySource::Const(value.clone()));
                } else {
                    return None;
                }
            }
        }
    }
    Some((sources, input_node))
}

/// Selects the family (and level) used to complete an atom, returning
/// `(family, level, key sources, input node, exact?)`.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::type_complexity)]
fn select_completion_family(
    leaf: &SpcQuery,
    atom: usize,
    attr_names: &[String],
    needed: &BTreeSet<usize>,
    catalog: &Catalog,
    exact_vars: &std::collections::BTreeMap<usize, VarProvenance>,
    const_vars: &std::collections::BTreeMap<usize, beas_relal::Value>,
    plan: &FetchPlan,
    budget: usize,
) -> Result<Option<(FamilyId, usize, Vec<KeySource>, Option<usize>, bool)>> {
    let relation = &leaf.atoms[atom].relation;
    let current_tariff = plan.total_tariff(catalog)?;

    // candidate = (priority, tariff, family, level, sources, input, exact)
    let mut best: Option<(
        u8,
        usize,
        FamilyId,
        usize,
        Vec<KeySource>,
        Option<usize>,
        bool,
    )> = None;
    let consider = |priority: u8,
                    tariff: usize,
                    fam: FamilyId,
                    level: usize,
                    sources: Vec<KeySource>,
                    input: Option<usize>,
                    exact: bool,
                    best: &mut Option<(
        u8,
        usize,
        FamilyId,
        usize,
        Vec<KeySource>,
        Option<usize>,
        bool,
    )>| {
        let better = match best {
            None => true,
            Some((bp, bt, ..)) => (priority, tariff) < (*bp, *bt),
        };
        if better {
            *best = Some((priority, tariff, fam, level, sources, input, exact));
        }
    };

    for &fam_id in &catalog.families_for(relation) {
        let family = catalog.family(fam_id)?;
        if !covers_all_needed(catalog, fam_id, needed, attr_names) {
            continue;
        }
        let Some((sources, input_node)) =
            key_sources_for(leaf, atom, attr_names, &family.x, exact_vars, const_vars)
        else {
            continue;
        };
        let est_keys = match input_node {
            None => 1usize,
            Some(n) => plan.est_output_rows(catalog, n)?,
        };

        // (a) exact level within budget → priority 0 (keyed) / 1 (whole-relation)
        let exact_level = family.exact_level();
        if family.level(exact_level)?.is_exact() {
            let tariff = est_keys
                .saturating_mul(family.level(exact_level)?.n.max(1))
                .min(family.level(exact_level)?.stored_tuples().max(1));
            let priority = if family.x.is_empty() { 1 } else { 0 };
            if current_tariff.saturating_add(tariff) <= budget {
                consider(
                    priority,
                    tariff,
                    fam_id,
                    exact_level,
                    sources.clone(),
                    input_node,
                    true,
                    &mut best,
                );
            }
        }
        // (b) coarsest level of a multi-level family → priority 2 when keyed,
        // 3 when it is the A_t whole-relation fallback
        if family.num_levels() > 1 || !family.levels[0].is_exact() {
            let tariff = est_keys.saturating_mul(family.level(0)?.n.max(1));
            let priority = if family.x.is_empty() { 3 } else { 2 };
            let within = current_tariff.saturating_add(tariff) <= budget;
            // the A_t fallback is accepted even when the estimate exceeds the
            // budget: it is the plan of last resort (level 0 accesses at most
            // one tuple per bucket at execution time)
            if within || family.is_full_relation() {
                consider(
                    priority,
                    tariff,
                    fam_id,
                    0,
                    sources.clone(),
                    input_node,
                    family.level(0)?.is_exact(),
                    &mut best,
                );
            }
        }
    }
    Ok(best.map(|(_, _, fam, level, sources, input, exact)| (fam, level, sources, input, exact)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beas_access::{build_constraint, build_extended, AtOptions, Catalog};
    use beas_relal::{
        Attribute, CompareOp, Database, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
    };

    fn example_db(n: i64) -> Database {
        let schema = DatabaseSchema::new(vec![
            RelationSchema::new(
                "person",
                vec![Attribute::id("pid"), Attribute::text("city")],
            ),
            RelationSchema::new("friend", vec![Attribute::id("pid"), Attribute::id("fid")]),
            RelationSchema::new(
                "poi",
                vec![
                    Attribute::text("address"),
                    Attribute::categorical("type"),
                    Attribute::text("city"),
                    Attribute::double("price"),
                ],
            ),
        ]);
        let mut db = Database::new(schema);
        let cities = ["NYC", "LA", "Chicago", "Boston"];
        for i in 0..n {
            db.insert_row("friend", vec![Value::Int(i % 10), Value::Int(i)])
                .unwrap();
            db.insert_row(
                "person",
                vec![Value::Int(i), Value::from(cities[(i % 4) as usize])],
            )
            .unwrap();
            db.insert_row(
                "poi",
                vec![
                    Value::from(format!("a{i}")),
                    Value::from(if i % 3 == 0 { "hotel" } else { "museum" }),
                    Value::from(cities[(i % 4) as usize]),
                    Value::Double(40.0 + (i % 50) as f64 * 2.0),
                ],
            )
            .unwrap();
        }
        db
    }

    fn full_catalog(db: &Database) -> Catalog {
        let mut catalog = Catalog::for_database(db, &AtOptions::default()).unwrap();
        catalog.add_family(build_constraint(db, "friend", &["pid"], &["fid"]).unwrap());
        catalog.add_family(build_constraint(db, "person", &["pid"], &["city"]).unwrap());
        catalog.add_family(
            build_extended(db, "poi", &["type", "city"], &["price", "address"]).unwrap(),
        );
        catalog
    }

    fn q1(db: &Database) -> SpcQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(f, "pid", 1i64).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.join((p, "city"), (h, "city")).unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 95i64).unwrap();
        b.output(h, "address", "address").unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap()
    }

    /// Q2 of Example 1: cities of my friends — boundedly evaluable.
    fn q2(db: &Database) -> SpcQuery {
        let mut b = SpcQueryBuilder::new(&db.schema);
        let f = b.atom("friend", "f").unwrap();
        let p = b.atom("person", "p").unwrap();
        b.bind_const(f, "pid", 1i64).unwrap();
        b.join((f, "fid"), (p, "pid")).unwrap();
        b.output(p, "city", "city").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chase_q1_uses_constraints_then_template() {
        let db = example_db(200);
        let catalog = full_catalog(&db);
        let q = q1(&db);
        let mut plan = FetchPlan::default();
        let outcome = chase_leaf(&q, 0, &catalog, &mut plan, 500, 0).unwrap();
        // every atom got a completion node
        assert_eq!(outcome.leaf_plan.atom_nodes.len(), 3);
        assert!(outcome
            .leaf_plan
            .atom_nodes
            .iter()
            .all(|&n| n != usize::MAX));
        // the poi atom should be served by the keyed extended template, not A_t
        let poi_node = plan.node(outcome.leaf_plan.atom_nodes[2]).unwrap();
        let poi_family = catalog.family(poi_node.family).unwrap();
        assert_eq!(poi_family.x, vec!["type".to_string(), "city".to_string()]);
        // the friend and person atoms are covered exactly by constraints
        for &ai in &[0usize, 1usize] {
            let node = plan.node(outcome.leaf_plan.atom_nodes[ai]).unwrap();
            let fam = catalog.family(node.family).unwrap();
            assert!(fam.level(node.level).unwrap().is_exact());
        }
        // Q1 needs the approximate poi template, so it is not all-exact at a
        // level-0 start
        assert!(!outcome.all_exact || poi_family.level(poi_node.level).unwrap().is_exact());
        // tariff estimate stays within the stated budget
        assert!(plan.total_tariff(&catalog).unwrap() <= 500);
    }

    #[test]
    fn chase_q2_is_exact_with_constraints_only() {
        let db = example_db(200);
        let catalog = full_catalog(&db);
        let q = q2(&db);
        let mut plan = FetchPlan::default();
        let outcome = chase_leaf(&q, 0, &catalog, &mut plan, 100, 0).unwrap();
        assert!(outcome.all_exact, "Q2 is boundedly evaluable (Example 1)");
        for &node_id in &outcome.leaf_plan.atom_nodes {
            let node = plan.node(node_id).unwrap();
            let fam = catalog.family(node.family).unwrap();
            assert!(fam.level(node.level).unwrap().is_exact());
        }
    }

    #[test]
    fn chase_falls_back_to_at_under_tiny_budget() {
        let db = example_db(200);
        let catalog = full_catalog(&db);
        let q = q1(&db);
        let mut plan = FetchPlan::default();
        // budget so small that the friend constraint (10 fids) does not fit
        let outcome = chase_leaf(&q, 0, &catalog, &mut plan, 3, 0).unwrap();
        assert!(!outcome.all_exact);
        // all atoms still get completion nodes (the A_t fallback)
        assert!(outcome
            .leaf_plan
            .atom_nodes
            .iter()
            .all(|&n| n != usize::MAX));
        for &node_id in &outcome.leaf_plan.atom_nodes {
            let node = plan.node(node_id).unwrap();
            let fam = catalog.family(node.family).unwrap();
            assert!(fam.is_full_relation(), "expected the A_t fallback");
            assert_eq!(node.level, 0);
        }
    }

    #[test]
    fn chase_with_only_at_catalog_still_completes() {
        let db = example_db(100);
        let catalog = Catalog::for_database(&db, &AtOptions::default()).unwrap();
        let q = q1(&db);
        let mut plan = FetchPlan::default();
        let outcome = chase_leaf(&q, 0, &catalog, &mut plan, 50, 0).unwrap();
        assert!(!outcome.all_exact);
        assert_eq!(plan.nodes.len(), 3);
    }

    #[test]
    fn chase_errors_without_any_covering_family() {
        let db = example_db(10);
        // empty catalog: no A_t, nothing
        let catalog = Catalog::new(db.schema.clone(), db.total_tuples());
        let q = q2(&db);
        let mut plan = FetchPlan::default();
        assert!(chase_leaf(&q, 0, &catalog, &mut plan, 100, 0).is_err());
    }

    #[test]
    fn single_atom_selection_query_uses_keyed_template() {
        let db = example_db(100);
        let catalog = full_catalog(&db);
        let mut b = SpcQueryBuilder::new(&db.schema);
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.output(h, "price", "price").unwrap();
        let q = b.build().unwrap();
        let mut plan = FetchPlan::default();
        let outcome = chase_leaf(&q, 0, &catalog, &mut plan, 1000, 0).unwrap();
        let node = plan.node(outcome.leaf_plan.atom_nodes[0]).unwrap();
        let fam = catalog.family(node.family).unwrap();
        // with a generous budget the exact level of the keyed template is
        // preferred → exact coverage
        assert!(fam.level(node.level).unwrap().is_exact());
        assert!(outcome.all_exact);
        assert!(node
            .key_sources
            .iter()
            .all(|k| matches!(k, KeySource::Const(_))));
    }
}
