//! Prepared queries and the engine-level shared plan cache: the
//! prepare-once / answer-many fast path of the engine.
//!
//! Repeated queries dominate a serving workload, and plan generation (C3) is
//! pure — it depends only on the query, the catalog and the resolved tuple
//! budget. The engine therefore keeps one **shared plan cache** keyed on
//! `(query fingerprint, catalog version, budget)`: *independent*
//! [`PreparedQuery`] handles (or [`ServeHandle`](crate::ServeHandle)
//! connections) asking the same question share one cached [`BoundedPlan`]
//! instead of each re-planning it. A [`PreparedQuery`] contributes, per
//! query:
//!
//! * the validation of the query against the schema (done once in
//!   [`Beas::prepare`]),
//! * the compiled output shape (column names, used for zero-budget answers),
//! * the [`QueryFingerprint`] under which its plans live in the shared
//!   cache — one entry per *resolved budget*, the whole cache capped at the
//!   engine's [`plan cache capacity`](crate::BeasBuilder::plan_cache_capacity)
//!   (default [`PLAN_CACHE_CAPACITY`]) with least-recently-used eviction, so
//!   a workload cycling through many distinct `Tuples(n)` specs cannot grow
//!   the cache without bound. Answering again at a repeated
//!   [`ResourceSpec`] — from *any* handle of the engine — skips planning
//!   entirely and goes straight to execution (C4).
//!
//! This mirrors the offline/online split the paper's data-driven scheme is
//! built on: pay the analysis once, amortize it across every later request —
//! and every later connection.
//!
//! # Concurrency
//!
//! `PreparedQuery` is `Send + Sync`: any number of threads may call
//! [`PreparedQuery::answer`] on one shared handle. The shared cache sits
//! behind an `RwLock` — concurrent cache hits take a read lock and never
//! serialize; only a cache miss (a budget planned for the first time)
//! briefly takes the write lock to publish its plan, and planning itself
//! happens outside any lock.
//!
//! Because maintenance ([`Beas::apply_update`]) is allowed to run while
//! prepared handles are live, the cache is tagged with the catalog
//! [`version`](beas_access::Catalog::version) it was filled against. An
//! answer call grabs one engine snapshot, and a version mismatch (the catalog
//! changed since the cache was filled) drops the stale plans and replans —
//! so a prepared answer always reflects a consistent, current snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use beas_access::ResourceSpec;

use crate::engine::{answer_from, empty_answer, Beas, BeasAnswer, EngineSnapshot};
use crate::error::Result;
use crate::fingerprint::QueryFingerprint;
use crate::planner::{BoundedPlan, Planner};
use crate::query::BeasQuery;
use crate::session::{AnswerSession, RefinementSchedule};

/// Default capacity of the engine's shared plan cache (entries, where one
/// entry is one `(query fingerprint, budget)` pair). Serving many distinct
/// queries × `Tuples(n)` specs previously grew plan caches without bound;
/// beyond the capacity the least-recently-used entry is evicted (and simply
/// re-planned if it returns). The cache is engine-wide (it used to be 32
/// *per prepared handle*), so the default is sized for a serving workload
/// with many distinct prepared queries. Override per engine via
/// [`BeasBuilder::plan_cache_capacity`](crate::BeasBuilder::plan_cache_capacity).
pub const PLAN_CACHE_CAPACITY: usize = 256;

/// One cached plan with its last-use tick (atomic so cache *hits* can stay
/// under the shared read lock).
#[derive(Debug)]
struct CacheEntry {
    plan: Arc<BoundedPlan>,
    last_used: AtomicU64,
}

/// `(fingerprint, budget) → plan` map, tagged with the catalog version it
/// was filled against. Budgets are part of the key (not specs) so that
/// `Ratio(0.1)` and `Tuples(α·|D|)` share one entry.
#[derive(Debug, Default)]
struct CacheInner {
    version: u64,
    by_key: HashMap<(QueryFingerprint, usize), CacheEntry>,
}

/// The engine-level shared plan cache (see the module docs): one per
/// [`Beas`], shared by every [`PreparedQuery`] handle of that engine,
/// LRU-capped at a configurable capacity.
#[derive(Debug)]
pub(crate) struct SharedPlanCache {
    capacity: usize,
    inner: RwLock<CacheInner>,
    /// Monotonic use counter driving the LRU order (atomic so hits can bump
    /// recency under the shared read lock).
    tick: AtomicU64,
}

impl SharedPlanCache {
    /// An empty cache holding at most `capacity` plans (clamped to ≥ 1).
    pub(crate) fn new(capacity: usize) -> Self {
        SharedPlanCache {
            capacity: capacity.max(1),
            inner: RwLock::new(CacheInner::default()),
            tick: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached plans (across all queries).
    pub(crate) fn len(&self) -> usize {
        self.inner.read().expect("plan cache poisoned").by_key.len()
    }

    /// Number of cached plans for one query fingerprint.
    pub(crate) fn len_for(&self, fingerprint: QueryFingerprint) -> usize {
        self.inner
            .read()
            .expect("plan cache poisoned")
            .by_key
            .keys()
            .filter(|(fp, _)| *fp == fingerprint)
            .count()
    }

    /// Cache lookup for `(fingerprint, budget)` at catalog `version`. Hits
    /// share the read lock and bump recency atomically. The cached plan
    /// carries the query it was generated for, which is compared against
    /// `query` on every hit — a fingerprint collision between two distinct
    /// queries (vanishingly unlikely, but the cache is shared by every
    /// tenant of a serving front-end) therefore degrades to a miss, never
    /// to serving the wrong plan.
    fn get(
        &self,
        fingerprint: QueryFingerprint,
        query: &BeasQuery,
        version: u64,
        budget: usize,
    ) -> Option<Arc<BoundedPlan>> {
        let cache = self.inner.read().expect("plan cache poisoned");
        if cache.version != version {
            return None;
        }
        let entry = cache.by_key.get(&(fingerprint, budget))?;
        if entry.plan.query != *query {
            return None;
        }
        // bump recency without upgrading to the write lock
        entry.last_used.store(
            self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        Some(Arc::clone(&entry.plan))
    }

    /// Publishes a freshly generated plan, evicting the least-recently-used
    /// entry when the cache is full.
    fn insert(
        &self,
        fingerprint: QueryFingerprint,
        version: u64,
        budget: usize,
        plan: Arc<BoundedPlan>,
    ) {
        let mut cache = self.inner.write().expect("plan cache poisoned");
        // versions are monotonic per engine: move the cache forward (dropping
        // plans of older catalogs), but never roll it back — a reader that
        // stalled on an old snapshot must not evict plans a newer snapshot
        // just published
        if cache.version < version {
            cache.by_key.clear();
            cache.version = version;
        }
        if cache.version != version {
            return;
        }
        let key = (fingerprint, budget);
        // LRU cap: serving many distinct queries/budgets must not grow the
        // cache without bound
        if cache.by_key.len() >= self.capacity && !cache.by_key.contains_key(&key) {
            if let Some(&lru) = cache
                .by_key
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k)
            {
                cache.by_key.remove(&lru);
            }
        }
        cache.by_key.insert(
            key,
            CacheEntry {
                plan,
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed) + 1),
            },
        );
    }
}

/// How a [`PreparedQuery`] refers to its engine: borrowed for the classic
/// scoped lifecycle ([`Beas::prepare`]), shared (`Arc`) for `'static` handles
/// stored in serving state ([`Beas::prepare_shared`]).
#[derive(Debug)]
enum EngineRef<'e> {
    Borrowed(&'e Beas),
    Shared(Arc<Beas>),
}

impl EngineRef<'_> {
    fn get(&self) -> &Beas {
        match self {
            EngineRef::Borrowed(e) => e,
            EngineRef::Shared(e) => e,
        }
    }
}

/// A validated query handle whose plans live in the engine's shared plan
/// cache (see the module docs). Created by [`Beas::prepare`] (borrowing the
/// engine) or [`Beas::prepare_shared`] (owning an `Arc` of it, `'static`).
#[derive(Debug)]
pub struct PreparedQuery<'e> {
    engine: EngineRef<'e>,
    query: BeasQuery,
    /// The query's identity in the engine's shared plan cache.
    fingerprint: QueryFingerprint,
    /// Output column names, compiled once at prepare time.
    output_columns: Vec<String>,
}

impl<'e> PreparedQuery<'e> {
    /// Validates `query` once and wraps it with its shared-cache identity.
    pub(crate) fn borrowed(engine: &'e Beas, query: &BeasQuery) -> Result<Self> {
        Self::new(EngineRef::Borrowed(engine), query)
    }

    fn new(engine: EngineRef<'e>, query: &BeasQuery) -> Result<Self> {
        query.validate(engine.get().schema())?;
        Ok(PreparedQuery {
            query: query.clone(),
            fingerprint: QueryFingerprint::of(query),
            output_columns: query.output_columns(),
            engine,
        })
    }

    /// The prepared query.
    pub fn query(&self) -> &BeasQuery {
        &self.query
    }

    /// The engine the query was prepared against.
    pub fn engine(&self) -> &Beas {
        self.engine.get()
    }

    /// The query's fingerprint — its identity in the engine's shared plan
    /// cache.
    pub fn fingerprint(&self) -> QueryFingerprint {
        self.fingerprint
    }

    /// Number of distinct budgets with a cached plan for *this query* in the
    /// engine's shared cache.
    pub fn cached_plans(&self) -> usize {
        self.engine().plan_cache().len_for(self.fingerprint)
    }

    /// The bounded plan for `spec`: returned from the cache when the resolved
    /// budget was planned before (against the current catalog), generated
    /// (and cached) otherwise. Zero specs are an error, as in
    /// [`Planner::plan`].
    pub fn plan(&self, spec: ResourceSpec) -> Result<Arc<BoundedPlan>> {
        let snapshot = self.engine().snapshot();
        let budget = snapshot.catalog().budget(&spec)?;
        if budget == 0 {
            // delegate for the uniform zero-budget error message
            return Planner::new(snapshot.catalog())
                .plan(&self.query, spec)
                .map(Arc::new);
        }
        self.plan_for_budget(&snapshot, budget)
    }

    /// Shared-cache lookup / fill for an already-resolved non-zero budget
    /// against one engine snapshot. Hits share a read lock (concurrent
    /// `answer` calls never serialize); planning on a miss happens outside
    /// any lock, and a catalog version change invalidates all stale entries.
    pub(crate) fn plan_for_budget(
        &self,
        snapshot: &EngineSnapshot,
        budget: usize,
    ) -> Result<Arc<BoundedPlan>> {
        let engine = self.engine();
        let cache = engine.plan_cache();
        let version = snapshot.catalog().version;
        if let Some(plan) = cache.get(self.fingerprint, &self.query, version, budget) {
            engine.stats.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        engine
            .stats
            .plan_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        let plan =
            Arc::new(Planner::new(snapshot.catalog()).plan_prevalidated(&self.query, budget)?);
        cache.insert(self.fingerprint, version, budget, Arc::clone(&plan));
        Ok(plan)
    }

    /// Opens a [progressive refinement session](crate::AnswerSession) over
    /// this query: an iterator of answers at the increasing budgets of
    /// `schedule`, where each step reuses the fragments and partial results
    /// of the previous one instead of re-executing from scratch, and the
    /// final step is bit-for-bit the one-shot [`PreparedQuery::answer`] at
    /// the same spec.
    pub fn session(&self, schedule: RefinementSchedule) -> Result<AnswerSession<'_, 'e>> {
        AnswerSession::open(self, schedule)
    }

    /// Answers under `spec`, re-using the cached plan for repeated budgets
    /// (only execution — C4 — runs again). Zero specs yield an empty answer,
    /// exactly like [`Beas::answer`]. Thread-safe: the plan and the execution
    /// share one consistent engine snapshot.
    pub fn answer(&self, spec: ResourceSpec) -> Result<BeasAnswer> {
        let engine = self.engine();
        let snapshot = engine.snapshot();
        let budget = snapshot.catalog().budget(&spec)?;
        if budget == 0 {
            engine.stats.record_answer(0);
            return Ok(empty_answer(self.output_columns.clone()));
        }
        let plan = self.plan_for_budget(&snapshot, budget)?;
        let outcome = engine.execute_on(&plan, &snapshot)?;
        engine.stats.record_answer(outcome.accessed);
        let answer = answer_from(&plan, outcome);
        // feed the η-vs-budget curve store: every served answer is an
        // observation the SLO planner can learn from
        engine.record_slo_observation(
            self.fingerprint.as_u128(),
            snapshot.catalog().version,
            budget,
            answer.eta,
            answer.accessed,
        );
        Ok(answer)
    }
}

impl PreparedQuery<'static> {
    /// Validates `query` once against a shared engine; the handle owns an
    /// `Arc` clone, so it can be stored in `'static` serving state.
    pub(crate) fn shared(engine: Arc<Beas>, query: &BeasQuery) -> Result<Self> {
        Self::new(EngineRef::Shared(engine), query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ConstraintSpec;
    use beas_relal::{
        Attribute, CompareOp, Database, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
    };

    fn poi_engine(n: i64) -> Beas {
        let schema = DatabaseSchema::new(vec![RelationSchema::new(
            "poi",
            vec![
                Attribute::categorical("type"),
                Attribute::text("city"),
                Attribute::double("price"),
            ],
        )]);
        let mut db = Database::new(schema);
        let cities = ["NYC", "LA", "Chicago"];
        for i in 0..n {
            db.insert_row(
                "poi",
                vec![
                    Value::from(if i % 2 == 0 { "hotel" } else { "museum" }),
                    Value::from(cities[(i % 3) as usize]),
                    Value::Double(30.0 + (i % 80) as f64),
                ],
            )
            .unwrap();
        }
        Beas::builder(db)
            .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
            .build()
            .unwrap()
    }

    fn hotels(engine: &Beas) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(engine.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 80i64).unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    #[test]
    fn prepare_validates_once_and_rejects_bad_queries() {
        let engine = poi_engine(120);
        let q = hotels(&engine);
        assert!(engine.prepare(&q).is_ok());
        let mut bad = match q {
            BeasQuery::Ra(crate::query::RaQuery::Spc(q)) => q,
            _ => unreachable!(),
        };
        bad.output.clear();
        assert!(engine.prepare(&bad.into()).is_err());
    }

    #[test]
    fn repeated_budgets_reuse_the_cached_plan() {
        let engine = poi_engine(240);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        assert_eq!(prepared.cached_plans(), 0);

        let first = prepared.plan(ResourceSpec::Ratio(0.1)).unwrap();
        assert_eq!(prepared.cached_plans(), 1);
        let second = prepared.plan(ResourceSpec::Ratio(0.1)).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "repeat budget must hit the cache"
        );

        // a spec in tuples resolving to the same budget shares the entry
        let budget = engine.catalog().budget(&ResourceSpec::Ratio(0.1)).unwrap();
        let third = prepared.plan(ResourceSpec::Tuples(budget)).unwrap();
        assert!(Arc::ptr_eq(&first, &third));
        assert_eq!(prepared.cached_plans(), 1);

        // a different budget plans afresh
        let other = prepared.plan(ResourceSpec::Ratio(0.5)).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(prepared.cached_plans(), 2);
    }

    #[test]
    fn prepared_answers_match_engine_answers() {
        let engine = poi_engine(240);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        for alpha in [0.05, 0.1, 0.5, 1.0] {
            let spec = ResourceSpec::Ratio(alpha);
            let via_engine = engine.answer(&q, spec).unwrap();
            let via_prepared = prepared.answer(spec).unwrap();
            assert_eq!(
                via_engine.answers.clone().sorted(),
                via_prepared.answers.clone().sorted(),
                "α={alpha}"
            );
            assert_eq!(via_engine.eta, via_prepared.eta);
            assert_eq!(via_engine.budget, via_prepared.budget);
        }
        // answering again at a seen budget still hits the cache
        assert_eq!(prepared.cached_plans(), 4);
        prepared.answer(ResourceSpec::Ratio(0.1)).unwrap();
        assert_eq!(prepared.cached_plans(), 4);
    }

    #[test]
    fn zero_and_invalid_specs_behave_like_the_engine() {
        let engine = poi_engine(60);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        let empty = prepared.answer(ResourceSpec::Ratio(0.0)).unwrap();
        assert!(empty.answers.is_empty());
        assert_eq!(empty.accessed, 0);
        assert_eq!(empty.answers.columns, vec!["price"]);
        assert!(prepared.plan(ResourceSpec::Ratio(0.0)).is_err());
        assert!(prepared.answer(ResourceSpec::Ratio(7.0)).is_err());
        assert_eq!(prepared.cached_plans(), 0);
    }

    #[test]
    fn plan_cache_is_capped_with_lru_eviction() {
        let engine = poi_engine(600);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        // cycle through more distinct budgets than the cache may hold
        let budgets: Vec<usize> = (1..=PLAN_CACHE_CAPACITY + 8).collect();
        for &b in &budgets {
            prepared.plan(ResourceSpec::Tuples(b)).unwrap();
        }
        assert!(
            prepared.cached_plans() <= PLAN_CACHE_CAPACITY,
            "cache grew to {} entries (cap {PLAN_CACHE_CAPACITY})",
            prepared.cached_plans()
        );
        // the most recent budget survives and still hits
        let last = *budgets.last().unwrap();
        let a = prepared.plan(ResourceSpec::Tuples(last)).unwrap();
        let b = prepared.plan(ResourceSpec::Tuples(last)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "recent budget must stay cached");
        // the oldest budget was evicted, so re-planning yields a fresh Arc —
        // and keeps working
        let again = prepared.plan(ResourceSpec::Tuples(budgets[0])).unwrap();
        assert_eq!(again.budget, budgets[0]);
    }

    #[test]
    fn independent_handles_share_the_engine_level_cache() {
        let engine = poi_engine(240);
        let q = hotels(&engine);
        let first = engine.prepare(&q).unwrap();
        let second = engine.prepare(&q).unwrap();
        assert_eq!(first.fingerprint(), second.fingerprint());

        // the first handle plans; the second hits the shared cache
        let before = engine.stats();
        let via_first = first.plan(ResourceSpec::Ratio(0.2)).unwrap();
        let via_second = second.plan(ResourceSpec::Ratio(0.2)).unwrap();
        assert!(
            Arc::ptr_eq(&via_first, &via_second),
            "independent handles for the same query must share one plan"
        );
        let after = engine.stats();
        assert_eq!(after.plan_cache_misses, before.plan_cache_misses + 1);
        assert_eq!(
            after.plan_cache_hits,
            before.plan_cache_hits + 1,
            "the second handle must record a shared-cache hit"
        );
        assert_eq!(engine.plan_cache_len(), 1);

        // a different query gets its own entry
        let mut b = SpcQueryBuilder::new(engine.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "museum").unwrap();
        b.bind_const(h, "city", "LA").unwrap();
        b.output(h, "price", "price").unwrap();
        let other: BeasQuery = b.build().unwrap().into();
        let prepared_other = engine.prepare(&other).unwrap();
        assert_ne!(prepared_other.fingerprint(), first.fingerprint());
        prepared_other.plan(ResourceSpec::Ratio(0.2)).unwrap();
        assert_eq!(engine.plan_cache_len(), 2);
        assert_eq!(first.cached_plans(), 1);
        assert_eq!(prepared_other.cached_plans(), 1);
    }

    #[test]
    fn plan_cache_capacity_is_configurable() {
        let engine = {
            let mut db_engine = poi_engine(400);
            // rebuild with a tiny capacity over the same database
            let db = db_engine.database_arc();
            db_engine = Beas::builder(db)
                .constraint(crate::engine::ConstraintSpec::new(
                    "poi",
                    &["type", "city"],
                    &["price"],
                ))
                .plan_cache_capacity(4)
                .build()
                .unwrap();
            db_engine
        };
        assert_eq!(engine.plan_cache_capacity(), 4);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        for budget in 1..=10usize {
            prepared.plan(ResourceSpec::Tuples(budget)).unwrap();
        }
        assert!(
            engine.plan_cache_len() <= 4,
            "cache grew to {} entries (cap 4)",
            engine.plan_cache_len()
        );
        // zero is clamped
        let clamped = Beas::builder(engine.database_arc())
            .constraint(crate::engine::ConstraintSpec::new(
                "poi",
                &["type", "city"],
                &["price"],
            ))
            .plan_cache_capacity(0)
            .build()
            .unwrap();
        assert_eq!(clamped.plan_cache_capacity(), 1);
    }

    #[test]
    fn maintenance_invalidates_cached_plans() {
        let engine = poi_engine(240);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        let before = prepared.answer(ResourceSpec::FULL).unwrap();
        assert_eq!(prepared.cached_plans(), 1);

        // insert a matching row through C2 while the handle stays live
        engine
            .insert_row(
                "poi",
                vec![
                    Value::from("hotel"),
                    Value::from("NYC"),
                    Value::Double(41.5),
                ],
            )
            .unwrap();

        // the stale plan is dropped and the new tuple is visible
        let after = prepared.answer(ResourceSpec::FULL).unwrap();
        assert_eq!(after.answers.len(), before.answers.len() + 1);
        assert!(after.answers.rows().any(|r| r == vec![Value::Double(41.5)]));
        assert_eq!(prepared.cached_plans(), 1, "stale entries must be dropped");

        // and it must agree with planning from scratch on the updated engine
        let direct = engine.answer(&q, ResourceSpec::FULL).unwrap();
        assert_eq!(
            after.answers.clone().sorted(),
            direct.answers.clone().sorted()
        );
    }
}
