//! Prepared queries: the prepare-once / answer-many fast path of the engine.
//!
//! Repeated queries dominate a serving workload, and plan generation (C3) is
//! pure — it depends only on the query, the catalog and the resolved tuple
//! budget. A [`PreparedQuery`] therefore caches, per query:
//!
//! * the validation of the query against the schema (done once in
//!   [`Beas::prepare`]),
//! * the compiled output shape (column names, used for zero-budget answers),
//! * one [`BoundedPlan`] per *resolved budget* — capped at
//!   [`PLAN_CACHE_CAPACITY`] entries with least-recently-used eviction, so a
//!   workload cycling through many distinct `Tuples(n)` specs cannot grow
//!   the cache without bound — so answering again at a repeated
//!   [`ResourceSpec`] skips planning entirely and goes straight to
//!   execution (C4).
//!
//! This mirrors the offline/online split the paper's data-driven scheme is
//! built on: pay the analysis once, amortize it across every later request.
//!
//! # Concurrency
//!
//! `PreparedQuery` is `Send + Sync`: any number of threads may call
//! [`PreparedQuery::answer`] on one shared handle. The plan cache sits behind
//! an `RwLock` — concurrent cache hits take a read lock and never serialize;
//! only a cache miss (a budget planned for the first time) briefly takes the
//! write lock to publish its plan, and planning itself happens outside any
//! lock.
//!
//! Because maintenance ([`Beas::apply_update`]) is allowed to run while
//! prepared handles are live, every cached plan is tagged with the catalog
//! [`version`](beas_access::Catalog::version) it was planned against. An
//! answer call grabs one engine snapshot, and a version mismatch (the catalog
//! changed since the cache was filled) drops the stale plans and replans —
//! so a prepared answer always reflects a consistent, current snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use beas_access::ResourceSpec;

use crate::engine::{answer_from, empty_answer, Beas, BeasAnswer, EngineSnapshot};
use crate::error::Result;
use crate::planner::{BoundedPlan, Planner};
use crate::query::BeasQuery;

/// Maximum number of per-budget plans a [`PreparedQuery`] retains. Serving
/// many distinct `Tuples(n)` specs previously grew the cache without bound;
/// beyond this capacity the least-recently-used budget's plan is evicted
/// (and simply re-planned if that budget returns).
pub const PLAN_CACHE_CAPACITY: usize = 32;

/// One cached plan with its last-use tick (atomic so cache *hits* can stay
/// under the shared read lock).
#[derive(Debug)]
struct CacheEntry {
    plan: Arc<BoundedPlan>,
    last_used: AtomicU64,
}

/// Budget → plan cache, tagged with the catalog version it was filled
/// against. Budgets are the cache key (not specs) so that `Ratio(0.1)` and
/// `Tuples(α·|D|)` share one entry. Bounded by [`PLAN_CACHE_CAPACITY`] with
/// LRU eviction.
#[derive(Debug, Default)]
struct PlanCache {
    version: u64,
    by_budget: HashMap<usize, CacheEntry>,
}

/// How a [`PreparedQuery`] refers to its engine: borrowed for the classic
/// scoped lifecycle ([`Beas::prepare`]), shared (`Arc`) for `'static` handles
/// stored in serving state ([`Beas::prepare_shared`]).
#[derive(Debug)]
enum EngineRef<'e> {
    Borrowed(&'e Beas),
    Shared(Arc<Beas>),
}

impl EngineRef<'_> {
    fn get(&self) -> &Beas {
        match self {
            EngineRef::Borrowed(e) => e,
            EngineRef::Shared(e) => e,
        }
    }
}

/// A validated query handle with a per-budget plan cache (see the module
/// docs). Created by [`Beas::prepare`] (borrowing the engine) or
/// [`Beas::prepare_shared`] (owning an `Arc` of it, `'static`).
#[derive(Debug)]
pub struct PreparedQuery<'e> {
    engine: EngineRef<'e>,
    query: BeasQuery,
    /// Output column names, compiled once at prepare time.
    output_columns: Vec<String>,
    plans: RwLock<PlanCache>,
    /// Monotonic use counter driving the LRU order (atomic so hits can bump
    /// recency under the shared read lock).
    tick: AtomicU64,
}

impl<'e> PreparedQuery<'e> {
    /// Validates `query` once and wraps it with an empty plan cache.
    pub(crate) fn borrowed(engine: &'e Beas, query: &BeasQuery) -> Result<Self> {
        Self::new(EngineRef::Borrowed(engine), query)
    }

    fn new(engine: EngineRef<'e>, query: &BeasQuery) -> Result<Self> {
        query.validate(engine.get().schema())?;
        Ok(PreparedQuery {
            query: query.clone(),
            output_columns: query.output_columns(),
            plans: RwLock::new(PlanCache::default()),
            tick: AtomicU64::new(0),
            engine,
        })
    }

    /// The prepared query.
    pub fn query(&self) -> &BeasQuery {
        &self.query
    }

    /// The engine the query was prepared against.
    pub fn engine(&self) -> &Beas {
        self.engine.get()
    }

    /// Number of distinct budgets with a cached plan (for the current catalog
    /// version).
    pub fn cached_plans(&self) -> usize {
        self.plans
            .read()
            .expect("plan cache poisoned")
            .by_budget
            .len()
    }

    /// The bounded plan for `spec`: returned from the cache when the resolved
    /// budget was planned before (against the current catalog), generated
    /// (and cached) otherwise. Zero specs are an error, as in
    /// [`Planner::plan`].
    pub fn plan(&self, spec: ResourceSpec) -> Result<Arc<BoundedPlan>> {
        let snapshot = self.engine().snapshot();
        let budget = snapshot.catalog().budget(&spec)?;
        if budget == 0 {
            // delegate for the uniform zero-budget error message
            return Planner::new(snapshot.catalog())
                .plan(&self.query, spec)
                .map(Arc::new);
        }
        self.plan_for_budget(&snapshot, budget)
    }

    /// Cache lookup / fill for an already-resolved non-zero budget against
    /// one engine snapshot. Hits share a read lock (concurrent `answer`
    /// calls never serialize); planning on a miss happens outside any lock,
    /// and a catalog version change invalidates all stale entries.
    fn plan_for_budget(
        &self,
        snapshot: &EngineSnapshot,
        budget: usize,
    ) -> Result<Arc<BoundedPlan>> {
        let version = snapshot.catalog().version;
        {
            let cache = self.plans.read().expect("plan cache poisoned");
            if cache.version == version {
                if let Some(entry) = cache.by_budget.get(&budget) {
                    // bump recency without upgrading to the write lock
                    entry.last_used.store(
                        self.tick.fetch_add(1, Ordering::Relaxed) + 1,
                        Ordering::Relaxed,
                    );
                    self.engine()
                        .stats
                        .plan_cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(&entry.plan));
                }
            }
        }
        self.engine()
            .stats
            .plan_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        let plan =
            Arc::new(Planner::new(snapshot.catalog()).plan_prevalidated(&self.query, budget)?);
        let mut cache = self.plans.write().expect("plan cache poisoned");
        // versions are monotonic per engine: move the cache forward (dropping
        // plans of older catalogs), but never roll it back — a reader that
        // stalled on an old snapshot must not evict plans a newer snapshot
        // just published
        if cache.version < version {
            cache.by_budget.clear();
            cache.version = version;
        }
        if cache.version == version {
            // LRU cap: serving many distinct budgets must not grow the cache
            // without bound
            if cache.by_budget.len() >= PLAN_CACHE_CAPACITY
                && !cache.by_budget.contains_key(&budget)
            {
                if let Some((&lru, _)) = cache
                    .by_budget
                    .iter()
                    .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                {
                    cache.by_budget.remove(&lru);
                }
            }
            cache.by_budget.insert(
                budget,
                CacheEntry {
                    plan: Arc::clone(&plan),
                    last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed) + 1),
                },
            );
        }
        Ok(plan)
    }

    /// Answers under `spec`, re-using the cached plan for repeated budgets
    /// (only execution — C4 — runs again). Zero specs yield an empty answer,
    /// exactly like [`Beas::answer`]. Thread-safe: the plan and the execution
    /// share one consistent engine snapshot.
    pub fn answer(&self, spec: ResourceSpec) -> Result<BeasAnswer> {
        let engine = self.engine();
        let snapshot = engine.snapshot();
        let budget = snapshot.catalog().budget(&spec)?;
        if budget == 0 {
            engine.stats.record_answer(0);
            return Ok(empty_answer(self.output_columns.clone()));
        }
        let plan = self.plan_for_budget(&snapshot, budget)?;
        let outcome = engine.execute_on(&plan, &snapshot)?;
        engine.stats.record_answer(outcome.accessed);
        Ok(answer_from(&plan, outcome))
    }
}

impl PreparedQuery<'static> {
    /// Validates `query` once against a shared engine; the handle owns an
    /// `Arc` clone, so it can be stored in `'static` serving state.
    pub(crate) fn shared(engine: Arc<Beas>, query: &BeasQuery) -> Result<Self> {
        Self::new(EngineRef::Shared(engine), query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ConstraintSpec;
    use beas_relal::{
        Attribute, CompareOp, Database, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
    };

    fn poi_engine(n: i64) -> Beas {
        let schema = DatabaseSchema::new(vec![RelationSchema::new(
            "poi",
            vec![
                Attribute::categorical("type"),
                Attribute::text("city"),
                Attribute::double("price"),
            ],
        )]);
        let mut db = Database::new(schema);
        let cities = ["NYC", "LA", "Chicago"];
        for i in 0..n {
            db.insert_row(
                "poi",
                vec![
                    Value::from(if i % 2 == 0 { "hotel" } else { "museum" }),
                    Value::from(cities[(i % 3) as usize]),
                    Value::Double(30.0 + (i % 80) as f64),
                ],
            )
            .unwrap();
        }
        Beas::builder(db)
            .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
            .build()
            .unwrap()
    }

    fn hotels(engine: &Beas) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(engine.schema());
        let h = b.atom("poi", "h").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.bind_const(h, "city", "NYC").unwrap();
        b.filter_const(h, "price", CompareOp::Le, 80i64).unwrap();
        b.output(h, "price", "price").unwrap();
        b.build().unwrap().into()
    }

    #[test]
    fn prepare_validates_once_and_rejects_bad_queries() {
        let engine = poi_engine(120);
        let q = hotels(&engine);
        assert!(engine.prepare(&q).is_ok());
        let mut bad = match q {
            BeasQuery::Ra(crate::query::RaQuery::Spc(q)) => q,
            _ => unreachable!(),
        };
        bad.output.clear();
        assert!(engine.prepare(&bad.into()).is_err());
    }

    #[test]
    fn repeated_budgets_reuse_the_cached_plan() {
        let engine = poi_engine(240);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        assert_eq!(prepared.cached_plans(), 0);

        let first = prepared.plan(ResourceSpec::Ratio(0.1)).unwrap();
        assert_eq!(prepared.cached_plans(), 1);
        let second = prepared.plan(ResourceSpec::Ratio(0.1)).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "repeat budget must hit the cache"
        );

        // a spec in tuples resolving to the same budget shares the entry
        let budget = engine.catalog().budget(&ResourceSpec::Ratio(0.1)).unwrap();
        let third = prepared.plan(ResourceSpec::Tuples(budget)).unwrap();
        assert!(Arc::ptr_eq(&first, &third));
        assert_eq!(prepared.cached_plans(), 1);

        // a different budget plans afresh
        let other = prepared.plan(ResourceSpec::Ratio(0.5)).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(prepared.cached_plans(), 2);
    }

    #[test]
    fn prepared_answers_match_engine_answers() {
        let engine = poi_engine(240);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        for alpha in [0.05, 0.1, 0.5, 1.0] {
            let spec = ResourceSpec::Ratio(alpha);
            let via_engine = engine.answer(&q, spec).unwrap();
            let via_prepared = prepared.answer(spec).unwrap();
            assert_eq!(
                via_engine.answers.clone().sorted(),
                via_prepared.answers.clone().sorted(),
                "α={alpha}"
            );
            assert_eq!(via_engine.eta, via_prepared.eta);
            assert_eq!(via_engine.budget, via_prepared.budget);
        }
        // answering again at a seen budget still hits the cache
        assert_eq!(prepared.cached_plans(), 4);
        prepared.answer(ResourceSpec::Ratio(0.1)).unwrap();
        assert_eq!(prepared.cached_plans(), 4);
    }

    #[test]
    fn zero_and_invalid_specs_behave_like_the_engine() {
        let engine = poi_engine(60);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        let empty = prepared.answer(ResourceSpec::Ratio(0.0)).unwrap();
        assert!(empty.answers.is_empty());
        assert_eq!(empty.accessed, 0);
        assert_eq!(empty.answers.columns, vec!["price"]);
        assert!(prepared.plan(ResourceSpec::Ratio(0.0)).is_err());
        assert!(prepared.answer(ResourceSpec::Ratio(7.0)).is_err());
        assert_eq!(prepared.cached_plans(), 0);
    }

    #[test]
    fn plan_cache_is_capped_with_lru_eviction() {
        let engine = poi_engine(600);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        // cycle through more distinct budgets than the cache may hold
        let budgets: Vec<usize> = (1..=PLAN_CACHE_CAPACITY + 8).collect();
        for &b in &budgets {
            prepared.plan(ResourceSpec::Tuples(b)).unwrap();
        }
        assert!(
            prepared.cached_plans() <= PLAN_CACHE_CAPACITY,
            "cache grew to {} entries (cap {PLAN_CACHE_CAPACITY})",
            prepared.cached_plans()
        );
        // the most recent budget survives and still hits
        let last = *budgets.last().unwrap();
        let a = prepared.plan(ResourceSpec::Tuples(last)).unwrap();
        let b = prepared.plan(ResourceSpec::Tuples(last)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "recent budget must stay cached");
        // the oldest budget was evicted, so re-planning yields a fresh Arc —
        // and keeps working
        let again = prepared.plan(ResourceSpec::Tuples(budgets[0])).unwrap();
        assert_eq!(again.budget, budgets[0]);
    }

    #[test]
    fn maintenance_invalidates_cached_plans() {
        let engine = poi_engine(240);
        let q = hotels(&engine);
        let prepared = engine.prepare(&q).unwrap();
        let before = prepared.answer(ResourceSpec::FULL).unwrap();
        assert_eq!(prepared.cached_plans(), 1);

        // insert a matching row through C2 while the handle stays live
        engine
            .insert_row(
                "poi",
                vec![
                    Value::from("hotel"),
                    Value::from("NYC"),
                    Value::Double(41.5),
                ],
            )
            .unwrap();

        // the stale plan is dropped and the new tuple is visible
        let after = prepared.answer(ResourceSpec::FULL).unwrap();
        assert_eq!(after.answers.len(), before.answers.len() + 1);
        assert!(after.answers.rows().any(|r| r == vec![Value::Double(41.5)]));
        assert_eq!(prepared.cached_plans(), 1, "stale entries must be dropped");

        // and it must agree with planning from scratch on the updated engine
        let direct = engine.answer(&q, ResourceSpec::FULL).unwrap();
        assert_eq!(
            after.answers.clone().sorted(),
            direct.answers.clone().sorted()
        );
    }
}
