//! Random query-workload generation (Sec. 8, "Queries").
//!
//! The paper generates 30 queries per dataset: roughly 30% aggregate SPC
//! queries, the rest RA queries with 0–3 set differences, varying
//!
//! * `#-sel` — the number of predicates in the selection condition, in `\[3,7\]`;
//! * `#-prod` — the number of Cartesian products (joins), in `\[0,4\]`;
//!
//! with half of the selection attributes drawn from the access constraints and
//! constants sampled from the data. [`generate_workload`] reproduces that
//! recipe over any [`Dataset`].

use beas_core::{AggQuery, BeasQuery, RaQuery};
use beas_relal::{AggFunc, CompareOp, Database, DistanceKind, SpcQuery, SpcQueryBuilder, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::Dataset;

/// The kind of a generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// A plain SPC query (no union/difference/aggregation).
    Spc,
    /// An RA query with at least one set difference.
    Ra,
    /// An aggregate query over an SPC block.
    AggregateSpc,
}

/// A generated query together with its workload knobs.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The query.
    pub query: BeasQuery,
    /// Query kind.
    pub kind: QueryKind,
    /// Number of selection predicates (`#-sel`).
    pub num_sel: usize,
    /// Number of Cartesian products (`#-prod`).
    pub num_prod: usize,
}

/// Configuration of the workload generator.
#[derive(Debug, Clone, Copy)]
pub struct QueryGenConfig {
    /// Number of queries to generate.
    pub count: usize,
    /// Inclusive range of `#-sel`.
    pub sel_range: (usize, usize),
    /// Inclusive range of `#-prod`.
    pub prod_range: (usize, usize),
    /// Fraction of aggregate SPC queries (the paper uses 30%).
    pub aggregate_fraction: f64,
    /// Maximum number of set differences in RA queries (the paper uses 0–3).
    pub max_differences: usize,
    /// RNG seed (workloads are deterministic per seed).
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            count: 30,
            sel_range: (3, 7),
            prod_range: (0, 4),
            aggregate_fraction: 0.3,
            max_differences: 3,
            seed: 42,
        }
    }
}

/// Generates a query workload over a dataset.
///
/// Queries with empty exact answers tell the accuracy measures nothing (every
/// method scores a vacuous 1.0), so the generator retries until the ground
/// truth of the query's positive part is non-empty, like the paper's workload
/// whose constants are drawn from the data.
pub fn generate_workload(dataset: &Dataset, cfg: &QueryGenConfig) -> Vec<GeneratedQuery> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.count);
    let mut fallback = Vec::new();
    let mut attempts = 0usize;
    while out.len() < cfg.count && attempts < cfg.count * 40 {
        attempts += 1;
        let num_sel = rng.gen_range(cfg.sel_range.0..=cfg.sel_range.1);
        let num_prod = rng.gen_range(cfg.prod_range.0..=cfg.prod_range.1);
        let aggregate = rng.gen_bool(cfg.aggregate_fraction);
        let generated = if aggregate {
            generate_aggregate(dataset, num_sel, num_prod.min(2), &mut rng)
        } else {
            let diffs = rng.gen_range(0..=cfg.max_differences);
            generate_ra(dataset, num_sel, num_prod, diffs, &mut rng)
        };
        let Some(q) = generated else { continue };
        if q.query.validate(&dataset.db.schema).is_err() {
            continue;
        }
        // keep queries whose positive part produces answers; stash the rest as
        // a fallback in case the data is too sparse to fill the workload
        let informative = beas_core::exact_answers(&q.query, &dataset.db)
            .map(|r| !r.is_empty())
            .unwrap_or(false);
        if informative {
            out.push(q);
        } else if fallback.len() < cfg.count {
            fallback.push(q);
        }
    }
    while out.len() < cfg.count {
        match fallback.pop() {
            Some(q) => out.push(q),
            None => break,
        }
    }
    out.truncate(cfg.count);
    out
}

/// Generates a single SPC query with the given knobs, if possible.
pub fn generate_spc(
    dataset: &Dataset,
    num_sel: usize,
    num_prod: usize,
    rng: &mut StdRng,
) -> Option<SpcQuery> {
    build_spc(dataset, num_sel, num_prod, rng).map(|(q, _)| q)
}

/// Generates an RA query with `diffs` set differences.
fn generate_ra(
    dataset: &Dataset,
    num_sel: usize,
    num_prod: usize,
    diffs: usize,
    rng: &mut StdRng,
) -> Option<GeneratedQuery> {
    let (base, tighten) = build_spc(dataset, num_sel, num_prod, rng)?;
    let mut query = RaQuery::spc(base.clone());
    for _ in 0..diffs {
        // the negated side is the same query with one strictly tighter
        // numeric selection, so the difference is non-trivial but compatible
        let variant = tighten(rng)?;
        query = query.difference(RaQuery::spc(variant));
    }
    let kind = if diffs == 0 {
        QueryKind::Spc
    } else {
        QueryKind::Ra
    };
    Some(GeneratedQuery {
        query: BeasQuery::Ra(query),
        kind,
        num_sel,
        num_prod,
    })
}

/// Generates an aggregate SPC query.
fn generate_aggregate(
    dataset: &Dataset,
    num_sel: usize,
    num_prod: usize,
    rng: &mut StdRng,
) -> Option<GeneratedQuery> {
    let (base, _) = build_spc(dataset, num_sel, num_prod, rng)?;
    // group by the first categorical output if any, otherwise the first output
    let cols: Vec<String> = base.output.iter().map(|o| o.name.clone()).collect();
    if cols.len() < 2 {
        return None;
    }
    let group = cols[0].clone();
    let agg_col = cols[1].clone();
    // numeric aggregates only make sense over numeric columns; fall back to
    // count otherwise
    let agg_col_numeric = base
        .output_distances(&dataset.db.schema)
        .ok()
        .and_then(|d| d.get(1).copied())
        .map(|k| k.is_numeric())
        .unwrap_or(false);
    let agg = if agg_col_numeric {
        *[
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ]
        .choose(rng)
        .unwrap()
    } else {
        AggFunc::Count
    };
    let agg_query =
        AggQuery::new(RaQuery::spc(base), vec![group], agg, agg_col, "agg_value").ok()?;
    Some(GeneratedQuery {
        query: BeasQuery::Aggregate(agg_query),
        kind: QueryKind::AggregateSpc,
        num_sel,
        num_prod,
    })
}

/// A candidate attribute for selections or outputs.
#[derive(Debug, Clone)]
struct AttrRef {
    atom: usize,
    attr: String,
    kind: DistanceKind,
    from_constraint: bool,
}

type TightenFn = Box<dyn Fn(&mut StdRng) -> Option<SpcQuery>>;

/// Builds one SPC query and a closure that produces "tightened" variants of it
/// (used as the negated side of set differences).
fn build_spc(
    dataset: &Dataset,
    num_sel: usize,
    num_prod: usize,
    rng: &mut StdRng,
) -> Option<(SpcQuery, TightenFn)> {
    let db = &dataset.db;
    let schema = &db.schema;

    // ---- choose a connected chain of relations --------------------------------
    let mut relations: Vec<String> = Vec::new();
    let start = schema.relations[rng.gen_range(0..schema.relations.len())]
        .name
        .clone();
    relations.push(start);
    let mut joins: Vec<(usize, String, usize, String)> = Vec::new(); // (atom a, attr, atom b, attr)
    for _ in 0..num_prod {
        // find edges connecting the current set to a fresh relation
        let mut options = Vec::new();
        for (ai, rel) in relations.iter().enumerate() {
            for edge in &dataset.join_edges {
                if let Some((other_rel, other_attr, this_attr)) = edge.other_end(rel) {
                    if !relations.iter().any(|r| r == other_rel) {
                        options.push((
                            ai,
                            this_attr.to_string(),
                            other_rel.to_string(),
                            other_attr.to_string(),
                        ));
                    }
                }
            }
        }
        if options.is_empty() {
            break;
        }
        let (ai, this_attr, other_rel, other_attr) =
            options[rng.gen_range(0..options.len())].clone();
        relations.push(other_rel);
        joins.push((ai, this_attr, relations.len() - 1, other_attr));
    }

    // ---- build the atoms and joins ---------------------------------------------
    let mut builder = SpcQueryBuilder::new(schema);
    let mut atom_ids = Vec::new();
    for (i, rel) in relations.iter().enumerate() {
        atom_ids.push(builder.atom(rel, &format!("t{i}")).ok()?);
    }
    for (a, a_attr, b, b_attr) in &joins {
        builder
            .join(
                (atom_ids[*a], a_attr.as_str()),
                (atom_ids[*b], b_attr.as_str()),
            )
            .ok()?;
    }

    // ---- candidate attributes ---------------------------------------------------
    let mut candidates: Vec<AttrRef> = Vec::new();
    for (ai, rel) in relations.iter().enumerate() {
        let rel_schema = schema.relation(rel).ok()?;
        for attr in &rel_schema.attributes {
            if attr.distance == DistanceKind::Trivial {
                // skip surrogate keys and free-text attributes: joins still use
                // them, but selections/outputs stick to attributes with a
                // meaningful distance (as the paper's query workload does)
                continue;
            }
            let from_constraint = dataset
                .constraints
                .iter()
                .any(|c| c.relation == *rel && c.x.contains(&attr.name));
            candidates.push(AttrRef {
                atom: atom_ids[ai],
                attr: attr.name.clone(),
                kind: attr.distance,
                from_constraint,
            });
        }
    }
    if candidates.is_empty() {
        return None;
    }

    // ---- selections -------------------------------------------------------------
    // Half of the selection attributes come from access-constraint keys.
    let constraint_candidates: Vec<AttrRef> = candidates
        .iter()
        .filter(|c| c.from_constraint)
        .cloned()
        .collect();
    let mut numeric_sel: Option<(usize, String, f64)> = None;
    for i in 0..num_sel {
        let pool = if i % 2 == 0 && !constraint_candidates.is_empty() {
            &constraint_candidates
        } else {
            &candidates
        };
        let cand = &pool[rng.gen_range(0..pool.len())];
        let value = sample_value(
            db,
            &relations_of(&cand.atom, &atom_ids, &relations),
            &cand.attr,
            rng,
        )?;
        match cand.kind {
            k if k.is_numeric() => {
                let op = if rng.gen_bool(0.5) {
                    CompareOp::Le
                } else {
                    CompareOp::Ge
                };
                builder
                    .filter_const(cand.atom, &cand.attr, op, value.clone())
                    .ok()?;
                if numeric_sel.is_none() {
                    if let Some(v) = value.as_f64() {
                        numeric_sel = Some((cand.atom, cand.attr.clone(), v));
                    }
                }
            }
            _ => {
                builder
                    .filter_const(cand.atom, &cand.attr, CompareOp::Eq, value.clone())
                    .ok()?;
            }
        }
    }

    // ---- outputs: one categorical (if any) + one or two numeric ------------------
    let categorical: Vec<&AttrRef> = candidates
        .iter()
        .filter(|c| matches!(c.kind, DistanceKind::Categorical))
        .collect();
    let numeric: Vec<&AttrRef> = candidates.iter().filter(|c| c.kind.is_numeric()).collect();
    let mut used_names: Vec<String> = Vec::new();
    if let Some(cat) = categorical.first() {
        let name = format!(
            "{}_{}",
            relations[cat.atom.min(relations.len() - 1)],
            cat.attr
        );
        builder.output(cat.atom, &cat.attr, &name).ok()?;
        used_names.push(name);
    }
    for n in numeric.iter().take(2) {
        let name = format!("{}_{}", relations[n.atom.min(relations.len() - 1)], n.attr);
        if used_names.contains(&name) {
            continue;
        }
        builder.output(n.atom, &n.attr, &name).ok()?;
        used_names.push(name);
    }
    if used_names.is_empty() {
        // relations with neither numeric nor categorical attributes (pure
        // dimension keys) cannot anchor a meaningful query
        return None;
    }

    let base = builder.build().ok()?;

    // ---- the "tighten" closure for set differences -------------------------------
    let tighten_base = base.clone();
    let tighten: TightenFn = Box::new(move |rng: &mut StdRng| {
        let mut variant = tighten_base.clone();
        // tighten the first numeric selection by a random factor; when there
        // is none, add a synthetic numeric restriction on an output variable
        let mut changed = false;
        for sel in &mut variant.selections {
            if let beas_relal::SelCond::VarConst { op, value, .. } = sel {
                if let Some(v) = value.as_f64() {
                    if matches!(op, CompareOp::Le) {
                        *value = Value::Double(v * rng.gen_range(0.3..0.8));
                        changed = true;
                        break;
                    }
                    if matches!(op, CompareOp::Ge) {
                        *value = Value::Double(v * rng.gen_range(1.2..2.0));
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            // fall back: negate on an output variable being below its median-ish value
            let out_var = variant.output.last()?.var;
            variant.selections.push(beas_relal::SelCond::VarConst {
                var: out_var,
                op: CompareOp::Le,
                value: Value::Double(0.0),
            });
        }
        Some(variant)
    });
    let _ = numeric_sel;
    Some((base, tighten))
}

/// The relation name of an atom id (helper for value sampling).
fn relations_of(atom: &usize, atom_ids: &[usize], relations: &[String]) -> String {
    let idx = atom_ids.iter().position(|a| a == atom).unwrap_or(0);
    relations[idx].clone()
}

/// Samples an existing value of `relation.attr` from the database.
fn sample_value(db: &Database, relation: &str, attr: &str, rng: &mut StdRng) -> Option<Value> {
    let rel = db.relation(relation).ok()?;
    if rel.is_empty() {
        return None;
    }
    let idx = rel.column_index(attr).ok()?;
    Some(rel.value_at(rng.gen_range(0..rel.len()), idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{airca::airca_lite, tfacc::tfacc_lite, tpch::tpch_lite};
    use beas_core::exact_answers;

    #[test]
    fn workload_has_requested_size_and_mix() {
        let dataset = tpch_lite(1, 11);
        let cfg = QueryGenConfig {
            count: 30,
            seed: 5,
            ..QueryGenConfig::default()
        };
        let queries = generate_workload(&dataset, &cfg);
        assert_eq!(queries.len(), 30);
        let aggregates = queries
            .iter()
            .filter(|q| q.kind == QueryKind::AggregateSpc)
            .count();
        assert!(aggregates > 0, "expected some aggregate queries");
        assert!(aggregates < 30, "expected some non-aggregate queries");
        for q in &queries {
            assert!(q.num_sel >= 3 && q.num_sel <= 7);
            assert!(q.num_prod <= 4);
            q.query.validate(&dataset.db.schema).unwrap();
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let dataset = tfacc_lite(1, 3);
        let cfg = QueryGenConfig {
            count: 10,
            seed: 9,
            ..QueryGenConfig::default()
        };
        let a = generate_workload(&dataset, &cfg);
        let b = generate_workload(&dataset, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.query, y.query);
        }
    }

    #[test]
    fn generated_queries_evaluate_on_ground_truth() {
        let dataset = airca_lite(1, 2);
        let cfg = QueryGenConfig {
            count: 8,
            seed: 21,
            ..QueryGenConfig::default()
        };
        let queries = generate_workload(&dataset, &cfg);
        assert!(!queries.is_empty());
        for q in &queries {
            // must not error; empty answers are fine
            exact_answers(&q.query, &dataset.db).unwrap();
        }
    }

    #[test]
    fn difference_queries_have_multiple_leaves() {
        let dataset = tpch_lite(1, 4);
        let cfg = QueryGenConfig {
            count: 40,
            aggregate_fraction: 0.0,
            seed: 17,
            ..QueryGenConfig::default()
        };
        let queries = generate_workload(&dataset, &cfg);
        let with_diff = queries.iter().filter(|q| q.kind == QueryKind::Ra).count();
        assert!(with_diff > 0, "expected some difference queries");
        for q in &queries {
            if q.kind == QueryKind::Ra {
                assert!(q.query.ra().num_differences() >= 1);
                assert!(q.query.ra().num_differences() <= 3);
            }
        }
    }

    #[test]
    fn spc_generator_controls_products() {
        let dataset = tfacc_lite(1, 3);
        let mut rng = StdRng::seed_from_u64(33);
        for target in 0..3usize {
            if let Some(q) = generate_spc(&dataset, 4, target, &mut rng) {
                assert!(q.relation_count() <= target + 1);
                assert!(q.relation_count() >= 1);
            }
        }
    }

    #[test]
    fn sel_counts_are_at_least_the_requested_explicit_predicates() {
        let dataset = tpch_lite(1, 4);
        let mut rng = StdRng::seed_from_u64(3);
        // the builder adds exactly `num_sel` explicit conditions (joins and
        // tableau constants come on top); some random chains may not support
        // a query, so try a few draws
        let q = (0..10)
            .find_map(|_| generate_spc(&dataset, 5, 1, &mut rng))
            .unwrap();
        assert_eq!(q.selections.len(), 5);
    }
}
