//! TPCH-lite: a scaled-down synthetic stand-in for the TPC-H `dbgen` data used
//! in the paper's scalability experiments (Fig. 6(e), 6(f), 6(j), 6(l)).
//!
//! The schema follows the classic TPC-H star/snowflake shape (region, nation,
//! supplier, customer, part, orders, lineitem) with simplified columns. The
//! scale factor multiplies the per-relation base cardinalities, so sweeping it
//! reproduces the paper's "varying |D|" experiments at laptop scale.

use beas_core::ConstraintSpec;
use beas_relal::{Attribute, Database, DatabaseSchema, RelationSchema, Value, ValueType};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::{Dataset, JoinEdge};

/// Regions of the TPCH-lite world.
const REGIONS: [&str; 5] = ["AMERICA", "EUROPE", "ASIA", "AFRICA", "MIDDLE EAST"];
/// Market segments.
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
/// Order statuses.
const STATUSES: [&str; 3] = ["O", "F", "P"];
/// Order priorities.
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
/// Part brands.
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];

/// The TPCH-lite schema.
pub fn tpch_schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![
        RelationSchema::new(
            "region",
            vec![
                Attribute::id("r_regionkey"),
                Attribute::categorical("r_name"),
            ],
        ),
        RelationSchema::new(
            "nation",
            vec![
                Attribute::id("n_nationkey"),
                Attribute::id("n_regionkey"),
                Attribute::categorical("n_name"),
            ],
        ),
        RelationSchema::new(
            "supplier",
            vec![
                Attribute::id("s_suppkey"),
                Attribute::id("s_nationkey"),
                // numeric distances are normalised by the attribute's range so
                // a full-range error counts as distance 1 (see DESIGN.md)
                Attribute::scaled("s_acctbal", ValueType::Double, 11_000),
            ],
        ),
        RelationSchema::new(
            "customer",
            vec![
                Attribute::id("c_custkey"),
                Attribute::id("c_nationkey"),
                Attribute::categorical("c_segment"),
                Attribute::scaled("c_acctbal", ValueType::Double, 11_000),
            ],
        ),
        RelationSchema::new(
            "part",
            vec![
                Attribute::id("p_partkey"),
                Attribute::categorical("p_brand"),
                Attribute::scaled("p_size", ValueType::Int, 50),
                Attribute::scaled("p_retailprice", ValueType::Double, 1_100),
            ],
        ),
        RelationSchema::new(
            "orders",
            vec![
                Attribute::id("o_orderkey"),
                Attribute::id("o_custkey"),
                Attribute::categorical("o_status"),
                Attribute::scaled("o_totalprice", ValueType::Double, 50_000),
                Attribute::scaled("o_year", ValueType::Int, 10),
                Attribute::categorical("o_priority"),
            ],
        ),
        RelationSchema::new(
            "lineitem",
            vec![
                Attribute::id("l_orderkey"),
                Attribute::id("l_partkey"),
                Attribute::id("l_suppkey"),
                Attribute::scaled("l_quantity", ValueType::Int, 50),
                Attribute::scaled("l_extendedprice", ValueType::Double, 100_000),
                Attribute::double("l_discount"),
                Attribute::scaled("l_shipyear", ValueType::Int, 10),
            ],
        ),
    ])
}

/// Generates a TPCH-lite dataset at the given scale factor.
///
/// Base cardinalities (scale 1): 5 regions, 25 nations, 10 suppliers,
/// 50 customers, 30 parts, 200 orders, 600 lineitems — about 920 tuples per
/// scale unit, so scale 25 yields ≈ 23 000 tuples (the sweep of Fig. 6(e)).
pub fn tpch_lite(scale: usize, seed: u64) -> Dataset {
    let scale = scale.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(tpch_schema());

    let n_nations = 25usize;
    let n_suppliers = 10 * scale;
    let n_customers = 50 * scale;
    let n_parts = 30 * scale;
    let n_orders = 200 * scale;
    let n_lineitems = 600 * scale;

    for (i, name) in REGIONS.iter().enumerate() {
        db.insert_row("region", vec![Value::Int(i as i64), Value::from(*name)])
            .expect("region row");
    }
    for i in 0..n_nations {
        db.insert_row(
            "nation",
            vec![
                Value::Int(i as i64),
                Value::Int((i % REGIONS.len()) as i64),
                Value::from(format!("NATION_{i}")),
            ],
        )
        .expect("nation row");
    }
    for i in 0..n_suppliers {
        db.insert_row(
            "supplier",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_nations as i64)),
                Value::Double((rng.gen_range(-999.0..10000.0f64) * 100.0).round() / 100.0),
            ],
        )
        .expect("supplier row");
    }
    for i in 0..n_customers {
        db.insert_row(
            "customer",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_nations as i64)),
                Value::from(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                Value::Double((rng.gen_range(-999.0..10000.0f64) * 100.0).round() / 100.0),
            ],
        )
        .expect("customer row");
    }
    for i in 0..n_parts {
        db.insert_row(
            "part",
            vec![
                Value::Int(i as i64),
                Value::from(BRANDS[rng.gen_range(0..BRANDS.len())]),
                Value::Int(rng.gen_range(1..51)),
                Value::Double((900.0 + rng.gen_range(0.0..1100.0f64) * 1.0).round()),
            ],
        )
        .expect("part row");
    }
    for i in 0..n_orders {
        // order totals are skewed: many small orders, few large ones
        let total = 100.0 + rng.gen_range(0.0f64..1.0).powi(3) * 50_000.0;
        db.insert_row(
            "orders",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_customers as i64)),
                Value::from(STATUSES[rng.gen_range(0..STATUSES.len())]),
                Value::Double(total.round()),
                Value::Int(rng.gen_range(1992..1999)),
                Value::from(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            ],
        )
        .expect("orders row");
    }
    for _ in 0..n_lineitems {
        let orderkey = rng.gen_range(0..n_orders as i64);
        let quantity = rng.gen_range(1..51);
        let price = quantity as f64 * rng.gen_range(900.0..2000.0f64);
        db.insert_row(
            "lineitem",
            vec![
                Value::Int(orderkey),
                Value::Int(rng.gen_range(0..n_parts as i64)),
                Value::Int(rng.gen_range(0..n_suppliers as i64)),
                Value::Int(quantity),
                Value::Double(price.round()),
                Value::Double((rng.gen_range(0.0..0.1f64) * 100.0).round() / 100.0),
                Value::Int(rng.gen_range(1992..1999)),
            ],
        )
        .expect("lineitem row");
    }

    Dataset {
        name: "TPCH".to_string(),
        db,
        constraints: vec![
            ConstraintSpec::new("nation", &["n_nationkey"], &["n_regionkey", "n_name"]),
            ConstraintSpec::new(
                "customer",
                &["c_custkey"],
                &["c_nationkey", "c_segment", "c_acctbal"],
            ),
            ConstraintSpec::new(
                "part",
                &["p_partkey"],
                &["p_brand", "p_size", "p_retailprice"],
            ),
            ConstraintSpec::new("supplier", &["s_suppkey"], &["s_nationkey", "s_acctbal"]),
            ConstraintSpec::new(
                "orders",
                &["o_custkey"],
                &["o_orderkey", "o_totalprice", "o_year"],
            ),
            ConstraintSpec::new(
                "lineitem",
                &["l_orderkey"],
                &["l_partkey", "l_suppkey", "l_quantity", "l_extendedprice"],
            ),
            // selection-oriented templates; their Y includes the join keys so
            // that plans can keep following foreign keys exactly
            ConstraintSpec::new(
                "orders",
                &["o_status", "o_year"],
                &["o_orderkey", "o_custkey", "o_totalprice"],
            ),
            ConstraintSpec::new(
                "part",
                &["p_brand"],
                &["p_partkey", "p_size", "p_retailprice"],
            ),
            ConstraintSpec::new(
                "lineitem",
                &["l_shipyear"],
                &[
                    "l_orderkey",
                    "l_partkey",
                    "l_quantity",
                    "l_extendedprice",
                    "l_discount",
                ],
            ),
        ],
        join_edges: vec![
            JoinEdge::new("nation", "n_regionkey", "region", "r_regionkey"),
            JoinEdge::new("customer", "c_nationkey", "nation", "n_nationkey"),
            JoinEdge::new("supplier", "s_nationkey", "nation", "n_nationkey"),
            JoinEdge::new("orders", "o_custkey", "customer", "c_custkey"),
            JoinEdge::new("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinEdge::new("lineitem", "l_partkey", "part", "p_partkey"),
            JoinEdge::new("lineitem", "l_suppkey", "supplier", "s_suppkey"),
        ],
        qcs: vec![
            (
                "orders".to_string(),
                vec!["o_status".to_string(), "o_year".to_string()],
            ),
            ("lineitem".to_string(), vec!["l_shipyear".to_string()]),
            ("part".to_string(), vec!["p_brand".to_string()]),
            ("customer".to_string(), vec!["c_segment".to_string()]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale_linearly() {
        let d1 = tpch_lite(1, 1);
        let d3 = tpch_lite(3, 1);
        assert_eq!(d1.db.relation("orders").unwrap().len(), 200);
        assert_eq!(d3.db.relation("orders").unwrap().len(), 600);
        assert_eq!(d1.db.relation("region").unwrap().len(), 5);
        assert_eq!(d3.db.relation("region").unwrap().len(), 5);
        assert!(d3.size() > 2 * d1.size());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = tpch_lite(2, 7);
        let b = tpch_lite(2, 7);
        assert_eq!(
            a.db.relation("lineitem").unwrap(),
            b.db.relation("lineitem").unwrap()
        );
        let c = tpch_lite(2, 8);
        assert_ne!(
            a.db.relation("lineitem").unwrap(),
            c.db.relation("lineitem").unwrap()
        );
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let d = tpch_lite(2, 3);
        let customers = d.db.relation("customer").unwrap().len() as i64;
        for row in d.db.relation("orders").unwrap().rows() {
            let custkey = row[1].as_i64().unwrap();
            assert!(custkey >= 0 && custkey < customers);
        }
        let orders = d.db.relation("orders").unwrap().len() as i64;
        for row in d.db.relation("lineitem").unwrap().rows() {
            assert!(row[0].as_i64().unwrap() < orders);
        }
    }

    #[test]
    fn constraints_and_edges_reference_schema_attributes() {
        let d = tpch_lite(1, 1);
        for c in &d.constraints {
            let rel = d.db.schema.relation(&c.relation).unwrap();
            for a in c.x.iter().chain(c.y.iter()) {
                rel.attr_index(a).unwrap();
            }
        }
        for e in &d.join_edges {
            d.db.schema
                .relation(&e.left_rel)
                .unwrap()
                .attr_index(&e.left_attr)
                .unwrap();
            d.db.schema
                .relation(&e.right_rel)
                .unwrap()
                .attr_index(&e.right_attr)
                .unwrap();
        }
        for (rel, cols) in &d.qcs {
            let schema = d.db.schema.relation(rel).unwrap();
            for c in cols {
                schema.attr_index(c).unwrap();
            }
        }
    }

    #[test]
    fn skewed_order_totals_have_a_long_tail() {
        let d = tpch_lite(5, 2);
        let totals: Vec<f64> =
            d.db.relation("orders")
                .unwrap()
                .rows()
                .map(|r| r[3].as_f64().unwrap())
                .collect();
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        let max = totals.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 3.0 * mean, "expected a skewed distribution");
    }
}
