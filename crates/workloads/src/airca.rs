//! AIRCA-lite: a synthetic stand-in for the paper's AIRCA dataset (US flight
//! on-time performance \[1\] + carrier statistics \[2\], 162 M tuples / 60 GB).
//!
//! The real data cannot be redistributed; this generator reproduces the shape
//! the BEAS experiments rely on: a large fact table (`flights`) with numeric
//! delay/distance columns and skewed per-carrier volumes, small dimension
//! tables (`carriers`, `airports`) and a per-carrier-per-year statistics table
//! (`carrier_stats`), connected by key/foreign-key joins.

use beas_core::ConstraintSpec;
use beas_relal::{Attribute, Database, DatabaseSchema, RelationSchema, Value, ValueType};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::{Dataset, JoinEdge};

/// US state-like region codes used by the airport dimension.
const STATES: [&str; 10] = ["CA", "TX", "NY", "FL", "IL", "WA", "GA", "CO", "MA", "NV"];
/// Carrier service regions.
const REGIONS: [&str; 4] = ["NATIONAL", "REGIONAL", "LOWCOST", "CARGO"];

/// The AIRCA-lite schema.
pub fn airca_schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![
        RelationSchema::new(
            "carriers",
            vec![
                Attribute::id("carrier_id"),
                Attribute::categorical("region"),
                // numeric distances are normalised by the attribute's range
                Attribute::scaled("fleet_size", ValueType::Int, 800),
            ],
        ),
        RelationSchema::new(
            "airports",
            vec![
                Attribute::id("airport_id"),
                Attribute::categorical("state"),
                Attribute::scaled("traffic_rank", ValueType::Int, 40),
            ],
        ),
        RelationSchema::new(
            "flights",
            vec![
                Attribute::id("flight_id"),
                Attribute::id("carrier_id"),
                Attribute::id("origin_id"),
                Attribute::id("dest_id"),
                Attribute::scaled("year", ValueType::Int, 10),
                Attribute::scaled("month", ValueType::Int, 12),
                Attribute::scaled("dep_delay", ValueType::Double, 250),
                Attribute::scaled("arr_delay", ValueType::Double, 300),
                Attribute::scaled("distance", ValueType::Double, 2_800),
                Attribute::categorical("cancelled"),
            ],
        ),
        RelationSchema::new(
            "carrier_stats",
            vec![
                Attribute::id("carrier_id"),
                Attribute::scaled("year", ValueType::Int, 10),
                Attribute::scaled("on_time_pct", ValueType::Double, 40),
                Attribute::scaled("total_flights", ValueType::Int, 90_000),
            ],
        ),
    ])
}

/// Generates an AIRCA-lite dataset.
///
/// Base cardinalities (scale 1): 10 carriers, 40 airports, 800 flights,
/// 80 carrier-stat rows. Flight volume is skewed towards a few large carriers,
/// and delays follow a heavy-tailed distribution (most flights on time, some
/// very late), which is what makes approximate delay queries interesting.
pub fn airca_lite(scale: usize, seed: u64) -> Dataset {
    let scale = scale.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(airca_schema());

    let n_carriers = 10usize;
    let n_airports = 40usize.min(10 + 10 * scale);
    let n_flights = 800 * scale;
    let years = 1995..2003i64;

    for i in 0..n_carriers {
        db.insert_row(
            "carriers",
            vec![
                Value::Int(i as i64),
                Value::from(REGIONS[i % REGIONS.len()]),
                Value::Int(rng.gen_range(20..800)),
            ],
        )
        .expect("carriers row");
    }
    for i in 0..n_airports {
        db.insert_row(
            "airports",
            vec![
                Value::Int(i as i64),
                Value::from(STATES[i % STATES.len()]),
                Value::Int((i + 1) as i64),
            ],
        )
        .expect("airports row");
    }
    for i in 0..n_flights {
        // carrier volumes are skewed: carrier id drawn from a squared uniform
        let carrier = ((rng.gen_range(0.0f64..1.0)).powi(2) * n_carriers as f64) as i64;
        let origin = rng.gen_range(0..n_airports as i64);
        let mut dest = rng.gen_range(0..n_airports as i64);
        if dest == origin {
            dest = (dest + 1) % n_airports as i64;
        }
        // heavy-tailed delays: 70% on time-ish, long positive tail
        let dep_delay = if rng.gen_bool(0.7) {
            rng.gen_range(-10.0..15.0f64)
        } else {
            rng.gen_range(15.0..240.0f64)
        };
        let arr_delay = dep_delay + rng.gen_range(-20.0..30.0f64);
        db.insert_row(
            "flights",
            vec![
                Value::Int(i as i64),
                Value::Int(carrier.min(n_carriers as i64 - 1)),
                Value::Int(origin),
                Value::Int(dest),
                Value::Int(rng.gen_range(years.clone())),
                Value::Int(rng.gen_range(1..13)),
                Value::Double(dep_delay.round()),
                Value::Double(arr_delay.round()),
                Value::Double(rng.gen_range(100.0..2800.0f64).round()),
                Value::from(if rng.gen_bool(0.02) { "Y" } else { "N" }),
            ],
        )
        .expect("flights row");
    }
    for carrier in 0..n_carriers as i64 {
        for year in years.clone() {
            db.insert_row(
                "carrier_stats",
                vec![
                    Value::Int(carrier),
                    Value::Int(year),
                    Value::Double((rng.gen_range(55.0..95.0f64) * 10.0).round() / 10.0),
                    Value::Int(rng.gen_range(1000..90000)),
                ],
            )
            .expect("carrier_stats row");
        }
    }

    Dataset {
        name: "AIRCA".to_string(),
        db,
        constraints: vec![
            ConstraintSpec::new("carriers", &["carrier_id"], &["region", "fleet_size"]),
            ConstraintSpec::new("airports", &["airport_id"], &["state", "traffic_rank"]),
            ConstraintSpec::new(
                "carrier_stats",
                &["carrier_id"],
                &["year", "on_time_pct", "total_flights"],
            ),
            ConstraintSpec::new(
                "flights",
                &["carrier_id", "year"],
                &["origin_id", "dest_id", "dep_delay", "arr_delay", "distance"],
            ),
            ConstraintSpec::new(
                "flights",
                &["origin_id"],
                &["carrier_id", "dep_delay", "distance"],
            ),
        ],
        join_edges: vec![
            JoinEdge::new("flights", "carrier_id", "carriers", "carrier_id"),
            JoinEdge::new("flights", "origin_id", "airports", "airport_id"),
            JoinEdge::new("flights", "dest_id", "airports", "airport_id"),
            JoinEdge::new("carrier_stats", "carrier_id", "carriers", "carrier_id"),
        ],
        qcs: vec![
            (
                "flights".to_string(),
                vec!["carrier_id".to_string(), "year".to_string()],
            ),
            ("carrier_stats".to_string(), vec!["carrier_id".to_string()]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flights_dominate_the_dataset_size() {
        let d = airca_lite(2, 1);
        let flights = d.db.relation("flights").unwrap().len();
        assert_eq!(flights, 1600);
        assert!(flights * 2 > d.size());
    }

    #[test]
    fn carrier_volumes_are_skewed() {
        let d = airca_lite(3, 5);
        let mut per_carrier = vec![0usize; 10];
        for row in d.db.relation("flights").unwrap().rows() {
            per_carrier[row[1].as_i64().unwrap() as usize] += 1;
        }
        let max = *per_carrier.iter().max().unwrap();
        let min = *per_carrier.iter().min().unwrap();
        assert!(
            max > 3 * min.max(1),
            "expected skewed carrier volumes: {per_carrier:?}"
        );
    }

    #[test]
    fn delays_have_heavy_tail() {
        let d = airca_lite(2, 9);
        let delays: Vec<f64> =
            d.db.relation("flights")
                .unwrap()
                .rows()
                .map(|r| r[6].as_f64().unwrap())
                .collect();
        let on_time = delays.iter().filter(|&&x| x < 15.0).count();
        let very_late = delays.iter().filter(|&&x| x > 60.0).count();
        assert!(on_time > delays.len() / 2);
        assert!(very_late > 0);
    }

    #[test]
    fn metadata_is_consistent_with_schema() {
        let d = airca_lite(1, 1);
        for c in &d.constraints {
            let rel = d.db.schema.relation(&c.relation).unwrap();
            for a in c.x.iter().chain(c.y.iter()) {
                rel.attr_index(a).unwrap();
            }
        }
        for e in &d.join_edges {
            d.db.schema
                .relation(&e.left_rel)
                .unwrap()
                .attr_index(&e.left_attr)
                .unwrap();
            d.db.schema
                .relation(&e.right_rel)
                .unwrap()
                .attr_index(&e.right_attr)
                .unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = airca_lite(1, 3);
        let b = airca_lite(1, 3);
        assert_eq!(
            a.db.relation("flights").unwrap(),
            b.db.relation("flights").unwrap()
        );
    }
}
