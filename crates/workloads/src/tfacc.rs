//! TFACC-lite: a synthetic stand-in for the paper's TFACC dataset (UK road
//! accidents 1979–2005 \[3\] + National Public Transport Access Nodes \[4\],
//! 89.7 M tuples / 21.4 GB).
//!
//! The generator mirrors the relational shape used by the experiments: an
//! accidents fact table keyed by road, with per-accident vehicles and
//! casualties detail tables and a roads dimension table.

use beas_core::ConstraintSpec;
use beas_relal::{Attribute, Database, DatabaseSchema, RelationSchema, Value, ValueType};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::{Dataset, JoinEdge};

/// Road classes.
const ROAD_CLASSES: [&str; 4] = ["Motorway", "A", "B", "Unclassified"];
/// Regions.
const REGIONS: [&str; 6] = [
    "London",
    "SouthEast",
    "Midlands",
    "North",
    "Scotland",
    "Wales",
];
/// Weather conditions.
const WEATHER: [&str; 4] = ["Fine", "Rain", "Snow", "Fog"];
/// Vehicle types.
const VEHICLE_TYPES: [&str; 5] = ["Car", "Motorcycle", "HGV", "Bus", "Bicycle"];
/// Casualty classes.
const CASUALTY_CLASSES: [&str; 3] = ["Driver", "Passenger", "Pedestrian"];

/// The TFACC-lite schema.
pub fn tfacc_schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![
        RelationSchema::new(
            "roads",
            vec![
                Attribute::id("road_id"),
                Attribute::categorical("road_class"),
                // numeric distances are normalised by the attribute's range
                Attribute::scaled("speed_limit", ValueType::Int, 70),
                Attribute::categorical("region"),
            ],
        ),
        RelationSchema::new(
            "accidents",
            vec![
                Attribute::id("accident_id"),
                Attribute::id("road_id"),
                Attribute::scaled("year", ValueType::Int, 30),
                Attribute::scaled("month", ValueType::Int, 12),
                Attribute::scaled("severity", ValueType::Int, 3),
                Attribute::scaled("num_vehicles", ValueType::Int, 3),
                Attribute::scaled("num_casualties", ValueType::Int, 3),
                Attribute::categorical("weather"),
            ],
        ),
        RelationSchema::new(
            "vehicles",
            vec![
                Attribute::id("vehicle_id"),
                Attribute::id("accident_id"),
                Attribute::categorical("vehicle_type"),
                Attribute::scaled("driver_age", ValueType::Int, 90),
            ],
        ),
        RelationSchema::new(
            "casualties",
            vec![
                Attribute::id("casualty_id"),
                Attribute::id("accident_id"),
                Attribute::categorical("casualty_class"),
                Attribute::scaled("age", ValueType::Int, 95),
                Attribute::scaled("severity", ValueType::Int, 3),
            ],
        ),
    ])
}

/// Generates a TFACC-lite dataset.
///
/// Base cardinalities (scale 1): 60 roads, 400 accidents, ~700 vehicles,
/// ~550 casualties. Accidents are skewed towards a few dangerous roads.
pub fn tfacc_lite(scale: usize, seed: u64) -> Dataset {
    let scale = scale.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(tfacc_schema());

    let n_roads = 60 * scale.clamp(1, 4);
    let n_accidents = 400 * scale;

    for i in 0..n_roads {
        let class = ROAD_CLASSES[i % ROAD_CLASSES.len()];
        let speed = match class {
            "Motorway" => 70,
            "A" => 60,
            "B" => 40,
            _ => 30,
        };
        db.insert_row(
            "roads",
            vec![
                Value::Int(i as i64),
                Value::from(class),
                Value::Int(speed),
                Value::from(REGIONS[i % REGIONS.len()]),
            ],
        )
        .expect("roads row");
    }

    let mut vehicle_id = 0i64;
    let mut casualty_id = 0i64;
    for i in 0..n_accidents {
        // a few roads attract most accidents
        let road = ((rng.gen_range(0.0f64..1.0)).powi(2) * n_roads as f64) as i64;
        let severity = rng.gen_range(1..4); // 1 fatal … 3 slight (UK coding)
        let num_vehicles = rng.gen_range(1..4);
        let num_casualties = rng.gen_range(1..4);
        db.insert_row(
            "accidents",
            vec![
                Value::Int(i as i64),
                Value::Int(road.min(n_roads as i64 - 1)),
                Value::Int(rng.gen_range(1979..2006)),
                Value::Int(rng.gen_range(1..13)),
                Value::Int(severity),
                Value::Int(num_vehicles),
                Value::Int(num_casualties),
                Value::from(WEATHER[rng.gen_range(0..WEATHER.len())]),
            ],
        )
        .expect("accidents row");
        for _ in 0..num_vehicles {
            db.insert_row(
                "vehicles",
                vec![
                    Value::Int(vehicle_id),
                    Value::Int(i as i64),
                    Value::from(VEHICLE_TYPES[rng.gen_range(0..VEHICLE_TYPES.len())]),
                    Value::Int(rng.gen_range(17..90)),
                ],
            )
            .expect("vehicles row");
            vehicle_id += 1;
        }
        for _ in 0..num_casualties {
            db.insert_row(
                "casualties",
                vec![
                    Value::Int(casualty_id),
                    Value::Int(i as i64),
                    Value::from(CASUALTY_CLASSES[rng.gen_range(0..CASUALTY_CLASSES.len())]),
                    Value::Int(rng.gen_range(1..95)),
                    Value::Int(rng.gen_range(1..4)),
                ],
            )
            .expect("casualties row");
            casualty_id += 1;
        }
    }

    Dataset {
        name: "TFACC".to_string(),
        db,
        constraints: vec![
            ConstraintSpec::new(
                "roads",
                &["road_id"],
                &["road_class", "speed_limit", "region"],
            ),
            ConstraintSpec::new(
                "vehicles",
                &["accident_id"],
                &["vehicle_type", "driver_age"],
            ),
            ConstraintSpec::new(
                "casualties",
                &["accident_id"],
                &["casualty_class", "age", "severity"],
            ),
            ConstraintSpec::new(
                "accidents",
                &["road_id"],
                &["accident_id", "year", "severity", "num_casualties"],
            ),
            ConstraintSpec::new(
                "accidents",
                &["year", "weather"],
                &[
                    "accident_id",
                    "road_id",
                    "severity",
                    "num_vehicles",
                    "num_casualties",
                ],
            ),
        ],
        join_edges: vec![
            JoinEdge::new("accidents", "road_id", "roads", "road_id"),
            JoinEdge::new("vehicles", "accident_id", "accidents", "accident_id"),
            JoinEdge::new("casualties", "accident_id", "accidents", "accident_id"),
        ],
        qcs: vec![
            (
                "accidents".to_string(),
                vec!["year".to_string(), "weather".to_string()],
            ),
            ("vehicles".to_string(), vec!["vehicle_type".to_string()]),
            ("casualties".to_string(), vec!["casualty_class".to_string()]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_tables_are_consistent_with_accident_counters() {
        let d = tfacc_lite(1, 4);
        let accidents = d.db.relation("accidents").unwrap();
        let total_vehicles: i64 = accidents.rows().map(|r| r[5].as_i64().unwrap()).sum();
        let total_casualties: i64 = accidents.rows().map(|r| r[6].as_i64().unwrap()).sum();
        assert_eq!(
            d.db.relation("vehicles").unwrap().len() as i64,
            total_vehicles
        );
        assert_eq!(
            d.db.relation("casualties").unwrap().len() as i64,
            total_casualties
        );
    }

    #[test]
    fn accident_road_references_exist() {
        let d = tfacc_lite(2, 6);
        let n_roads = d.db.relation("roads").unwrap().len() as i64;
        for row in d.db.relation("accidents").unwrap().rows() {
            let rid = row[1].as_i64().unwrap();
            assert!(rid >= 0 && rid < n_roads);
        }
    }

    #[test]
    fn accidents_are_skewed_across_roads() {
        let d = tfacc_lite(3, 8);
        let n_roads = d.db.relation("roads").unwrap().len();
        let mut per_road = vec![0usize; n_roads];
        for row in d.db.relation("accidents").unwrap().rows() {
            per_road[row[1].as_i64().unwrap() as usize] += 1;
        }
        let max = *per_road.iter().max().unwrap();
        let avg = d.db.relation("accidents").unwrap().len() / n_roads;
        assert!(max > 2 * avg.max(1));
    }

    #[test]
    fn metadata_is_consistent_with_schema() {
        let d = tfacc_lite(1, 1);
        for c in &d.constraints {
            let rel = d.db.schema.relation(&c.relation).unwrap();
            for a in c.x.iter().chain(c.y.iter()) {
                rel.attr_index(a).unwrap();
            }
        }
        for e in &d.join_edges {
            d.db.schema
                .relation(&e.left_rel)
                .unwrap()
                .attr_index(&e.left_attr)
                .unwrap();
            d.db.schema
                .relation(&e.right_rel)
                .unwrap()
                .attr_index(&e.right_attr)
                .unwrap();
        }
    }

    #[test]
    fn scale_increases_accident_volume() {
        let d1 = tfacc_lite(1, 2);
        let d2 = tfacc_lite(2, 2);
        assert_eq!(d1.db.relation("accidents").unwrap().len(), 400);
        assert_eq!(d2.db.relation("accidents").unwrap().len(), 800);
    }
}
