//! # beas-workloads — synthetic datasets and query workloads for the BEAS evaluation
//!
//! The paper evaluates BEAS on two real-life datasets (AIRCA: US flight
//! on-time performance + carrier statistics; TFACC: UK road accidents +
//! public-transport access nodes) and on TPC-H data. Those datasets are not
//! redistributable here, so this crate provides *synthetic* generators with
//! the same relational shape, skew and key/foreign-key structure (see
//! DESIGN.md §4 for the substitution argument):
//!
//! * [`tpch::tpch_lite`] — a scaled-down TPC-H-like star/snowflake schema;
//! * [`airca::airca_lite`] — flights, carriers, airports, carrier statistics;
//! * [`tfacc::tfacc_lite`] — accidents, vehicles, casualties, roads.
//!
//! Each generator returns a [`Dataset`]: the database plus the access
//! constraints (from which BEAS derives its access schema), the join edges
//! used by the random [`querygen`] workload generator, and the query column
//! sets handed to the BlinkDB-style baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airca;
pub mod querygen;
pub mod tfacc;
pub mod tpch;

use beas_core::ConstraintSpec;
use beas_relal::Database;

/// A foreign-key style join edge between two relations, used by the query
/// generator to build meaningful multi-relation queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Left relation name.
    pub left_rel: String,
    /// Left join attribute.
    pub left_attr: String,
    /// Right relation name.
    pub right_rel: String,
    /// Right join attribute.
    pub right_attr: String,
}

impl JoinEdge {
    /// Creates a join edge `left_rel.left_attr = right_rel.right_attr`.
    pub fn new(left_rel: &str, left_attr: &str, right_rel: &str, right_attr: &str) -> Self {
        JoinEdge {
            left_rel: left_rel.to_string(),
            left_attr: left_attr.to_string(),
            right_rel: right_rel.to_string(),
            right_attr: right_attr.to_string(),
        }
    }

    /// Returns the other endpoint if this edge touches `(rel)`, if any.
    pub fn other_end(&self, rel: &str) -> Option<(&str, &str, &str)> {
        if self.left_rel == rel {
            Some((&self.right_rel, &self.right_attr, &self.left_attr))
        } else if self.right_rel == rel {
            Some((&self.left_rel, &self.left_attr, &self.right_attr))
        } else {
            None
        }
    }
}

/// A generated dataset together with the metadata the evaluation needs.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (`"TPCH"`, `"AIRCA"`, `"TFACC"`).
    pub name: String,
    /// The database instance.
    pub db: Database,
    /// Access constraints to register with BEAS (extended templates are
    /// derived automatically by the engine).
    pub constraints: Vec<ConstraintSpec>,
    /// Foreign-key join edges for the query generator.
    pub join_edges: Vec<JoinEdge>,
    /// Query column sets per relation for the BlinkDB-style baseline:
    /// `(relation, stratification columns)`.
    pub qcs: Vec<(String, Vec<String>)>,
}

impl Dataset {
    /// Total number of tuples (`|D|`).
    pub fn size(&self) -> usize {
        self.db.total_tuples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_edge_other_end_resolves_both_directions() {
        let e = JoinEdge::new("orders", "o_custkey", "customer", "c_custkey");
        assert_eq!(
            e.other_end("orders"),
            Some(("customer", "c_custkey", "o_custkey"))
        );
        assert_eq!(
            e.other_end("customer"),
            Some(("orders", "o_custkey", "c_custkey"))
        );
        assert_eq!(e.other_end("lineitem"), None);
    }

    #[test]
    fn datasets_report_their_size() {
        let d = tpch::tpch_lite(1, 42);
        assert_eq!(d.size(), d.db.total_tuples());
        assert!(d.size() > 0);
    }
}
