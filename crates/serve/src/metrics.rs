//! Per-tenant serving metrics: request counters, tuple accounting and a
//! fixed-bucket latency histogram cheap enough to bump on every request
//! (atomics only, no locks on the hot path).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::Json;

/// Number of logarithmic latency buckets: bucket `i` covers latencies below
/// `2^i` microseconds, the last bucket is a catch-all.
const BUCKETS: usize = 28;

/// A lock-free latency histogram over power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observed latency.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.total_us.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// An upper bound on the `q`-quantile latency in microseconds: the upper
    /// edge of the bucket containing the quantile observation (0 when
    /// empty). Resolution is a factor of two — plenty for spotting a tenant
    /// pushed from microseconds to milliseconds.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Counters for one tenant.
#[derive(Debug, Default)]
pub struct TenantMetrics {
    /// Requests admitted (including ones that later failed in the engine).
    pub admitted: AtomicU64,
    /// Requests rejected over budget (token bucket).
    pub rejected_budget: AtomicU64,
    /// Requests rejected because the in-flight cap / queue was full.
    pub rejected_busy: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests that failed in the engine (HTTP 4xx/5xx after admission).
    pub failed: AtomicU64,
    /// Budget tuples charged against the token bucket.
    pub tuples_charged: AtomicU64,
    /// Tuples actually accessed by completed queries.
    pub tuples_accessed: AtomicU64,
    /// End-to-end handler latency of admitted requests.
    pub latency: LatencyHistogram,
}

impl TenantMetrics {
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records an admitted request's charge.
    pub fn record_admitted(&self, charged: f64) {
        Self::add(&self.admitted, 1);
        Self::add(&self.tuples_charged, charged.max(0.0) as u64);
    }

    /// Records a completed request.
    pub fn record_completed(&self, accessed: usize, latency: Duration) {
        Self::add(&self.completed, 1);
        Self::add(&self.tuples_accessed, accessed as u64);
        self.latency.record(latency);
    }

    /// Records a post-admission failure.
    pub fn record_failed(&self, latency: Duration) {
        Self::add(&self.failed, 1);
        self.latency.record(latency);
    }

    /// Renders the tenant's counters as a JSON object.
    pub fn to_json(&self) -> Json {
        let get = |c: &AtomicU64| Json::Int(c.load(Ordering::Relaxed) as i64);
        Json::obj(vec![
            ("admitted", get(&self.admitted)),
            ("rejected_budget", get(&self.rejected_budget)),
            ("rejected_busy", get(&self.rejected_busy)),
            ("completed", get(&self.completed)),
            ("failed", get(&self.failed)),
            ("tuples_charged", get(&self.tuples_charged)),
            ("tuples_accessed", get(&self.tuples_accessed)),
            ("latency_count", Json::Int(self.latency.count() as i64)),
            ("latency_mean_us", Json::Num(self.latency.mean_us())),
            (
                "latency_p50_us",
                Json::Int(self.latency.quantile_us(0.50) as i64),
            ),
            (
                "latency_p99_us",
                Json::Int(self.latency.quantile_us(0.99) as i64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        // p50 of mostly ~tens of µs sits in a small bucket …
        assert!(h.quantile_us(0.5) <= 128, "p50 = {}", h.quantile_us(0.5));
        // … while p99 must see the 10 ms outlier
        assert!(h.quantile_us(0.99) >= 10_000);
        assert!(h.mean_us() > 0.0);
        // quantiles are upper bounds
        assert!(h.quantile_us(1.0) >= 10_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn tenant_metrics_render_to_json() {
        let m = TenantMetrics::default();
        m.record_admitted(150.0);
        m.record_completed(120, Duration::from_micros(500));
        m.record_failed(Duration::from_micros(100));
        let json = m.to_json();
        assert_eq!(json.get("admitted").and_then(Json::as_i64), Some(1));
        assert_eq!(json.get("completed").and_then(Json::as_i64), Some(1));
        assert_eq!(json.get("failed").and_then(Json::as_i64), Some(1));
        assert_eq!(json.get("tuples_charged").and_then(Json::as_i64), Some(150));
        assert_eq!(
            json.get("tuples_accessed").and_then(Json::as_i64),
            Some(120)
        );
        assert_eq!(json.get("latency_count").and_then(Json::as_i64), Some(2));
    }
}
