//! # beas-serve — a multi-tenant serving front-end with budget-aware admission control
//!
//! The paper answers queries under an explicit resource bound; this crate
//! enforces the same discipline *at the door* of a network server. It exposes
//! the `Send + Sync` BEAS engine over a small JSON wire protocol (HTTP/1.1,
//! `TcpListener` + worker pool, std-only — no external dependencies), and
//! admits requests through per-tenant token buckets denominated in *budget
//! tuples per second*: the cost of a query is the tuple budget its
//! [`ResourceSpec`](beas_access::ResourceSpec) resolves to — exactly the
//! number the planner bounds execution by — so a tenant that saturates its
//! allowance gets `429 Too Many Requests` (with `Retry-After`) instead of
//! degrading every other tenant's latency.
//!
//! ```no_run
//! use std::sync::Arc;
//! use beas_core::{Beas, ConstraintSpec, ServeHandle};
//! use beas_relal::{Attribute, Database, DatabaseSchema, RelationSchema};
//! use beas_serve::{serve, ServeConfig, TenantPolicy};
//!
//! let schema = DatabaseSchema::new(vec![RelationSchema::new(
//!     "poi",
//!     vec![Attribute::categorical("type"), Attribute::double("price")],
//! )]);
//! let engine = Arc::new(
//!     Beas::builder(Database::new(schema))
//!         .constraint(ConstraintSpec::new("poi", &["type"], &["price"]))
//!         .build()
//!         .unwrap(),
//! );
//! let server = serve(
//!     ServeHandle::new(engine),
//!     ServeConfig::default()
//!         .bind("127.0.0.1:0")
//!         .tenant("gold", TenantPolicy::with_rate(1_000_000.0, 2_000_000.0))
//!         .tenant("free", TenantPolicy::with_rate(10_000.0, 20_000.0))
//!         .default_tenant("free"),
//! )
//! .unwrap();
//! println!("serving on http://{}", server.addr());
//! # server.shutdown();
//! ```
//!
//! See the module docs for the pieces: [`server`] (routes and worker pool),
//! [`admission`] (token buckets, in-flight caps, bounded queues),
//! [`wire`] (the JSON query/answer format), [`metrics`] (per-tenant
//! counters + latency histograms), [`json`] (the std-only JSON value) and
//! [`client`] (a minimal blocking client for tests and load generation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod wire;

pub use admission::{Rejection, Tenant, TenantPolicy, TenantRegistry};
pub use client::{Client, Response};
pub use json::{parse as parse_json, Json};
pub use metrics::{LatencyHistogram, TenantMetrics};
pub use server::{query_body, serve, target_body, update_body, RunningServer, ServeConfig};
pub use wire::{
    answer_to_json, query_from_json, query_to_json, relation_from_json, relation_to_json,
    schedule_from_json, step_to_json, update_from_json, value_from_json, value_to_json, WireError,
};
