//! The serving front-end: a `TcpListener` worker pool speaking the JSON wire
//! protocol over HTTP/1.1 keep-alive connections, with per-tenant
//! budget-aware admission control in front of the engine.
//!
//! # Endpoints
//!
//! | Route                        | Effect                                              |
//! |------------------------------|-----------------------------------------------------|
//! | `POST /query`                | plan + execute one query under a spec or accuracy target |
//! | `POST /query/stream`         | anytime answers: one chunked frame per refinement step |
//! | `POST /prepare`              | register a prepared query, returns `{"id": n}`      |
//! | `POST /prepared/{id}/answer` | answer through the shared plan cache                |
//! | `POST /update`               | apply a batched update (component C2)               |
//! | `GET /metrics`               | per-tenant admission metrics + engine stats         |
//! | `GET /healthz`               | liveness                                            |
//! | `GET /schema`                | the database schema (relations, attributes, types)  |
//!
//! Every `POST` names a tenant (body field `"tenant"`, falling back to the
//! configured default); the tenant's token bucket is charged the *resolved
//! tuple budget* of the request — the same number the planner enforces — and
//! over-budget tenants get `429` with a `Retry-After` instead of queueing
//! unboundedly in front of the engine. A request whose cost exceeds the
//! tenant's burst capacity outright can never be admitted and gets a
//! non-retryable `400` instead.
//!
//! `POST /query/stream` answers through a [progressive refinement
//! session](beas_core::AnswerSession): the response is
//! `Transfer-Encoding: chunked`, one newline-terminated JSON frame per step
//! of the schedule (each carrying η, the cumulative budget spent and the
//! step's answer digest), and the *final* frame is bit-for-bit the answer a
//! one-shot `POST /query` at the same spec returns. Admission charges the
//! schedule's **total** budget up front; if the client disconnects before
//! the schedule finishes, the unconsumed steps are refunded to the tenant's
//! bucket. Its non-streamed twin is bounded the other way: a `/query` (or
//! `/prepared/{id}/answer`) response larger than
//! [`ServeConfig::max_response_bytes`] gets `413` with a hint to use the
//! stream.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use beas_access::ResourceSpec;
use beas_core::{PreparedQuery, ServeHandle, UpdateBatch};
use beas_relal::ValueType;

use crate::admission::{Rejection, Tenant, TenantPolicy, TenantRegistry};
use crate::http::{
    finish_chunked, read_request, write_chunk, write_chunked_head, write_response, HttpError,
    Request,
};
use crate::json::{parse, Json};
use crate::metrics::TenantMetrics;
use crate::wire;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is on
    /// [`RunningServer::addr`]).
    pub addr: String,
    /// Worker threads; each worker serves one connection at a time, so this
    /// is also the concurrent-connection cap.
    pub workers: usize,
    /// Hard cap on request bodies (bytes); larger declarations get `413`.
    pub max_body_bytes: usize,
    /// The response twin of `max_body_bytes`: a non-streamed query response
    /// (`/query`, `/prepared/{id}/answer`) whose JSON body exceeds this many
    /// bytes gets `413` with a hint to use `POST /query/stream` (chunked
    /// delivery) or a smaller spec instead of materializing the whole body
    /// at once.
    pub max_response_bytes: usize,
    /// Per-connection read timeout (an idle keep-alive connection is closed
    /// after this long).
    pub read_timeout: Duration,
    /// Registered tenants.
    pub tenants: Vec<(String, TenantPolicy)>,
    /// Tenant for requests that name none; `None` makes the tenant field
    /// mandatory (unknown/missing tenants get `403`).
    pub default_tenant: Option<String>,
    /// Cap on concurrently registered prepared queries.
    pub max_prepared: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            max_body_bytes: 1 << 20,
            max_response_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
            tenants: Vec::new(),
            default_tenant: None,
            max_prepared: 1024,
        }
    }
}

impl ServeConfig {
    /// Registers a tenant.
    pub fn tenant(mut self, name: impl Into<String>, policy: TenantPolicy) -> Self {
        self.tenants.push((name.into(), policy));
        self
    }

    /// Routes requests without a tenant field to `name`.
    pub fn default_tenant(mut self, name: impl Into<String>) -> Self {
        self.default_tenant = Some(name.into());
        self
    }

    /// Sets the bind address.
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-thread count (min 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the request-body cap.
    pub fn max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Sets the non-streamed response-body cap (see
    /// [`ServeConfig::max_response_bytes`]).
    pub fn max_response_bytes(mut self, bytes: usize) -> Self {
        self.max_response_bytes = bytes;
        self
    }
}

/// Shared state of one running server.
struct ServerState {
    engine: ServeHandle,
    config: ServeConfig,
    tenants: TenantRegistry,
    metrics: HashMap<String, TenantMetrics>,
    /// id → (owner tenant, handle); the owner partitions eviction quotas.
    prepared: RwLock<HashMap<u64, (String, Arc<PreparedQuery<'static>>)>>,
    next_prepared: AtomicU64,
    started: Instant,
}

/// A running server: its bound address plus shutdown control. Dropping the
/// handle shuts the server down.
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RunningServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the workers and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake every worker blocked in accept()
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Starts a server over `engine` and returns once the listener is bound.
pub fn serve(engine: ServeHandle, config: ServeConfig) -> std::io::Result<RunningServer> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;

    let mut tenants = TenantRegistry::new();
    let mut metrics = HashMap::new();
    for (name, policy) in &config.tenants {
        tenants.register(name.clone(), *policy);
        metrics.insert(name.clone(), TenantMetrics::default());
    }
    if let Some(default) = &config.default_tenant {
        if tenants.resolve(Some(default)).is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("default tenant `{default}` is not registered"),
            ));
        }
        tenants.set_default(default.clone());
    }

    let state = Arc::new(ServerState {
        engine,
        tenants,
        metrics,
        prepared: RwLock::new(HashMap::new()),
        next_prepared: AtomicU64::new(1),
        started: Instant::now(),
        config: config.clone(),
    });
    let stop = Arc::new(AtomicBool::new(false));

    // clone all listener handles *before* spawning anything: a partial
    // failure must not leave orphan worker threads behind an Err return
    let listeners = (0..config.workers.max(1))
        .map(|_| listener.try_clone())
        .collect::<std::io::Result<Vec<_>>>()?;
    let workers = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("beas-serve-{i}"))
                .spawn(move || worker_loop(listener, state, stop))
                .expect("spawn worker")
        })
        .collect::<Vec<_>>();

    Ok(RunningServer {
        addr,
        stop,
        workers,
    })
}

/// One worker: accept → serve the connection's keep-alive request sequence →
/// accept again, until shutdown.
fn worker_loop(listener: TcpListener, state: Arc<ServerState>, stop: Arc<AtomicBool>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            // a persistent accept error (e.g. fd exhaustion) must not
            // busy-spin the worker pool; back off briefly so in-flight
            // handlers can release descriptors
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = serve_connection(stream, &state, &stop);
    }
}

/// Serves one connection until close, idle timeout, error or shutdown.
fn serve_connection(
    stream: TcpStream,
    state: &ServerState,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    use std::io::BufRead;
    stream.set_write_timeout(Some(state.config.read_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    // while idle between requests, poll in short slices so shutdown is
    // prompt even with live keep-alive connections
    let poll = Duration::from_millis(200).min(state.config.read_timeout);
    loop {
        stream.set_read_timeout(Some(poll))?;
        let idle_since = Instant::now();
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            if idle_since.elapsed() > state.config.read_timeout {
                return Ok(()); // idle keep-alive expired
            }
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // client closed
                Ok(_) => break,          // a request is arriving
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
        // the request head/body reads use the full timeout
        stream.set_read_timeout(Some(state.config.read_timeout))?;
        let request = match read_request(&mut reader, state.config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::Closed) => return Ok(()),
            Err(HttpError::Io(e)) => return Err(e),
            Err(HttpError::Bad(msg)) => {
                // the request head is unreliable: respond and close
                let body = error_body(&msg);
                return write_response(&mut stream, 400, &body, false, &[]);
            }
            Err(HttpError::TooLarge { declared, limit }) => {
                let body = error_body(&format!(
                    "request body of {declared} bytes exceeds the {limit}-byte limit"
                ));
                return write_response(&mut stream, 413, &body, false, &[]);
            }
        };
        let keep_alive = request.keep_alive;
        let path = request.path.split('?').next().unwrap_or("");
        if request.method == "POST" && path == "/query/stream" {
            // the streamed route writes its chunked frames directly; a write
            // failure below means the client disconnected mid-session (the
            // handler has already refunded the unconsumed steps)
            stream_query(state, &request, &mut stream)?;
            if !keep_alive {
                return Ok(());
            }
            continue;
        }
        let reply = cap_response(state, path, handle(state, &request));
        write_response(
            &mut stream,
            reply.status,
            &reply.body,
            keep_alive,
            &reply.headers,
        )?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// The response twin of the request-body cap: a successful non-streamed
/// query response larger than [`ServeConfig::max_response_bytes`] becomes
/// `413` with a hint to use the streamed route (which chunks frames instead
/// of materializing one giant body).
fn cap_response(state: &ServerState, path: &str, reply: Reply) -> Reply {
    let is_query_route =
        path == "/query" || (path.starts_with("/prepared/") && path.ends_with("/answer"));
    if reply.status == 200 && is_query_route && reply.body.len() > state.config.max_response_bytes {
        return Reply::error(
            413,
            &format!(
                "response of {} bytes exceeds the {}-byte response limit; \
                 use POST /query/stream for chunked delivery or lower the spec",
                reply.body.len(),
                state.config.max_response_bytes
            ),
        );
    }
    reply
}

/// A handler's reply.
struct Reply {
    status: u16,
    body: String,
    headers: Vec<(&'static str, String)>,
}

impl Reply {
    fn ok(json: Json) -> Reply {
        Reply {
            status: 200,
            body: json.to_string(),
            headers: Vec::new(),
        }
    }

    fn error(status: u16, message: &str) -> Reply {
        Reply {
            status,
            body: error_body(message),
            headers: Vec::new(),
        }
    }
}

fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::Str(message.to_string()))]).to_string()
}

/// Routes one request.
fn handle(state: &ServerState, request: &Request) -> Reply {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Reply::ok(Json::obj(vec![
            ("status", Json::Str("ok".into())),
            ("uptime_s", Json::Num(state.started.elapsed().as_secs_f64())),
        ])),
        ("GET", "/metrics") => Reply::ok(metrics_json(state)),
        ("GET", "/schema") => Reply::ok(schema_json(state)),
        ("POST", "/query") => with_body(request, |body| query_handler(state, body)),
        ("POST", "/prepare") => with_body(request, |body| prepare_handler(state, body)),
        ("POST", "/update") => with_body(request, |body| update_handler(state, body)),
        ("POST", _) if path.starts_with("/prepared/") => {
            let rest = &path["/prepared/".len()..];
            let Some((id, "answer")) = rest.split_once('/') else {
                return Reply::error(404, &format!("unknown route `{path}`"));
            };
            let Ok(id) = id.parse::<u64>() else {
                return Reply::error(400, &format!("bad prepared-query id `{id}`"));
            };
            with_body(request, |body| prepared_answer_handler(state, id, body))
        }
        ("GET" | "POST", _) => Reply::error(404, &format!("unknown route `{path}`")),
        (method, _) => Reply::error(405, &format!("method `{method}` not allowed")),
    }
}

/// Parses the request body as a JSON object and runs the handler.
fn with_body(request: &Request, f: impl FnOnce(&Json) -> Reply) -> Reply {
    let text = match request.body_str() {
        Ok(text) => text,
        Err(_) => return Reply::error(400, "request body is not valid UTF-8"),
    };
    match parse(text) {
        Ok(body) => f(&body),
        Err(e) => Reply::error(400, &format!("malformed JSON body: {e}")),
    }
}

/// Admission bookkeeping shared by the budgeted handlers: resolves the
/// tenant, charges its bucket `cost` tuples, and runs `f` while holding the
/// in-flight slot. `f` receives the admitted [`Tenant`] (so handlers whose
/// charge was a *prediction* can [`Tenant::settle`] it against the actual
/// spend) and returns its reply plus the tuples actually accessed (for the
/// tenant's metrics).
fn admitted<F: FnOnce(&Tenant) -> (Reply, usize)>(
    state: &ServerState,
    body: &Json,
    cost: f64,
    f: F,
) -> Reply {
    let name = body.get("tenant").and_then(Json::as_str);
    let Some(tenant) = state.tenants.resolve(name) else {
        return match name {
            Some(n) => Reply::error(403, &format!("unknown tenant `{n}`")),
            None => Reply::error(403, "no tenant named and no default tenant configured"),
        };
    };
    let metrics = &state.metrics[&tenant.name];
    match tenant.admit(cost) {
        Err(rejection) => rejection_reply(&tenant.name, metrics, rejection, "request"),
        Ok(guard) => {
            metrics.record_admitted(cost);
            let start = Instant::now();
            let (reply, accessed) = f(tenant);
            drop(guard);
            if reply.status == 200 {
                metrics.record_completed(accessed, start.elapsed());
            } else {
                metrics.record_failed(start.elapsed());
            }
            reply
        }
    }
}

/// Maps an admission [`Rejection`] to its HTTP reply, bumping the tenant's
/// rejection counters — the one place the rejection→status/message/headers
/// mapping lives, shared by the one-shot handlers (`what` = "request") and
/// the streamed route (`what` = "schedule", whose cost is the schedule's
/// total budget).
fn rejection_reply(
    tenant_name: &str,
    metrics: &TenantMetrics,
    rejection: Rejection,
    what: &str,
) -> Reply {
    match rejection {
        Rejection::OverBudget { .. } | Rejection::TooExpensive { .. } => {
            metrics.rejected_budget.fetch_add(1, Ordering::Relaxed);
        }
        Rejection::Busy { .. } => {
            metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
        }
    }
    match rejection {
        // waiting cannot help: the cost exceeds the tenant's burst capacity
        // outright, so no Retry-After is advertised
        Rejection::TooExpensive { cost, burst } => Reply::error(
            400,
            &format!(
                "{what} cost of {cost:.0} budget tuples exceeds tenant                  `{tenant_name}`'s burst capacity of {burst:.0}; lower the                  {what}'s budget or raise the tenant's burst",
            ),
        ),
        Rejection::OverBudget { .. } | Rejection::Busy { .. } => {
            let message = match rejection {
                Rejection::OverBudget { .. } => format!(
                    "tenant `{tenant_name}` is over its tuple budget ({what}                      cost not covered); retry after {}s",
                    rejection.retry_after_secs()
                ),
                _ => format!(
                    "tenant `{tenant_name}` has too many requests in flight;                      retry after {}s",
                    rejection.retry_after_secs()
                ),
            };
            Reply {
                status: 429,
                body: error_body(&message),
                headers: vec![("retry-after", rejection.retry_after_secs().to_string())],
            }
        }
    }
}

/// `POST /query`: `{"tenant": …, "spec": "ratio:0.1", "query": {…}}` — or
/// `"target": "eta:0.95"` instead of `"spec"` for an accuracy-denominated
/// request (see [`targeted_query_handler`]). Exactly one of the two.
fn query_handler(state: &ServerState, body: &Json) -> Reply {
    match wire::target_from_json(body) {
        Ok(Some(target)) => {
            if body.get("spec").is_some() {
                return Reply::error(
                    400,
                    "request: `spec` and `target` are mutually exclusive — a request \
                     is either budget-denominated (`spec`) or accuracy-denominated \
                     (`target`)",
                );
            }
            return targeted_query_handler(state, body, target);
        }
        Ok(None) => {}
        Err(e) => return Reply::error(400, &e.to_string()),
    }
    let spec = match wire::spec_from_json(body) {
        Ok(spec) => spec,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    let Some(query_json) = body.get("query") else {
        return Reply::error(400, "request: missing field `query`");
    };
    let engine = state.engine.engine();
    let query = match wire::query_from_json(query_json, engine.schema()) {
        Ok(query) => query,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    let cost = match engine.catalog().budget(&spec) {
        Ok(budget) => budget,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    admitted(state, body, cost as f64, |_| {
        match engine.answer(&query, spec) {
            Ok(answer) => (Reply::ok(wire::answer_to_json(&answer)), answer.accessed),
            Err(e) => (Reply::error(400, &e.to_string()), 0),
        }
    })
}

/// The accuracy-denominated half of `POST /query`: admission charges the
/// engine's *predicted* cost of hitting the target (the learned η-vs-budget
/// curve's budget pick, or the cold-start full-budget prior), and after
/// execution the charge is [settled](Tenant::settle) against the tuples
/// actually spent — refunded when the curve over-predicted, surcharged
/// (possibly into debt) when escalation had to spend past the prediction.
fn targeted_query_handler(
    state: &ServerState,
    body: &Json,
    target: beas_core::AccuracyTarget,
) -> Reply {
    let Some(query_json) = body.get("query") else {
        return Reply::error(400, "request: missing field `query`");
    };
    let engine = state.engine.engine();
    let query = match wire::query_from_json(query_json, engine.schema()) {
        Ok(query) => query,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    let cost = match engine.predict_target_cost(&query, &target) {
        Ok(cost) => cost,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    admitted(state, body, cost as f64, |tenant| {
        match engine.answer_with_target(&query, &target) {
            Ok(targeted) => {
                tenant.settle(cost as f64, targeted.spent as f64);
                let spent = targeted.spent;
                (Reply::ok(wire::targeted_answer_to_json(&targeted)), spent)
            }
            Err(e) => (Reply::error(400, &e.to_string()), 0),
        }
    })
}

/// `POST /query/stream`: anytime answers over chunked transfer encoding.
///
/// Body: `{"tenant": …, "query": {…}, "schedule": ["ratio:0.01", …]}` — or
/// `"spec"` instead of `"schedule"` for the default ladder leading to that
/// spec, or neither for the full default ladder. The response streams one
/// newline-terminated JSON frame per refinement step (see
/// [`wire::step_to_json`]); the final frame is bit-for-bit the one-shot
/// `POST /query` answer at the schedule's last spec.
///
/// Admission charges the schedule's *total* resolved budget up front (a
/// refinement session bills every step's plan, even though reused fragments
/// are fetched only once). If the client disconnects before the schedule
/// finishes, the budgets of the steps that never executed are refunded to
/// the tenant's bucket.
fn stream_query(
    state: &ServerState,
    request: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let keep_alive = request.keep_alive;
    // early failures answer as a plain (non-chunked) JSON error
    let fail = |stream: &mut TcpStream,
                status: u16,
                message: &str,
                headers: &[(&str, String)]|
     -> std::io::Result<()> {
        write_response(stream, status, &error_body(message), keep_alive, headers)
    };

    // chunked transfer encoding does not exist in HTTP/1.0 — a 1.0 client
    // would read the chunk-size lines as body bytes (RFC 9112 §7.1.1)
    if request.http1_0 {
        return fail(
            stream,
            400,
            "streamed responses require HTTP/1.1 (chunked transfer encoding); \
             use POST /query for a single-body answer",
            &[],
        );
    }
    let body = match request.body_str() {
        Ok(text) => match parse(text) {
            Ok(body) => body,
            Err(e) => return fail(stream, 400, &format!("malformed JSON body: {e}"), &[]),
        },
        Err(_) => return fail(stream, 400, "request body is not valid UTF-8", &[]),
    };
    let schedule = match wire::schedule_from_json(&body) {
        Ok(schedule) => schedule,
        Err(e) => return fail(stream, 400, &e.to_string(), &[]),
    };
    let Some(query_json) = body.get("query") else {
        return fail(stream, 400, "request: missing field `query`", &[]);
    };
    let engine = state.engine.engine();
    let query = match wire::query_from_json(query_json, engine.schema()) {
        Ok(query) => query,
        Err(e) => return fail(stream, 400, &e.to_string(), &[]),
    };
    // prepare + open the session before admission, so the charge is the
    // session's actual resolved total (equal-budget steps deduplicated)
    let prepared = match engine.prepare(&query) {
        Ok(prepared) => prepared,
        Err(e) => return fail(stream, 400, &e.to_string(), &[]),
    };
    let mut session = match prepared.session(schedule) {
        Ok(session) => session,
        Err(e) => return fail(stream, 400, &e.to_string(), &[]),
    };
    let total = session.total_budget();

    // ---- admission: the schedule's total budget, charged up front
    let name = body.get("tenant").and_then(Json::as_str);
    let Some(tenant) = state.tenants.resolve(name) else {
        return match name {
            Some(n) => fail(stream, 403, &format!("unknown tenant `{n}`"), &[]),
            None => fail(
                stream,
                403,
                "no tenant named and no default tenant configured",
                &[],
            ),
        };
    };
    let metrics = &state.metrics[&tenant.name];
    let guard = match tenant.admit(total as f64) {
        Err(rejection) => {
            let reply = rejection_reply(&tenant.name, metrics, rejection, "schedule");
            return write_response(
                stream,
                reply.status,
                &reply.body,
                keep_alive,
                &reply.headers,
            );
        }
        Ok(guard) => guard,
    };
    metrics.record_admitted(total as f64);
    let start = Instant::now();

    // ---- the frames; every write failure from here on means the client
    // disconnected mid-session, so the unconsumed steps are refunded
    let mut consumed = 0usize; // budgets of the steps that actually executed
    let mut fetched = 0usize; // cumulative tuples the session really fetched
    if let Err(e) = write_chunked_head(stream, 200, keep_alive, &[]) {
        tenant.refund(total.saturating_sub(consumed) as f64);
        metrics.record_failed(start.elapsed());
        drop(guard);
        return Err(e);
    }
    while let Some(result) = session.next_step() {
        match result {
            Ok(step) => {
                consumed += step.budget;
                fetched = step.budget_spent;
                let frame = format!("{}\n", wire::step_to_json(&step));
                if let Err(e) = write_chunk(stream, &frame) {
                    tenant.refund(total.saturating_sub(consumed) as f64);
                    metrics.record_failed(start.elapsed());
                    drop(guard);
                    return Err(e);
                }
            }
            Err(e) => {
                // an engine-side failure mid-stream: emit a terminal error
                // frame (the status line already went out) and stop
                let frame = format!("{}\n", error_body(&e.to_string()));
                let write = write_chunk(stream, &frame).and_then(|()| finish_chunked(stream));
                tenant.refund(total.saturating_sub(consumed) as f64);
                metrics.record_failed(start.elapsed());
                drop(guard);
                return write;
            }
        }
    }
    let finish = finish_chunked(stream);
    metrics.record_completed(fetched, start.elapsed());
    drop(guard);
    finish
}

/// `POST /prepare`: `{"tenant": …, "query": {…}}` → `{"id": n}`.
///
/// Subject to the same tenant resolution and in-flight caps as every other
/// `POST` (zero tuple cost — preparing only validates, it accesses nothing).
/// Registry slots are partitioned **per tenant**: each tenant may hold at
/// most `max_prepared / #tenants` handles, and exceeding the quota evicts
/// that tenant's *own* oldest handle (ids are monotonic) — one tenant can
/// never flush another tenant's prepared queries. Clients of an evicted id
/// get `404` and simply re-prepare, exactly like a plan-cache eviction
/// re-plans.
fn prepare_handler(state: &ServerState, body: &Json) -> Reply {
    // canonical owner name for the quota accounting (admission re-resolves
    // and rejects unknown tenants before the closure runs)
    let owner = state
        .tenants
        .resolve(body.get("tenant").and_then(Json::as_str))
        .map(|t| t.name.clone());
    admitted(state, body, 0.0, |_| {
        let owner = owner.clone().expect("admitted implies a resolved tenant");
        let Some(query_json) = body.get("query") else {
            return (Reply::error(400, "request: missing field `query`"), 0);
        };
        let query = match wire::query_from_json(query_json, state.engine.engine().schema()) {
            Ok(query) => query,
            Err(e) => return (Reply::error(400, &e.to_string()), 0),
        };
        let prepared = match state.engine.prepare(&query) {
            Ok(prepared) => Arc::new(prepared),
            Err(e) => return (Reply::error(400, &e.to_string()), 0),
        };
        let quota = state
            .config
            .max_prepared
            .max(1)
            .div_ceil(state.tenants.len().max(1));
        let mut registry = state.prepared.write().expect("prepared registry poisoned");
        while registry.values().filter(|(t, _)| *t == owner).count() >= quota {
            let Some(oldest) = registry
                .iter()
                .filter(|(_, (t, _))| *t == owner)
                .map(|(&id, _)| id)
                .min()
            else {
                break;
            };
            registry.remove(&oldest);
        }
        let id = state.next_prepared.fetch_add(1, Ordering::Relaxed);
        registry.insert(id, (owner, prepared));
        (Reply::ok(Json::obj(vec![("id", Json::Int(id as i64))])), 0)
    })
}

/// `POST /prepared/{id}/answer`: `{"tenant": …, "spec": "…"}`.
///
/// Prepared handles are tenant-scoped: only the owner that registered the
/// id may answer through it. Other tenants get the same `404` as a
/// non-existent id, so ids (which are sequential) leak nothing about what
/// other tenants have prepared.
fn prepared_answer_handler(state: &ServerState, id: u64, body: &Json) -> Reply {
    if body.get("target").is_some() {
        return Reply::error(
            400,
            "accuracy targets (`target`) are not supported on \
             /prepared/{id}/answer; use POST /query with a `target`, or a \
             budget `spec` here",
        );
    }
    let spec = match wire::spec_from_json(body) {
        Ok(spec) => spec,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    let name = body.get("tenant").and_then(Json::as_str);
    let Some(caller) = state.tenants.resolve(name).map(|t| t.name.clone()) else {
        return match name {
            Some(n) => Reply::error(403, &format!("unknown tenant `{n}`")),
            None => Reply::error(403, "no tenant named and no default tenant configured"),
        };
    };
    let prepared = {
        let registry = state.prepared.read().expect("prepared registry poisoned");
        registry
            .get(&id)
            .filter(|(owner, _)| *owner == caller)
            .map(|(_, p)| Arc::clone(p))
    };
    let Some(prepared) = prepared else {
        return Reply::error(404, &format!("unknown prepared-query id {id}"));
    };
    let cost = match state.engine.engine().catalog().budget(&spec) {
        Ok(budget) => budget,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    admitted(state, body, cost as f64, |_| match prepared.answer(spec) {
        Ok(answer) => (Reply::ok(wire::answer_to_json(&answer)), answer.accessed),
        Err(e) => (Reply::error(400, &e.to_string()), 0),
    })
}

/// `POST /update`: `{"tenant": …, "inserts": [{"relation": …, "row": […]}]}`.
fn update_handler(state: &ServerState, body: &Json) -> Reply {
    let batch = match wire::update_from_json(body) {
        Ok(batch) => batch,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    let cost = batch.len() as f64;
    admitted(state, body, cost, |_| {
        match state.engine.engine().apply_update(&batch) {
            Ok(applied) => (
                Reply::ok(Json::obj(vec![
                    ("applied", Json::Int(applied as i64)),
                    (
                        "db_size",
                        Json::Int(state.engine.engine().database().total_tuples() as i64),
                    ),
                ])),
                applied,
            ),
            Err(e) => (Reply::error(400, &e.to_string()), 0),
        }
    })
}

/// `GET /metrics`: per-tenant admission metrics plus the engine's request
/// stats.
fn metrics_json(state: &ServerState) -> Json {
    let stats = state.engine.stats();
    let mut tenants = Vec::new();
    for tenant in state.tenants.tenants() {
        let mut fields = match state.metrics[&tenant.name].to_json() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!(),
        };
        fields.push(("tokens".to_string(), Json::Num(tenant.tokens())));
        fields.push(("inflight".to_string(), Json::Int(tenant.inflight() as i64)));
        tenants.push((tenant.name.clone(), Json::Obj(fields)));
    }
    Json::obj(vec![
        ("uptime_s", Json::Num(state.started.elapsed().as_secs_f64())),
        ("tenants", Json::Obj(tenants)),
        (
            "engine",
            Json::obj(vec![
                ("queries", Json::Int(stats.queries as i64)),
                ("tuples_accessed", Json::Int(stats.tuples_accessed as i64)),
                ("updates", Json::Int(stats.updates as i64)),
                ("rows_inserted", Json::Int(stats.rows_inserted as i64)),
                ("plan_cache_hits", Json::Int(stats.plan_cache_hits as i64)),
                (
                    "plan_cache_misses",
                    Json::Int(stats.plan_cache_misses as i64),
                ),
                (
                    "plan_cache_capacity",
                    Json::Int(state.engine.engine().plan_cache_capacity() as i64),
                ),
                (
                    "plan_cache_size",
                    Json::Int(state.engine.engine().plan_cache_len() as i64),
                ),
            ]),
        ),
        (
            "storage",
            Json::obj(vec![
                ("segments_written", Json::Int(stats.segments_written as i64)),
                ("segments_loaded", Json::Int(stats.segments_loaded as i64)),
                ("wal_bytes", Json::Int(stats.wal_bytes as i64)),
                ("replayed_batches", Json::Int(stats.replayed_batches as i64)),
                ("page_ins", Json::Int(stats.page_ins as i64)),
            ]),
        ),
        (
            "slo",
            Json::obj(vec![
                ("fingerprints", Json::Int(stats.slo_fingerprints as i64)),
                ("observations", Json::Int(stats.slo_observations as i64)),
                (
                    "prediction_hits",
                    Json::Int(stats.slo_prediction_hits as i64),
                ),
                (
                    "prediction_misses",
                    Json::Int(stats.slo_prediction_misses as i64),
                ),
                ("settlements", Json::Int(stats.slo_settlements as i64)),
                (
                    "mean_abs_spend_error",
                    Json::Num(if stats.slo_settlements > 0 {
                        stats.slo_spend_error_sum as f64 / stats.slo_settlements as f64
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
        (
            "prepared_queries",
            Json::Int(
                state
                    .prepared
                    .read()
                    .expect("prepared registry poisoned")
                    .len() as i64,
            ),
        ),
        (
            "db_size",
            Json::Int(state.engine.engine().database().total_tuples() as i64),
        ),
    ])
}

/// `GET /schema`.
fn schema_json(state: &ServerState) -> Json {
    let schema = state.engine.engine().schema();
    let relations: Vec<Json> = schema
        .relations
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::Str(r.name.clone())),
                (
                    "attributes",
                    Json::Arr(
                        r.attributes
                            .iter()
                            .map(|a| {
                                Json::obj(vec![
                                    ("name", Json::Str(a.name.clone())),
                                    (
                                        "type",
                                        Json::Str(
                                            match a.ty {
                                                ValueType::Int => "int",
                                                ValueType::Double => "double",
                                                ValueType::Str => "str",
                                                ValueType::Bool => "bool",
                                            }
                                            .to_string(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::obj(vec![("relations", Json::Arr(relations))])
}

/// Convenience: builds the canonical `POST /query` body.
pub fn query_body(tenant: Option<&str>, spec: ResourceSpec, query: &Json) -> String {
    let mut pairs = Vec::new();
    if let Some(tenant) = tenant {
        pairs.push(("tenant", Json::Str(tenant.to_string())));
    }
    pairs.push(("spec", Json::Str(spec.to_string())));
    pairs.push(("query", query.clone()));
    Json::obj(pairs).to_string()
}

/// Convenience: builds the canonical accuracy-targeted `POST /query` body
/// (`target` instead of `spec`).
pub fn target_body(
    tenant: Option<&str>,
    target: &beas_core::AccuracyTarget,
    query: &Json,
) -> String {
    let mut pairs = Vec::new();
    if let Some(tenant) = tenant {
        pairs.push(("tenant", Json::Str(tenant.to_string())));
    }
    pairs.push(("target", Json::Str(target.to_string())));
    pairs.push(("query", query.clone()));
    Json::obj(pairs).to_string()
}

/// Convenience: builds the canonical `POST /update` body.
pub fn update_body(tenant: Option<&str>, batch: &UpdateBatch) -> String {
    let inserts: Vec<Json> = batch
        .inserts()
        .iter()
        .map(|(relation, row)| {
            Json::obj(vec![
                ("relation", Json::Str(relation.clone())),
                (
                    "row",
                    Json::Arr(row.iter().map(wire::value_to_json).collect()),
                ),
            ])
        })
        .collect();
    let mut pairs = Vec::new();
    if let Some(tenant) = tenant {
        pairs.push(("tenant", Json::Str(tenant.to_string())));
    }
    pairs.push(("inserts", Json::Arr(inserts)));
    Json::obj(pairs).to_string()
}
