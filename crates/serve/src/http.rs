//! A deliberately small HTTP/1.1 layer over `std::net::TcpStream`: request
//! parsing with a hard body cap, `Expect: 100-continue` handling, keep-alive,
//! and response writing. Just enough protocol for the JSON wire — TLS, HTTP/2
//! and gRPC are ROADMAP follow-ups.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted size of the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target (path only; any query string is kept verbatim).
    pub path: String,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after responding.
    pub keep_alive: bool,
    /// Whether the request was HTTP/1.0 (which must not receive chunked
    /// transfer encoding — RFC 9112 §7.1.1).
    pub http1_0: bool,
}

impl Request {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Bad("request body is not valid UTF-8".into()))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The client closed the connection (normal end of keep-alive).
    Closed,
    /// An I/O error (timeout, reset).
    Io(std::io::Error),
    /// A malformed request head or body (HTTP 400).
    Bad(String),
    /// The declared body exceeds the configured cap (HTTP 413).
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
}

/// Reads one request from the connection. `max_body` caps the accepted
/// `Content-Length`; an oversized declaration is reported *before* reading
/// the body so the server can reject without buffering it.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, HttpError> {
    // ---- request line
    let line = read_line(reader)?;
    if line.is_empty() {
        return Err(HttpError::Closed);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Bad(format!("malformed request line `{line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version `{version}`")));
    }
    let http_10 = version == "HTTP/1.0";

    // ---- headers
    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let line = read_line(reader)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::Bad("request head too large".into()));
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };

    let connection = header("connection").unwrap_or("").to_ascii_lowercase();
    let keep_alive = if http_10 {
        connection.contains("keep-alive")
    } else {
        !connection.contains("close")
    };

    // ---- body
    if header("transfer-encoding").is_some() {
        return Err(HttpError::Bad(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let content_length: usize = match header("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Bad(format!("bad content-length `{v}`")))?,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    // curl sends `Expect: 100-continue` for non-trivial bodies and waits for
    // the interim response before transmitting them
    if header("expect")
        .map(|v| v.eq_ignore_ascii_case("100-continue"))
        .unwrap_or(false)
    {
        reader
            .get_mut()
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(HttpError::Io)?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;

    Ok(Request {
        method: method.to_string(),
        path: target.to_string(),
        headers,
        body,
        keep_alive,
        http1_0: http_10,
    })
}

/// Reads one CRLF-terminated line (without the terminator).
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, HttpError> {
    let mut line = Vec::new();
    // cap pathological lines at the head limit
    let mut limited = reader.by_ref().take(MAX_HEAD_BYTES as u64 + 2);
    let n = limited
        .read_until(b'\n', &mut line)
        .map_err(HttpError::Io)?;
    if n == 0 {
        return Ok(String::new()); // EOF
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Bad("non-UTF-8 request head".into()))
}

/// The reason phrase for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes the head of a `Transfer-Encoding: chunked` response (for the
/// streamed refinement frames of `POST /query/stream`). Frames follow via
/// [`write_chunk`]; the body ends with [`finish_chunked`].
pub fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ntransfer-encoding: chunked\r\n",
        reason(status),
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one chunk of a chunked response and flushes it, so the client sees
/// the frame as soon as it is produced (anytime answers must not sit in a
/// buffer until the final step).
pub fn write_chunk(stream: &mut TcpStream, data: &str) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(()); // an empty chunk would terminate the body
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data.as_bytes())?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response (the zero-size chunk).
pub fn finish_chunked(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Writes one JSON response. `extra_headers` lets handlers attach e.g.
/// `Retry-After`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
