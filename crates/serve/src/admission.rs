//! Budget-aware admission control: the paper's resource bounds enforced at
//! the door, per tenant, before a request ever reaches the engine.
//!
//! Inside the engine a [`ResourceSpec`](beas_access::ResourceSpec) caps how
//! many tuples *one* query may
//! access. A multi-tenant front-end needs the same discipline across
//! requests: a tenant hammering the server with maximal-budget queries must
//! run out of *its own* allowance instead of degrading everyone else's
//! latency. Each [`Tenant`] therefore owns:
//!
//! * a **token bucket** denominated in *budget tuples per second* — the cost
//!   of a query is the tuple budget its spec resolves to (the same number
//!   the planner enforces), the cost of an update is its row count. An
//!   empty bucket means `429 Too Many Requests` with a `Retry-After` telling
//!   the client when the bucket will cover the request;
//! * a **max in-flight** cap with a **bounded wait queue**: when every
//!   admitted slot is busy, up to `max_queue` requests wait at most
//!   `max_queue_wait` for a slot, and everything beyond that is rejected
//!   immediately — bounded queues instead of collapse under overload.
//!
//! Admission is decided entirely in the front-end; the engine below stays a
//! pure bounded-evaluation core.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-tenant admission policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Sustained allowance, in budget tuples per second (token-bucket refill
    /// rate).
    pub tuples_per_sec: f64,
    /// Bucket capacity: the largest burst of budget tuples the tenant may
    /// spend at once. Also the hard cap on a single request's cost.
    pub burst_tuples: f64,
    /// Maximum concurrently admitted requests.
    pub max_inflight: usize,
    /// Maximum requests allowed to wait for an in-flight slot; beyond this
    /// the request is rejected immediately.
    pub max_queue: usize,
    /// Longest a queued request waits for a slot before it is rejected.
    pub max_queue_wait: Duration,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            tuples_per_sec: 100_000.0,
            burst_tuples: 200_000.0,
            max_inflight: 64,
            max_queue: 256,
            max_queue_wait: Duration::from_millis(500),
        }
    }
}

impl TenantPolicy {
    /// A policy with the given sustained rate and burst, keeping the default
    /// concurrency caps.
    pub fn with_rate(tuples_per_sec: f64, burst_tuples: f64) -> Self {
        TenantPolicy {
            tuples_per_sec,
            burst_tuples,
            ..TenantPolicy::default()
        }
    }

    /// Sets the in-flight / queue concurrency caps.
    pub fn with_concurrency(mut self, max_inflight: usize, max_queue: usize) -> Self {
        self.max_inflight = max_inflight.max(1);
        self.max_queue = max_queue;
        self
    }

    /// Sets the bounded queue wait.
    pub fn with_queue_wait(mut self, wait: Duration) -> Self {
        self.max_queue_wait = wait;
        self
    }
}

/// Why a request was turned away. The server answers `429` + `Retry-After`
/// for the retryable variants ([`Rejection::OverBudget`],
/// [`Rejection::Busy`]) and a non-retryable `400` for
/// [`Rejection::TooExpensive`] — waiting can never admit a request whose
/// cost exceeds the tenant's burst capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rejection {
    /// The token bucket cannot cover the request's cost yet; retry once it
    /// has refilled.
    OverBudget {
        /// Suggested client back-off.
        retry_after: Duration,
    },
    /// The request's cost exceeds the tenant's burst capacity — no amount of
    /// waiting makes it admissible.
    TooExpensive {
        /// The request's cost in budget tuples.
        cost: f64,
        /// The tenant's burst capacity.
        burst: f64,
    },
    /// The in-flight cap and the bounded wait queue are both full (or the
    /// queue wait timed out).
    Busy {
        /// Suggested client back-off.
        retry_after: Duration,
    },
}

impl Rejection {
    /// The `Retry-After` value to advertise, in seconds (ceiling, min 1).
    pub fn retry_after_secs(&self) -> u64 {
        match self {
            Rejection::OverBudget { retry_after } | Rejection::Busy { retry_after } => {
                (retry_after.as_secs_f64().ceil() as u64).max(1)
            }
            Rejection::TooExpensive { .. } => 1,
        }
    }
}

/// Token-bucket state (behind the tenant's mutex).
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// In-flight / queue accounting (behind the tenant's mutex + condvar).
#[derive(Debug, Default)]
struct Slots {
    active: usize,
    queued: usize,
}

/// One tenant: its policy plus the live admission state.
#[derive(Debug)]
pub struct Tenant {
    /// Tenant name (the wire `tenant` field).
    pub name: String,
    /// The admission policy.
    pub policy: TenantPolicy,
    bucket: Mutex<Bucket>,
    slots: Mutex<Slots>,
    slot_freed: Condvar,
}

impl Tenant {
    fn new(name: String, policy: TenantPolicy) -> Self {
        Tenant {
            name,
            policy,
            bucket: Mutex::new(Bucket {
                tokens: policy.burst_tuples,
                last_refill: Instant::now(),
            }),
            slots: Mutex::new(Slots::default()),
            slot_freed: Condvar::new(),
        }
    }

    /// Tries to admit a request of `cost` budget tuples: charges the token
    /// bucket, then acquires an in-flight slot (waiting boundedly). On
    /// success the returned guard holds the slot until dropped.
    pub fn admit(&self, cost: f64) -> Result<InflightGuard<'_>, Rejection> {
        let cost = cost.max(0.0);
        if cost > self.policy.burst_tuples {
            return Err(Rejection::TooExpensive {
                cost,
                burst: self.policy.burst_tuples,
            });
        }

        // --- token bucket: budget enforcement at the door
        {
            let mut bucket = self.bucket.lock().expect("bucket poisoned");
            let now = Instant::now();
            let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * self.policy.tuples_per_sec)
                .min(self.policy.burst_tuples);
            bucket.last_refill = now;
            if bucket.tokens < cost {
                let missing = cost - bucket.tokens;
                let rate = self.policy.tuples_per_sec.max(f64::MIN_POSITIVE);
                return Err(Rejection::OverBudget {
                    retry_after: Duration::from_secs_f64((missing / rate).min(3600.0)),
                });
            }
            bucket.tokens -= cost;
        }

        // --- in-flight slot with a bounded wait queue
        let mut slots = self.slots.lock().expect("slots poisoned");
        if slots.active < self.policy.max_inflight {
            slots.active += 1;
            return Ok(InflightGuard { tenant: self });
        }
        if slots.queued >= self.policy.max_queue {
            drop(slots);
            self.refund(cost);
            return Err(Rejection::Busy {
                retry_after: self.policy.max_queue_wait,
            });
        }
        slots.queued += 1;
        let deadline = Instant::now() + self.policy.max_queue_wait;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                slots.queued -= 1;
                drop(slots);
                self.refund(cost);
                return Err(Rejection::Busy {
                    retry_after: self.policy.max_queue_wait,
                });
            }
            let (guard, timeout) = self
                .slot_freed
                .wait_timeout(slots, remaining)
                .expect("slots poisoned");
            slots = guard;
            if slots.active < self.policy.max_inflight {
                slots.queued -= 1;
                slots.active += 1;
                return Ok(InflightGuard { tenant: self });
            }
            if timeout.timed_out() {
                slots.queued -= 1;
                drop(slots);
                self.refund(cost);
                return Err(Rejection::Busy {
                    retry_after: self.policy.max_queue_wait,
                });
            }
        }
    }

    /// Returns tokens to the bucket: work that was charged but never
    /// performed. Used internally when a queued request times out, and by
    /// the streaming endpoint to refund the unconsumed steps of a refinement
    /// schedule whose client disconnected early.
    pub fn refund(&self, cost: f64) {
        let mut bucket = self.bucket.lock().expect("bucket poisoned");
        bucket.tokens = (bucket.tokens + cost.max(0.0)).min(self.policy.burst_tuples);
    }

    /// Reconciles a *predicted* charge against the actual spend once the
    /// work has run: the difference is refunded (actual below the charge) or
    /// surcharged (actual above it). Unlike [`Tenant::refund`], a surcharge
    /// may drive the bucket **negative** — the tenant ran up real debt that
    /// the refill has to pay down before anything else is admitted — which
    /// is what keeps a systematically under-predicted accuracy-target
    /// workload from outrunning its allowance.
    pub fn settle(&self, charged: f64, actual: f64) {
        let delta = charged.max(0.0) - actual.max(0.0);
        let mut bucket = self.bucket.lock().expect("bucket poisoned");
        bucket.tokens = (bucket.tokens + delta).min(self.policy.burst_tuples);
    }

    /// The current token balance (refilled to now); for tests and metrics.
    pub fn tokens(&self) -> f64 {
        let mut bucket = self.bucket.lock().expect("bucket poisoned");
        let now = Instant::now();
        let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * self.policy.tuples_per_sec).min(self.policy.burst_tuples);
        bucket.last_refill = now;
        bucket.tokens
    }

    /// Currently admitted (in-flight) requests.
    pub fn inflight(&self) -> usize {
        self.slots.lock().expect("slots poisoned").active
    }
}

/// An admitted request's slot; dropping it frees the slot and wakes one
/// queued waiter.
#[derive(Debug)]
pub struct InflightGuard<'t> {
    tenant: &'t Tenant,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut slots = self.tenant.slots.lock().expect("slots poisoned");
        slots.active = slots.active.saturating_sub(1);
        drop(slots);
        self.tenant.slot_freed.notify_one();
    }
}

/// The tenant registry the server routes admission through.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: HashMap<String, Tenant>,
    /// Tenant used for requests that name no tenant, when configured.
    default_tenant: Option<String>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TenantRegistry::default()
    }

    /// Registers a tenant (replacing any previous policy under the name).
    pub fn register(&mut self, name: impl Into<String>, policy: TenantPolicy) {
        let name = name.into();
        self.tenants.insert(name.clone(), Tenant::new(name, policy));
    }

    /// Routes requests that name no tenant to `name` (which must be
    /// registered).
    pub fn set_default(&mut self, name: impl Into<String>) {
        self.default_tenant = Some(name.into());
    }

    /// Resolves a request's tenant: the named one, or the default.
    pub fn resolve(&self, name: Option<&str>) -> Option<&Tenant> {
        match name {
            Some(n) => self.tenants.get(n),
            None => self
                .default_tenant
                .as_deref()
                .and_then(|n| self.tenants.get(n)),
        }
    }

    /// Iterates the registered tenants (sorted by name, for stable output).
    pub fn tenants(&self) -> Vec<&Tenant> {
        let mut all: Vec<&Tenant> = self.tenants.values().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_admits_until_empty_then_rejects_with_retry_after() {
        let tenant = Tenant::new(
            "t".into(),
            TenantPolicy::with_rate(100.0, 250.0), // 100 tuples/s, burst 250
        );
        // burst covers two 100-tuple requests plus one 50
        for _ in 0..2 {
            drop(tenant.admit(100.0).expect("within burst"));
        }
        drop(tenant.admit(50.0).expect("exact remainder"));
        let rejected = tenant.admit(100.0).expect_err("bucket must be empty");
        match rejected {
            Rejection::OverBudget { retry_after } => {
                // 100 missing tokens at 100/s ≈ 1s
                assert!(retry_after.as_secs_f64() <= 1.1);
                assert!(rejected.retry_after_secs() >= 1);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
    }

    #[test]
    fn bucket_refills_over_time() {
        let tenant = Tenant::new("t".into(), TenantPolicy::with_rate(100_000.0, 1000.0));
        drop(tenant.admit(1000.0).expect("burst"));
        assert!(matches!(
            tenant.admit(1000.0),
            Err(Rejection::OverBudget { .. })
        ));
        std::thread::sleep(Duration::from_millis(20));
        // ~2000 tokens refilled, capped at burst
        drop(tenant.admit(1000.0).expect("refilled"));
        assert!(tenant.tokens() < 1000.0);
    }

    #[test]
    fn oversized_requests_are_rejected_outright() {
        let tenant = Tenant::new("t".into(), TenantPolicy::with_rate(1e6, 100.0));
        match tenant.admit(101.0) {
            Err(Rejection::TooExpensive { cost, burst }) => {
                assert_eq!(cost, 101.0);
                assert_eq!(burst, 100.0);
            }
            other => panic!("expected TooExpensive, got {other:?}"),
        };
    }

    #[test]
    fn inflight_cap_queues_boundedly_and_frees_on_drop() {
        let policy = TenantPolicy::with_rate(1e9, 1e9)
            .with_concurrency(1, 0)
            .with_queue_wait(Duration::from_millis(50));
        let tenant = Tenant::new("t".into(), policy);
        let guard = tenant.admit(1.0).expect("first slot");
        assert_eq!(tenant.inflight(), 1);
        // queue depth 0: immediate Busy
        assert!(matches!(tenant.admit(1.0), Err(Rejection::Busy { .. })));
        drop(guard);
        assert_eq!(tenant.inflight(), 0);
        drop(tenant.admit(1.0).expect("slot freed"));
    }

    #[test]
    fn queued_request_wakes_when_a_slot_frees() {
        let policy = TenantPolicy::with_rate(1e9, 1e9)
            .with_concurrency(1, 4)
            .with_queue_wait(Duration::from_secs(5));
        let tenant = Tenant::new("t".into(), policy);
        let guard = tenant.admit(1.0).expect("first slot");
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| tenant.admit(1.0).map(drop));
            std::thread::sleep(Duration::from_millis(30));
            drop(guard);
            waiter.join().unwrap().expect("queued request admitted");
        });
    }

    #[test]
    fn queue_timeout_refunds_the_charge() {
        let policy = TenantPolicy::with_rate(0.001, 100.0)
            .with_concurrency(1, 4)
            .with_queue_wait(Duration::from_millis(30));
        let tenant = Tenant::new("t".into(), policy);
        let _guard = tenant.admit(10.0).expect("slot");
        let before = tenant.tokens();
        assert!(matches!(tenant.admit(50.0), Err(Rejection::Busy { .. })));
        // the 50 tokens charged for the timed-out request came back
        assert!(tenant.tokens() >= before - 1.0, "charge must be refunded");
    }

    #[test]
    fn settle_refunds_overcharges_and_surcharges_into_debt() {
        let tenant = Tenant::new("t".into(), TenantPolicy::with_rate(0.001, 1000.0));
        // over-prediction: charged 400, spent 100 → 300 comes back
        drop(tenant.admit(400.0).expect("burst"));
        tenant.settle(400.0, 100.0);
        assert!(tenant.tokens() >= 899.0, "refund must land");
        // under-prediction: charged 100, spent 1500 → the bucket goes into
        // debt and further requests are rejected until the refill pays it off
        drop(tenant.admit(100.0).expect("covered"));
        tenant.settle(100.0, 1500.0);
        assert!(tenant.tokens() < 0.0, "surcharge must create debt");
        assert!(matches!(
            tenant.admit(1.0),
            Err(Rejection::OverBudget { .. })
        ));
    }

    #[test]
    fn registry_resolves_named_and_default_tenants() {
        let mut reg = TenantRegistry::new();
        reg.register("gold", TenantPolicy::default());
        reg.register("free", TenantPolicy::with_rate(100.0, 100.0));
        reg.set_default("free");
        assert_eq!(reg.resolve(Some("gold")).unwrap().name, "gold");
        assert_eq!(reg.resolve(None).unwrap().name, "free");
        assert!(reg.resolve(Some("nobody")).is_none());
        assert_eq!(reg.len(), 2);
        let names: Vec<&str> = reg.tenants().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["free", "gold"]);
    }
}
