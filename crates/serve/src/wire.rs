//! The JSON wire protocol: queries, resource specs, update batches and
//! answers as JSON values.
//!
//! A wire query mirrors the tableau form the planner works on — SPC blocks
//! (`atoms` / `binds` / `joins` / `filters` / `outputs`) composed with
//! `union` / `difference` and optionally wrapped in an `aggregate`:
//!
//! ```json
//! {"type": "spc",
//!  "atoms":   [{"relation": "poi", "alias": "h"}],
//!  "binds":   [{"atom": "h", "attr": "type", "value": "hotel"}],
//!  "filters": [{"atom": "h", "attr": "price", "op": "<=", "value": 95}],
//!  "outputs": [{"atom": "h", "attr": "price", "name": "price"}]}
//! ```
//!
//! Resource specs travel in the canonical [`ResourceSpec`] string form
//! (`"ratio:0.1"`, `"tuples:500"`), so the server, the bench CLIs and the
//! docs all share one vocabulary. Answers carry the relation (columns +
//! rows), the accuracy bound η, the access accounting and an
//! order-independent [`Relation::digest`] so clients can verify — and the
//! bench harness does verify — that the served answers are bit-for-bit the
//! relations `PreparedQuery::answer` produces in process.

use std::fmt;

use beas_access::ResourceSpec;
use beas_core::{
    AccuracyTarget, AggQuery, BeasAnswer, BeasQuery, RaQuery, RefinementSchedule, RefinementStep,
    TargetedAnswer, UpdateBatch,
};
use beas_relal::{
    AggFunc, CompareOp, DatabaseSchema, Relation, Row, SelCond, SpcQuery, SpcQueryBuilder, Term,
    Value,
};

use crate::json::Json;

/// A wire-protocol decoding error (maps to HTTP 400).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    fn new(msg: impl Into<String>) -> Self {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

type Result<T> = std::result::Result<T, WireError>;

fn field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json> {
    obj.get(key)
        .ok_or_else(|| WireError::new(format!("{ctx}: missing field `{key}`")))
}

fn str_field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str> {
    field(obj, key, ctx)?
        .as_str()
        .ok_or_else(|| WireError::new(format!("{ctx}: field `{key}` must be a string")))
}

// ---------------------------------------------------------------- values

/// Decodes one JSON value into a database [`Value`]. Tagged objects carry
/// the non-finite floats JSON cannot represent.
pub fn value_from_json(v: &Json) -> Result<Value> {
    match v {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Num(f) => Ok(Value::Double(*f)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::Obj(_) => match v.get("$f").and_then(Json::as_str) {
            Some("nan") => Ok(Value::Double(f64::NAN)),
            Some("inf") => Ok(Value::Double(f64::INFINITY)),
            Some("-inf") => Ok(Value::Double(f64::NEG_INFINITY)),
            _ => Err(WireError::new("objects are not valid cell values")),
        },
        Json::Arr(_) => Err(WireError::new("arrays are not valid cell values")),
    }
}

/// Encodes a database [`Value`] as JSON (see [`value_from_json`]).
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Double(d) => Json::Num(*d),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

// ---------------------------------------------------------------- queries

fn compare_op(s: &str) -> Result<CompareOp> {
    Ok(match s {
        "=" | "==" => CompareOp::Eq,
        "!=" | "<>" => CompareOp::Ne,
        "<" => CompareOp::Lt,
        "<=" => CompareOp::Le,
        ">" => CompareOp::Gt,
        ">=" => CompareOp::Ge,
        other => return Err(WireError::new(format!("unknown comparison op `{other}`"))),
    })
}

fn agg_func(s: &str) -> Result<AggFunc> {
    Ok(match s {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        other => return Err(WireError::new(format!("unknown aggregate `{other}`"))),
    })
}

/// Decodes a wire query against `schema` into a validated [`BeasQuery`].
pub fn query_from_json(v: &Json, schema: &DatabaseSchema) -> Result<BeasQuery> {
    Ok(match ra_or_agg(v, schema, 0)? {
        Decoded::Ra(q) => BeasQuery::Ra(q),
        Decoded::Agg(q) => BeasQuery::Aggregate(q),
    })
}

enum Decoded {
    Ra(RaQuery),
    Agg(AggQuery),
}

const MAX_QUERY_DEPTH: usize = 16;

fn ra_or_agg(v: &Json, schema: &DatabaseSchema, depth: usize) -> Result<Decoded> {
    if depth > MAX_QUERY_DEPTH {
        return Err(WireError::new("query nesting too deep"));
    }
    let ty = str_field(v, "type", "query")?;
    match ty {
        "spc" => Ok(Decoded::Ra(RaQuery::Spc(spc_from_json(v, schema)?))),
        "union" | "difference" => {
            let left = match ra_or_agg(field(v, "left", ty)?, schema, depth + 1)? {
                Decoded::Ra(q) => q,
                Decoded::Agg(_) => {
                    return Err(WireError::new(format!(
                        "`{ty}` branches must not aggregate"
                    )))
                }
            };
            let right = match ra_or_agg(field(v, "right", ty)?, schema, depth + 1)? {
                Decoded::Ra(q) => q,
                Decoded::Agg(_) => {
                    return Err(WireError::new(format!(
                        "`{ty}` branches must not aggregate"
                    )))
                }
            };
            Ok(Decoded::Ra(if ty == "union" {
                left.union(right)
            } else {
                left.difference(right)
            }))
        }
        "aggregate" => {
            let input = match ra_or_agg(field(v, "input", "aggregate")?, schema, depth + 1)? {
                Decoded::Ra(q) => q,
                Decoded::Agg(_) => {
                    return Err(WireError::new("nested aggregates are not supported"))
                }
            };
            let group_by = match v.get("group_by") {
                None => Vec::new(),
                Some(g) => g
                    .as_arr()
                    .ok_or_else(|| WireError::new("aggregate: `group_by` must be an array"))?
                    .iter()
                    .map(|c| {
                        c.as_str().map(str::to_string).ok_or_else(|| {
                            WireError::new("aggregate: group-by columns must be strings")
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
            };
            let agg = agg_func(str_field(v, "agg", "aggregate")?)?;
            let col = str_field(v, "col", "aggregate")?;
            let name = str_field(v, "name", "aggregate")?;
            AggQuery::new(input, group_by, agg, col, name)
                .map(Decoded::Agg)
                .map_err(|e| WireError::new(e.to_string()))
        }
        other => Err(WireError::new(format!(
            "unknown query type `{other}` (expected spc/union/difference/aggregate)"
        ))),
    }
}

fn spc_from_json(v: &Json, schema: &DatabaseSchema) -> Result<beas_relal::SpcQuery> {
    let mut b = SpcQueryBuilder::new(schema);
    let atoms = field(v, "atoms", "spc")?
        .as_arr()
        .ok_or_else(|| WireError::new("spc: `atoms` must be an array"))?;
    if atoms.is_empty() {
        return Err(WireError::new("spc: at least one atom is required"));
    }
    // alias -> builder atom index
    let mut alias_of = Vec::new();
    for atom in atoms {
        let relation = str_field(atom, "relation", "atom")?;
        let alias = atom.get("alias").and_then(Json::as_str).unwrap_or(relation);
        if alias_of.iter().any(|(a, _)| a == alias) {
            return Err(WireError::new(format!(
                "spc: duplicate atom alias `{alias}`"
            )));
        }
        let idx = b
            .atom(relation, alias)
            .map_err(|e| WireError::new(e.to_string()))?;
        alias_of.push((alias.to_string(), idx));
    }
    let resolve = |alias: &str| -> Result<usize> {
        alias_of
            .iter()
            .find(|(a, _)| a == alias)
            .map(|&(_, i)| i)
            .ok_or_else(|| WireError::new(format!("spc: unknown atom alias `{alias}`")))
    };

    for bind in opt_array(v, "binds")? {
        let atom = resolve(str_field(bind, "atom", "bind")?)?;
        let attr = str_field(bind, "attr", "bind")?;
        let value = value_from_json(field(bind, "value", "bind")?)?;
        b.bind_const(atom, attr, value)
            .map_err(|e| WireError::new(e.to_string()))?;
    }
    for join in opt_array(v, "joins")? {
        let (la, lattr) = endpoint(field(join, "left", "join")?)?;
        let (ra, rattr) = endpoint(field(join, "right", "join")?)?;
        b.join((resolve(&la)?, &lattr), (resolve(&ra)?, &rattr))
            .map_err(|e| WireError::new(e.to_string()))?;
    }
    for filter in opt_array(v, "filters")? {
        let atom = resolve(str_field(filter, "atom", "filter")?)?;
        let attr = str_field(filter, "attr", "filter")?;
        let op = compare_op(str_field(filter, "op", "filter")?)?;
        let value = value_from_json(field(filter, "value", "filter")?)?;
        b.filter_const(atom, attr, op, value)
            .map_err(|e| WireError::new(e.to_string()))?;
    }
    for output in opt_array(v, "outputs")? {
        let atom = resolve(str_field(output, "atom", "output")?)?;
        let attr = str_field(output, "attr", "output")?;
        let name = output.get("name").and_then(Json::as_str).unwrap_or(attr);
        b.output(atom, attr, name)
            .map_err(|e| WireError::new(e.to_string()))?;
    }
    b.build().map_err(|e| WireError::new(e.to_string()))
}

/// Encodes a validated [`BeasQuery`] in the wire grammar [`query_from_json`]
/// decodes — the inter-node form a cluster coordinator ships to its shards.
///
/// The encoding is *canonical*: atoms in query order, constant binds in
/// tableau position order, one join per extra occurrence of a shared variable
/// (anchored at the variable's first position), then filters and outputs in
/// query order. For queries assembled through [`SpcQueryBuilder`] in that
/// same shape (joins anchored at the earlier position — the natural pattern),
/// decode ∘ encode is the identity on the query structure, so two nodes that
/// plan the decoded query derive bit-identical plans. Queries carrying
/// variable-to-variable selections ([`SelCond::VarVar`]) have no wire form
/// and are rejected.
pub fn query_to_json(query: &BeasQuery, schema: &DatabaseSchema) -> Result<Json> {
    match query {
        BeasQuery::Ra(q) => ra_to_json(q, schema),
        BeasQuery::Aggregate(a) => Ok(Json::obj(vec![
            ("type", Json::Str("aggregate".to_string())),
            ("input", ra_to_json(&a.input, schema)?),
            (
                "group_by",
                Json::Arr(a.group_by.iter().map(|g| Json::Str(g.clone())).collect()),
            ),
            ("agg", Json::Str(agg_func_name(a.agg).to_string())),
            ("col", Json::Str(a.agg_col.clone())),
            ("name", Json::Str(a.out_name.clone())),
        ])),
    }
}

fn agg_func_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    }
}

fn compare_op_name(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "=",
        CompareOp::Ne => "!=",
        CompareOp::Lt => "<",
        CompareOp::Le => "<=",
        CompareOp::Gt => ">",
        CompareOp::Ge => ">=",
    }
}

fn ra_to_json(q: &RaQuery, schema: &DatabaseSchema) -> Result<Json> {
    match q {
        RaQuery::Spc(s) => spc_to_json(s, schema),
        RaQuery::Union(l, r) => Ok(Json::obj(vec![
            ("type", Json::Str("union".to_string())),
            ("left", ra_to_json(l, schema)?),
            ("right", ra_to_json(r, schema)?),
        ])),
        RaQuery::Difference(l, r) => Ok(Json::obj(vec![
            ("type", Json::Str("difference".to_string())),
            ("left", ra_to_json(l, schema)?),
            ("right", ra_to_json(r, schema)?),
        ])),
    }
}

fn spc_to_json(q: &SpcQuery, schema: &DatabaseSchema) -> Result<Json> {
    // (alias, attribute name) of a tableau position
    let pos_ref = |pos: (usize, usize)| -> Result<(String, String)> {
        let atom = q
            .atoms
            .get(pos.0)
            .ok_or_else(|| WireError::new(format!("spc: no atom {}", pos.0)))?;
        let rel = schema
            .relation(&atom.relation)
            .map_err(|e| WireError::new(e.to_string()))?;
        let attr = rel.attributes.get(pos.1).ok_or_else(|| {
            WireError::new(format!("spc: {} has no attribute {}", atom.relation, pos.1))
        })?;
        Ok((atom.alias.clone(), attr.name.clone()))
    };

    let atoms: Vec<Json> = q
        .atoms
        .iter()
        .map(|a| {
            Json::obj(vec![
                ("relation", Json::Str(a.relation.clone())),
                ("alias", Json::Str(a.alias.clone())),
            ])
        })
        .collect();

    let mut binds = Vec::new();
    for (ai, terms) in q.terms.iter().enumerate() {
        for (pi, term) in terms.iter().enumerate() {
            if let Term::Const(v) = term {
                let (alias, attr) = pos_ref((ai, pi))?;
                binds.push(Json::obj(vec![
                    ("atom", Json::Str(alias)),
                    ("attr", Json::Str(attr)),
                    ("value", value_to_json(v)),
                ]));
            }
        }
    }

    let mut joins = Vec::new();
    for positions in q.var_positions().values() {
        if positions.len() > 1 {
            let (la, lattr) = pos_ref(positions[0])?;
            for &p in &positions[1..] {
                let (ra, rattr) = pos_ref(p)?;
                joins.push(Json::obj(vec![
                    (
                        "left",
                        Json::Arr(vec![Json::Str(la.clone()), Json::Str(lattr.clone())]),
                    ),
                    ("right", Json::Arr(vec![Json::Str(ra), Json::Str(rattr)])),
                ]));
            }
        }
    }

    let mut filters = Vec::new();
    for sel in &q.selections {
        match sel {
            SelCond::VarConst { var, op, value } => {
                let pos = q.var_first_position(*var).ok_or_else(|| {
                    WireError::new(format!("spc: unbound selection variable {var}"))
                })?;
                let (alias, attr) = pos_ref(pos)?;
                filters.push(Json::obj(vec![
                    ("atom", Json::Str(alias)),
                    ("attr", Json::Str(attr)),
                    ("op", Json::Str(compare_op_name(*op).to_string())),
                    ("value", value_to_json(value)),
                ]));
            }
            SelCond::VarVar { .. } => {
                return Err(WireError::new(
                    "spc: variable-to-variable selections have no wire form",
                ))
            }
        }
    }

    let mut outputs = Vec::new();
    for out in &q.output {
        let pos = q
            .var_first_position(out.var)
            .ok_or_else(|| WireError::new(format!("spc: unbound output variable {}", out.var)))?;
        let (alias, attr) = pos_ref(pos)?;
        outputs.push(Json::obj(vec![
            ("atom", Json::Str(alias)),
            ("attr", Json::Str(attr)),
            ("name", Json::Str(out.name.clone())),
        ]));
    }

    Ok(Json::obj(vec![
        ("type", Json::Str("spc".to_string())),
        ("atoms", Json::Arr(atoms)),
        ("binds", Json::Arr(binds)),
        ("joins", Json::Arr(joins)),
        ("filters", Json::Arr(filters)),
        ("outputs", Json::Arr(outputs)),
    ]))
}

/// A join endpoint: `["h", "city"]` or `{"atom": "h", "attr": "city"}`.
fn endpoint(v: &Json) -> Result<(String, String)> {
    if let Some(items) = v.as_arr() {
        if let [a, b] = items {
            if let (Some(a), Some(b)) = (a.as_str(), b.as_str()) {
                return Ok((a.to_string(), b.to_string()));
            }
        }
        return Err(WireError::new(
            "join endpoints must be [alias, attr] string pairs",
        ));
    }
    Ok((
        str_field(v, "atom", "join endpoint")?.to_string(),
        str_field(v, "attr", "join endpoint")?.to_string(),
    ))
}

fn opt_array<'a>(v: &'a Json, key: &str) -> Result<&'a [Json]> {
    match v.get(key) {
        None => Ok(&[]),
        Some(a) => a
            .as_arr()
            .ok_or_else(|| WireError::new(format!("spc: `{key}` must be an array"))),
    }
}

// ---------------------------------------------------------------- specs

/// Decodes a `"spec"` string field (canonical [`ResourceSpec`] form).
/// Accuracy targets (`eta:…`) are a different request denomination and get a
/// redirecting error instead of the generic parse failure.
pub fn spec_from_json(v: &Json) -> Result<ResourceSpec> {
    let text = str_field(v, "spec", "request")?;
    if is_eta_form(text) {
        return Err(WireError::new(format!(
            "`{}` is an accuracy target, not a resource spec; send it in the \
             `target` field instead (e.g. {{\"target\": \"{}\"}})",
            text.trim(),
            text.trim()
        )));
    }
    text.parse::<ResourceSpec>()
        .map_err(|e| WireError::new(e.to_string()))
}

fn is_eta_form(text: &str) -> bool {
    text.trim_start().starts_with("eta:")
}

/// Decodes the optional `"target"` string field — an accuracy target in the
/// `eta:<η>` / `eta:<η>@<spec>` grammar of [`AccuracyTarget`]. Returns
/// `Ok(None)` when the field is absent.
pub fn target_from_json(v: &Json) -> Result<Option<AccuracyTarget>> {
    let Some(t) = v.get("target") else {
        return Ok(None);
    };
    let text = t
        .as_str()
        .ok_or_else(|| WireError::new("request: `target` must be a string (e.g. \"eta:0.95\")"))?;
    text.parse::<AccuracyTarget>()
        .map(Some)
        .map_err(|e| WireError::new(e.to_string()))
}

/// Decodes the refinement schedule of a `POST /query/stream` request body:
///
/// * `"schedule": ["ratio:0.01", "ratio:0.1", "ratio:1"]` — explicit steps in
///   the canonical [`ResourceSpec`] grammar;
/// * only `"spec"` — the default ladder [leading to that
///   spec](RefinementSchedule::leading_to), so the final frame equals a
///   one-shot `POST /query` at the same spec;
/// * only `"target": "eta:0.95"` — an [accuracy-adaptive
///   schedule](RefinementSchedule::to_accuracy) whose rungs the engine
///   derives from its learned η-vs-budget curves;
/// * none of the three — the full
///   [default ladder](RefinementSchedule::default_ladder).
pub fn schedule_from_json(v: &Json) -> Result<RefinementSchedule> {
    if let Some(target) = target_from_json(v)? {
        if v.get("schedule").is_some() || v.get("spec").is_some() {
            return Err(WireError::new(
                "request: `target` cannot be combined with `spec` or `schedule`; \
                 an accuracy target derives its own refinement trajectory",
            ));
        }
        if target.max_budget != ResourceSpec::FULL {
            return Err(WireError::new(format!(
                "budget-capped accuracy targets (`{target}`) are not supported \
                 on the streamed route; use POST /query, or an uncapped \
                 `eta:{}` here",
                target.eta
            )));
        }
        return RefinementSchedule::to_accuracy(target.eta)
            .map_err(|e| WireError::new(e.to_string()));
    }
    match v.get("schedule") {
        Some(s) => {
            let steps = s
                .as_arr()
                .ok_or_else(|| WireError::new("request: `schedule` must be an array"))?;
            let specs: Vec<ResourceSpec> = steps
                .iter()
                .map(|step| {
                    let text = step.as_str().ok_or_else(|| {
                        WireError::new(
                            "request: schedule steps must be spec strings \
                             (e.g. \"ratio:0.1\")",
                        )
                    })?;
                    if is_eta_form(text) {
                        return Err(WireError::new(format!(
                            "`{}` is an accuracy target, not a resource spec; \
                             schedule steps are budgets — send the target in \
                             the `target` field instead",
                            text.trim()
                        )));
                    }
                    text.parse::<ResourceSpec>()
                        .map_err(|e| WireError::new(e.to_string()))
                })
                .collect::<Result<_>>()?;
            RefinementSchedule::from_specs(specs).map_err(|e| WireError::new(e.to_string()))
        }
        None => match v.get("spec") {
            Some(_) => RefinementSchedule::leading_to(spec_from_json(v)?)
                .map_err(|e| WireError::new(e.to_string())),
            None => Ok(RefinementSchedule::default_ladder()),
        },
    }
}

// ---------------------------------------------------------------- updates

/// Decodes an update request body into an [`UpdateBatch`]:
/// `{"inserts": [{"relation": "poi", "row": ["a", "hotel", "NYC", 95.0]}]}`.
pub fn update_from_json(v: &Json) -> Result<UpdateBatch> {
    let inserts = field(v, "inserts", "update")?
        .as_arr()
        .ok_or_else(|| WireError::new("update: `inserts` must be an array"))?;
    let mut batch = UpdateBatch::new();
    for insert in inserts {
        let relation = str_field(insert, "relation", "insert")?;
        let row: Row = field(insert, "row", "insert")?
            .as_arr()
            .ok_or_else(|| WireError::new("insert: `row` must be an array"))?
            .iter()
            .map(value_from_json)
            .collect::<Result<_>>()?;
        batch = batch.insert(relation, row);
    }
    Ok(batch)
}

// ---------------------------------------------------------------- answers

/// Encodes a relation as `{"columns": [...], "rows": [[...], ...]}` pairs
/// merged into the enclosing object.
fn relation_fields(rel: &Relation) -> Vec<(&'static str, Json)> {
    let rows: Vec<Json> = rel
        .rows()
        .map(|row| Json::Arr(row.iter().map(value_to_json).collect()))
        .collect();
    vec![
        (
            "columns",
            Json::Arr(rel.columns.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
        ("rows", Json::Arr(rows)),
    ]
}

/// Encodes a relation as a standalone `{"columns": [...], "rows": [[...]]}`
/// object — the payload form fragments and leaf results travel in between
/// cluster nodes. Bit-for-bit inverse of [`relation_from_json`].
pub fn relation_to_json(rel: &Relation) -> Json {
    Json::obj(relation_fields(rel))
}

/// Encodes a [`BeasAnswer`] for the wire, including the answer digest.
pub fn answer_to_json(answer: &BeasAnswer) -> Json {
    let mut pairs = relation_fields(&answer.answers);
    pairs.push(("eta", Json::Num(answer.eta)));
    pairs.push(("exact", Json::Bool(answer.exact)));
    pairs.push(("accessed", Json::Int(answer.accessed as i64)));
    pairs.push(("budget", Json::Int(answer.budget as i64)));
    pairs.push(("planned_tariff", Json::Int(answer.planned_tariff as i64)));
    pairs.push((
        "digest",
        Json::Str(format!("{:016x}", answer.answers.digest())),
    ));
    Json::obj(pairs)
}

/// Encodes a [`TargetedAnswer`] for the wire: the full answer encoding of
/// [`answer_to_json`] plus the SLO planner's accounting — the `target`, the
/// spec it resolved to, the `predicted_budget` admission charged, the tuples
/// actually `spent`, whether the target was `feasible` under its budget cap,
/// whether the prediction was `curve_backed` (learned curve vs cold-start
/// prior) and how many `escalations` the engine needed past the prediction.
pub fn targeted_answer_to_json(t: &TargetedAnswer) -> Json {
    let mut pairs = match answer_to_json(&t.answer) {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("answers encode as objects"),
    };
    pairs.push(("target".to_string(), Json::Str(t.target.to_string())));
    pairs.push(("target_eta".to_string(), Json::Num(t.target.eta)));
    pairs.push(("spec".to_string(), Json::Str(t.spec.to_string())));
    pairs.push((
        "predicted_budget".to_string(),
        Json::Int(t.predicted_budget as i64),
    ));
    pairs.push(("spent".to_string(), Json::Int(t.spent as i64)));
    pairs.push(("feasible".to_string(), Json::Bool(t.feasible)));
    pairs.push(("curve_backed".to_string(), Json::Bool(t.curve_backed)));
    pairs.push(("escalations".to_string(), Json::Int(t.escalations as i64)));
    Json::Obj(pairs)
}

/// Encodes one [`RefinementStep`] as a streamed frame: the full answer
/// encoding of [`answer_to_json`] (columns, rows, η, access accounting,
/// digest) plus the session accounting — `step`/`steps`, the step's `spec`,
/// the cumulative `budget_spent` and the tuples `reused` from earlier steps.
/// The final frame of a session carries exactly the digest a one-shot
/// `POST /query` at the same spec returns.
pub fn step_to_json(step: &RefinementStep) -> Json {
    let mut pairs = match answer_to_json(&step.answer) {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("answers encode as objects"),
    };
    pairs.push(("step".to_string(), Json::Int(step.step as i64)));
    pairs.push(("steps".to_string(), Json::Int(step.steps as i64)));
    pairs.push(("spec".to_string(), Json::Str(step.spec.to_string())));
    pairs.push((
        "budget_spent".to_string(),
        Json::Int(step.budget_spent as i64),
    ));
    pairs.push(("reused".to_string(), Json::Int(step.reused_tuples as i64)));
    Json::Obj(pairs)
}

/// Decodes the `columns` / `rows` fields of an answer back into a
/// [`Relation`] — the client half of the digest round-trip.
pub fn relation_from_json(v: &Json) -> Result<Relation> {
    let columns: Vec<String> = field(v, "columns", "answer")?
        .as_arr()
        .ok_or_else(|| WireError::new("answer: `columns` must be an array"))?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| WireError::new("answer: column names must be strings"))
        })
        .collect::<Result<_>>()?;
    let rows: Vec<Row> = field(v, "rows", "answer")?
        .as_arr()
        .ok_or_else(|| WireError::new("answer: `rows` must be an array"))?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| WireError::new("answer: each row must be an array"))?
                .iter()
                .map(value_from_json)
                .collect::<Result<Row>>()
        })
        .collect::<Result<_>>()?;
    Relation::new(columns, rows).map_err(|e| WireError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use beas_relal::{Attribute, Database, DatabaseSchema, RelationSchema};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![
            RelationSchema::new(
                "poi",
                vec![
                    Attribute::categorical("type"),
                    Attribute::text("city"),
                    Attribute::double("price"),
                ],
            ),
            RelationSchema::new("friend", vec![Attribute::id("pid"), Attribute::id("fid")]),
        ])
    }

    #[test]
    fn decodes_an_spc_query() {
        let q = parse(
            r#"{"type":"spc",
                "atoms":[{"relation":"poi","alias":"h"}],
                "binds":[{"atom":"h","attr":"type","value":"hotel"}],
                "filters":[{"atom":"h","attr":"price","op":"<=","value":95}],
                "outputs":[{"atom":"h","attr":"price","name":"price"}]}"#,
        )
        .unwrap();
        let query = query_from_json(&q, &schema()).unwrap();
        assert!(query.is_spc());
        assert_eq!(query.output_columns(), vec!["price"]);
    }

    #[test]
    fn decodes_joins_unions_and_aggregates() {
        let branch = r#"{"type":"spc",
            "atoms":[{"relation":"poi","alias":"h"},{"relation":"friend","alias":"f"}],
            "joins":[{"left":["h","price"],"right":["f","pid"]}],
            "outputs":[{"atom":"h","attr":"city"}]}"#;
        let q = parse(&format!(
            r#"{{"type":"aggregate",
                "input":{{"type":"union","left":{branch},"right":{branch}}},
                "group_by":["city"],"agg":"count","col":"city","name":"n"}}"#
        ))
        .unwrap();
        let query = query_from_json(&q, &schema()).unwrap();
        assert!(query.is_aggregate());
        assert_eq!(query.output_columns(), vec!["city", "n"]);
        assert_eq!(query.relation_count(), 4);
    }

    #[test]
    fn rejects_malformed_queries() {
        let s = schema();
        for bad in [
            r#"{"atoms":[]}"#,
            r#"{"type":"nope"}"#,
            r#"{"type":"spc","atoms":[]}"#,
            r#"{"type":"spc","atoms":[{"relation":"missing"}]}"#,
            r#"{"type":"spc","atoms":[{"relation":"poi"}],"outputs":[{"atom":"x","attr":"price"}]}"#,
            r#"{"type":"spc","atoms":[{"relation":"poi"}],"filters":[{"atom":"poi","attr":"price","op":"~","value":1}]}"#,
            r#"{"type":"spc","atoms":[{"relation":"poi"},{"relation":"poi"}]}"#,
        ] {
            let v = parse(bad).unwrap();
            assert!(query_from_json(&v, &s).is_err(), "`{bad}` accepted");
        }
    }

    #[test]
    fn eta_specs_are_redirected_to_the_target_field() {
        let v = parse(r#"{"spec":"eta:0.95"}"#).unwrap();
        let err = spec_from_json(&v).unwrap_err().to_string();
        assert!(err.contains("accuracy target"), "{err}");
        assert!(err.contains("`target` field"), "{err}");
        // and inside a schedule array
        let v = parse(r#"{"schedule":["ratio:0.1","eta:0.9"]}"#).unwrap();
        let err = schedule_from_json(&v).unwrap_err().to_string();
        assert!(err.contains("accuracy target"), "{err}");
    }

    #[test]
    fn target_field_decodes_and_validates() {
        assert!(target_from_json(&parse(r#"{}"#).unwrap())
            .unwrap()
            .is_none());
        let t = target_from_json(&parse(r#"{"target":"eta:0.95"}"#).unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(t.eta, 0.95);
        let capped = target_from_json(&parse(r#"{"target":"eta:0.9@ratio:0.5"}"#).unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(capped.max_budget, ResourceSpec::Ratio(0.5));
        // bad values name the offending value and the valid range
        let err = target_from_json(&parse(r#"{"target":"eta:1.5"}"#).unwrap())
            .unwrap_err()
            .to_string();
        assert!(err.contains("(0, 1]"), "{err}");
        assert!(err.contains("`1.5`"), "{err}");
        assert!(target_from_json(&parse(r#"{"target":7}"#).unwrap()).is_err());
    }

    #[test]
    fn target_schedules_derive_accuracy_goals() {
        let s = schedule_from_json(&parse(r#"{"target":"eta:0.9"}"#).unwrap()).unwrap();
        assert_eq!(s.accuracy_goal(), Some(0.9));
        // mixing denominations is rejected, as are capped targets (the
        // streamed route always refines towards full)
        assert!(
            schedule_from_json(&parse(r#"{"target":"eta:0.9","spec":"ratio:0.5"}"#).unwrap())
                .is_err()
        );
        assert!(schedule_from_json(&parse(r#"{"target":"eta:0.9@tuples:100"}"#).unwrap()).is_err());
    }

    #[test]
    fn update_round_trip() {
        let v = parse(
            r#"{"inserts":[
                {"relation":"poi","row":["hotel","NYC",95.5]},
                {"relation":"friend","row":[1,2]}]}"#,
        )
        .unwrap();
        let batch = update_from_json(&v).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch.inserts()[0].1,
            vec![
                Value::from("hotel"),
                Value::from("NYC"),
                Value::Double(95.5)
            ]
        );
        assert_eq!(batch.inserts()[1].1, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn query_encoding_round_trips_structurally() {
        let s = schema();
        // an aggregate over a union of joins, binds and filters — the full
        // grammar in one query
        let mut b = SpcQueryBuilder::new(&s);
        let h = b.atom("poi", "h").unwrap();
        let f = b.atom("friend", "f").unwrap();
        b.bind_const(h, "type", "hotel").unwrap();
        b.join((h, "price"), (f, "pid")).unwrap();
        b.filter_const(h, "price", CompareOp::Le, 95i64).unwrap();
        b.output(h, "city", "city").unwrap();
        let left = RaQuery::Spc(b.build().unwrap());
        let mut b = SpcQueryBuilder::new(&s);
        let h = b.atom("poi", "h2").unwrap();
        b.bind_const(h, "type", "museum").unwrap();
        b.filter_const(h, "city", CompareOp::Eq, "LA").unwrap();
        b.output(h, "city", "city").unwrap();
        let right = RaQuery::Spc(b.build().unwrap());
        let query: BeasQuery = AggQuery::new(
            left.union(right),
            vec!["city".to_string()],
            AggFunc::Count,
            "city",
            "n",
        )
        .unwrap()
        .into();

        let encoded = query_to_json(&query, &s).unwrap();
        // survives serialization, not just the in-memory Json value
        let reparsed = parse(&encoded.to_string()).unwrap();
        let decoded = query_from_json(&reparsed, &s).unwrap();
        assert_eq!(decoded, query, "decode ∘ encode must be the identity");
        // and the round-trip is a fixpoint
        assert_eq!(query_to_json(&decoded, &s).unwrap(), encoded);
    }

    #[test]
    fn query_encoding_rejects_var_var_selections() {
        let s = schema();
        let mut b = SpcQueryBuilder::new(&s);
        let h = b.atom("poi", "h").unwrap();
        let f = b.atom("friend", "f").unwrap();
        b.filter_cols((h, "price"), CompareOp::Ge, (f, "pid"))
            .unwrap();
        b.output(h, "city", "city").unwrap();
        let query: BeasQuery = b.build().unwrap().into();
        assert!(query_to_json(&query, &s).is_err());
    }

    #[test]
    fn relation_digest_survives_the_wire() {
        let mut db = Database::new(schema());
        for i in 0..40i64 {
            db.insert_row(
                "poi",
                vec![
                    Value::from(if i % 2 == 0 { "hotel" } else { "museum" }),
                    Value::from("NYC"),
                    Value::Double(30.0 + i as f64 / 3.0),
                ],
            )
            .unwrap();
        }
        let rel = db.relation("poi").unwrap().clone();
        let json = Json::obj(relation_fields(&rel));
        let back = relation_from_json(&parse(&json.to_string()).unwrap()).unwrap();
        assert_eq!(back.digest(), rel.digest());
        assert_eq!(back.sorted(), rel.sorted());
    }

    #[test]
    fn non_finite_floats_survive_the_wire() {
        for v in [
            Value::Double(f64::NAN),
            Value::Double(f64::INFINITY),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(-0.0),
            Value::Null,
            Value::Bool(true),
        ] {
            let json = value_to_json(&v);
            let back = value_from_json(&parse(&json.to_string()).unwrap()).unwrap();
            match (&v, &back) {
                (Value::Double(a), Value::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "{v:?}")
                }
                _ => assert_eq!(v, back),
            }
        }
    }
}
