//! A minimal JSON value, parser and serializer — the wire format of the
//! serving front-end. Std-only by design (the build environment has no
//! registry access), and deliberately small: objects are ordered key/value
//! vectors, numbers keep the integer/float distinction so `i64` database
//! values survive the wire losslessly, and parsing is depth- and
//! size-bounded so a malicious body cannot blow the stack.
//!
//! Float fidelity matters here: answers must round-trip **bit-for-bit** so a
//! client can recompute the answer digest. Finite `f64`s are serialized with
//! Rust's shortest round-trip formatting (forcing a `.0` onto integral
//! floats so they parse back as floats), and non-finite values — which JSON
//! cannot represent — are encoded as the tagged objects `{"$f":"nan"}`,
//! `{"$f":"inf"}` and `{"$f":"-inf"}`.

use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (no `.`/exponent in the source).
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs (later duplicates win on lookup
    /// misuse, but the serializer never emits duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(f) => write_f64(*f, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact JSON serialization (`value.to_string()` produces the wire
    /// text).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes a float: shortest round-trip for finite values (with a forced `.0`
/// on integral floats so they stay floats), tagged objects for non-finite.
fn write_f64(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("{\"$f\":\"nan\"}");
    } else if f == f64::INFINITY {
        out.push_str("{\"$f\":\"inf\"}");
    } else if f == f64::NEG_INFINITY {
        out.push_str("{\"$f\":\"-inf\"}");
    } else {
        let s = format!("{f}");
        let integral = !s.contains(['.', 'e', 'E']);
        out.push_str(&s);
        if integral {
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value, requiring the whole input to be consumed.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                // integers beyond i64 fall back to f64, like other parsers
                .or_else(|_| {
                    text.parse::<f64>()
                        .map(Json::Num)
                        .map_err(|_| self.err("invalid number"))
                })
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // surrogate pairs: a high surrogate must be
                            // followed by a low surrogate escape — anything
                            // else is rejected, not silently misdecoded
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        char::from_u32(
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-42",
            "3.5",
            "\"hi \\\"there\\\"\"",
            "[1,2.5,\"x\",null,[true]]",
            "{\"a\":1,\"b\":{\"c\":[]},\"d\":\"\"}",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integer_float_distinction_survives() {
        assert_eq!(parse("3").unwrap(), Json::Int(3));
        assert_eq!(parse("3.0").unwrap(), Json::Num(3.0));
        assert_eq!(Json::Num(3.0).to_string(), "3.0");
        assert_eq!(Json::Int(3).to_string(), "3");
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-10, -0.0] {
            let text = Json::Num(f).to_string();
            match parse(&text).unwrap() {
                Json::Num(g) => assert_eq!(f.to_bits(), g.to_bits(), "{f} via {text}"),
                other => panic!("{f} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{]",
            "nulll",
            "--1",
            "\"\\u12\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` accepted");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".to_string()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        let v = Json::Str("héllo — 世界".to_string());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        // invalid surrogate sequences are rejected, never misdecoded
        for bad in [
            "\"\\ud800\\u0061\"", // high surrogate + non-surrogate escape
            "\"\\ud800a\"",       // high surrogate + raw character
            "\"\\ud800\"",        // lone high surrogate
            "\"\\udc00\"",        // lone low surrogate
        ] {
            assert!(parse(bad).is_err(), "`{bad}` accepted");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse("{\"x\":5,\"y\":\"s\",\"z\":[1],\"w\":true}").unwrap();
        assert_eq!(v.get("x").and_then(Json::as_i64), Some(5));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(5.0));
        assert_eq!(v.get("y").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("z").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("w").and_then(Json::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }
}
