//! A minimal blocking HTTP/1.1 client over one keep-alive connection — just
//! enough to drive the server from tests, the bench serving experiment and
//! the `loadgen` binary without pulling in a dependency.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{parse, Json};

/// One keep-alive connection to a server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
}

/// A received response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> std::io::Result<Json> {
        parse(&self.body).map_err(|e| std::io::Error::other(format!("bad response JSON: {e}")))
    }
}

impl Client {
    /// Connects to `addr` with a read/write timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Adjusts the read/write timeout of the underlying connection, e.g. to
    /// bound an individual request by the time remaining before a deadline.
    pub fn set_timeout(&mut self, timeout: Duration) -> std::io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))
    }

    /// Issues a `GET`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None)
    }

    /// Issues a `POST` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: beas\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::other(format!("malformed status line `{status_line}`"))
            })?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        // interim 100 Continue responses carry no body; read the real one
        if status == 100 {
            return self.read_response();
        }
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            self.read_chunked_body()?
        } else {
            let length: usize = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0);
            let mut body = vec![0u8; length];
            self.reader.read_exact(&mut body)?;
            body
        };
        let body = String::from_utf8(body)
            .map_err(|_| std::io::Error::other("non-UTF-8 response body"))?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// Decodes a `Transfer-Encoding: chunked` body (the streamed refinement
    /// frames of `POST /query/stream`). The concatenated chunks are returned
    /// as the body; since the server writes one newline-terminated JSON frame
    /// per chunk, `body.lines()` recovers the frames.
    fn read_chunked_body(&mut self) -> std::io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let size_line = self.read_line()?;
            let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                std::io::Error::other(format!("malformed chunk size `{size_line}`"))
            })?;
            if size == 0 {
                // the terminating chunk's trailing CRLF
                self.read_line()?;
                return Ok(body);
            }
            let mut chunk = vec![0u8; size];
            self.reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            // the CRLF after each chunk's data
            self.read_line()?;
        }
    }
}
