//! Integration tests of the serving front-end: wire round-trips against the
//! in-process engine, the concurrency oracle driven over HTTP, admission
//! control isolating tenants, and the malformed-request error paths.

use std::sync::Arc;
use std::time::{Duration, Instant};

use beas_core::{Beas, ConstraintSpec, ResourceSpec, ServeHandle, UpdateBatch};
use beas_relal::{
    Attribute, Database, DatabaseSchema, Relation, RelationSchema, SpcQueryBuilder, Value,
};
use beas_serve::{
    parse_json, query_body, serve, update_body, Client, Json, RunningServer, ServeConfig,
    TenantPolicy,
};

fn poi_db(n: i64) -> Database {
    let schema = DatabaseSchema::new(vec![RelationSchema::new(
        "poi",
        vec![
            Attribute::categorical("type"),
            Attribute::text("city"),
            Attribute::double("price"),
        ],
    )]);
    let mut db = Database::new(schema);
    let cities = ["NYC", "LA", "Chicago"];
    for i in 0..n {
        db.insert_row(
            "poi",
            vec![
                Value::from(if i % 2 == 0 { "hotel" } else { "museum" }),
                Value::from(cities[(i % 3) as usize]),
                Value::Double(30.0 + ((i * 7) % 160) as f64 / 2.0),
            ],
        )
        .unwrap();
    }
    db
}

fn engine(n: i64) -> Arc<Beas> {
    Arc::new(
        Beas::builder(poi_db(n))
            .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
            .num_threads(1)
            .build()
            .unwrap(),
    )
}

/// The standard test query: NYC hotel prices.
fn nyc_hotels_json() -> Json {
    parse_json(
        r#"{"type":"spc",
            "atoms":[{"relation":"poi","alias":"h"}],
            "binds":[{"atom":"h","attr":"type","value":"hotel"},
                     {"atom":"h","attr":"city","value":"NYC"}],
            "outputs":[{"atom":"h","attr":"price","name":"price"}]}"#,
    )
    .unwrap()
}

fn nyc_hotels_query(engine: &Beas) -> beas_core::BeasQuery {
    let mut b = SpcQueryBuilder::new(engine.schema());
    let h = b.atom("poi", "h").unwrap();
    b.bind_const(h, "type", "hotel").unwrap();
    b.bind_const(h, "city", "NYC").unwrap();
    b.output(h, "price", "price").unwrap();
    b.build().unwrap().into()
}

fn start(engine: Arc<Beas>, config: ServeConfig) -> RunningServer {
    serve(ServeHandle::new(engine), config).expect("server start")
}

fn open_tenant() -> TenantPolicy {
    TenantPolicy::with_rate(1e12, 1e12)
}

fn client(server: &RunningServer) -> Client {
    Client::connect(server.addr(), Duration::from_secs(10)).expect("connect")
}

#[test]
fn query_update_metrics_round_trip() {
    let engine = engine(300);
    let expected = engine
        .answer(&nyc_hotels_query(&engine), ResourceSpec::FULL)
        .unwrap();
    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            .tenant("t", open_tenant())
            .default_tenant("t"),
    );
    let mut c = client(&server);

    // healthz + schema
    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().unwrap().get("status").and_then(Json::as_str),
        Some("ok")
    );
    let schema = c.get("/schema").unwrap().json().unwrap();
    let relations = schema.get("relations").and_then(Json::as_arr).unwrap();
    assert_eq!(relations.len(), 1);
    assert_eq!(relations[0].get("name").and_then(Json::as_str), Some("poi"));

    // the served answer is bit-for-bit the in-process answer
    let response = c
        .post(
            "/query",
            &query_body(None, ResourceSpec::FULL, &nyc_hotels_json()),
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let answer = response.json().unwrap();
    assert_eq!(answer.get("exact").and_then(Json::as_bool), Some(true));
    assert_eq!(
        answer.get("digest").and_then(Json::as_str),
        Some(format!("{:016x}", expected.answers.digest()).as_str())
    );
    let served: Relation = beas_serve::relation_from_json(&answer).unwrap();
    assert_eq!(served.digest(), expected.answers.digest());
    assert_eq!(served.sorted(), expected.answers.clone().sorted());

    // prepare once, answer through the registry
    let prepared = c
        .post(
            "/prepare",
            &Json::obj(vec![("query", nyc_hotels_json())]).to_string(),
        )
        .unwrap();
    assert_eq!(prepared.status, 200, "{}", prepared.body);
    let id = prepared
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_i64)
        .unwrap();
    let via_prepared = c
        .post(&format!("/prepared/{id}/answer"), r#"{"spec":"ratio:1"}"#)
        .unwrap();
    assert_eq!(via_prepared.status, 200, "{}", via_prepared.body);
    assert_eq!(
        via_prepared
            .json()
            .unwrap()
            .get("digest")
            .and_then(Json::as_str),
        Some(format!("{:016x}", expected.answers.digest()).as_str())
    );
    // a repeat at the same budget hits the shared plan cache
    let repeat = c
        .post(&format!("/prepared/{id}/answer"), r#"{"spec":"ratio:1"}"#)
        .unwrap();
    assert_eq!(repeat.status, 200, "{}", repeat.body);

    // a batched update lands and the next answer reflects it
    let batch = UpdateBatch::new()
        .insert(
            "poi",
            vec![
                Value::from("hotel"),
                Value::from("NYC"),
                Value::Double(19.25),
            ],
        )
        .insert(
            "poi",
            vec![
                Value::from("hotel"),
                Value::from("NYC"),
                Value::Double(21.75),
            ],
        );
    let update = c.post("/update", &update_body(None, &batch)).unwrap();
    assert_eq!(update.status, 200, "{}", update.body);
    assert_eq!(
        update.json().unwrap().get("applied").and_then(Json::as_i64),
        Some(2)
    );
    let after = c
        .post(&format!("/prepared/{id}/answer"), r#"{"spec":"ratio:1"}"#)
        .unwrap()
        .json()
        .unwrap();
    let after_rel = beas_serve::relation_from_json(&after).unwrap();
    assert_eq!(after_rel.len(), expected.answers.len() + 2);
    assert!(after_rel.rows().any(|r| r == vec![Value::Double(19.25)]));

    // metrics reflect the traffic
    let metrics = c.get("/metrics").unwrap().json().unwrap();
    let tenant = metrics.get("tenants").unwrap().get("t").unwrap();
    assert!(tenant.get("admitted").and_then(Json::as_i64).unwrap() >= 4);
    assert_eq!(
        tenant.get("rejected_budget").and_then(Json::as_i64),
        Some(0)
    );
    let engine_stats = metrics.get("engine").unwrap();
    assert!(engine_stats.get("queries").and_then(Json::as_i64).unwrap() >= 3);
    assert_eq!(engine_stats.get("updates").and_then(Json::as_i64), Some(1));
    assert_eq!(
        engine_stats.get("rows_inserted").and_then(Json::as_i64),
        Some(2)
    );
    assert!(
        engine_stats
            .get("plan_cache_hits")
            .and_then(Json::as_i64)
            .unwrap()
            >= 1
    );
    // a non-durable engine reports the storage tier as all-zero
    let storage = metrics.get("storage").unwrap();
    assert_eq!(
        storage.get("segments_written").and_then(Json::as_i64),
        Some(0)
    );
    assert_eq!(
        storage.get("replayed_batches").and_then(Json::as_i64),
        Some(0)
    );
    assert_eq!(storage.get("page_ins").and_then(Json::as_i64), Some(0));

    server.shutdown();
}

/// The concurrency oracle of `tests/concurrency.rs`, driven over the wire:
/// concurrent `/query` requests at the full spec interleaved with `/update`
/// batches must only ever observe answers matching one of the consistent
/// database states the writer steps through.
#[test]
fn concurrent_queries_and_updates_observe_consistent_states() {
    const READERS: usize = 4;
    const ANSWERS_PER_READER: usize = 25;
    const BATCHES: usize = 6;

    let base = poi_db(400);
    let engine = Arc::new(
        Beas::builder(base.clone())
            .constraint(ConstraintSpec::new("poi", &["type", "city"], &["price"]))
            .num_threads(1)
            .build()
            .unwrap(),
    );
    let query = nyc_hotels_query(&engine);

    // the writer's batches: distinct new NYC hotels, so every state has a
    // distinct exact answer set
    let batches: Vec<UpdateBatch> = (0..BATCHES as i64)
        .map(|b| {
            (0..3i64).fold(UpdateBatch::new(), |batch, i| {
                batch.insert(
                    "poi",
                    vec![
                        Value::from("hotel"),
                        Value::from("NYC"),
                        Value::Double(2000.0 + (b * 3 + i) as f64 + 0.5),
                    ],
                )
            })
        })
        .collect();
    let mut expected: Vec<Relation> = Vec::with_capacity(BATCHES + 1);
    let mut state = base;
    expected.push(beas_core::exact_answers(&query, &state).unwrap().sorted());
    for batch in &batches {
        for (relation, row) in batch.inserts() {
            state.insert_row(relation, row.clone()).unwrap();
        }
        expected.push(beas_core::exact_answers(&query, &state).unwrap().sorted());
    }

    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            .workers(READERS + 2)
            .tenant("t", open_tenant())
            .default_tenant("t"),
    );

    std::thread::scope(|scope| {
        let server = &server;
        let batches = &batches;
        let expected = &expected;
        scope.spawn(move || {
            let mut c = client(server);
            for batch in batches {
                let response = c.post("/update", &update_body(None, batch)).unwrap();
                assert_eq!(response.status, 200, "{}", response.body);
                std::thread::yield_now();
            }
        });
        for _ in 0..READERS {
            scope.spawn(move || {
                let mut c = client(server);
                let body = query_body(None, ResourceSpec::FULL, &nyc_hotels_json());
                for _ in 0..ANSWERS_PER_READER {
                    let response = c.post("/query", &body).unwrap();
                    assert_eq!(response.status, 200, "{}", response.body);
                    let answer = response.json().unwrap();
                    assert_eq!(answer.get("exact").and_then(Json::as_bool), Some(true));
                    let rel = beas_serve::relation_from_json(&answer).unwrap().sorted();
                    assert!(
                        expected.contains(&rel),
                        "an answer served over the wire matches no consistent state \
                         ({} rows observed)",
                        rel.len()
                    );
                }
            });
        }
    });

    // quiesced: the served state is the final one
    let mut c = client(&server);
    let final_answer = c
        .post(
            "/query",
            &query_body(None, ResourceSpec::FULL, &nyc_hotels_json()),
        )
        .unwrap()
        .json()
        .unwrap();
    let rel = beas_serve::relation_from_json(&final_answer)
        .unwrap()
        .sorted();
    assert_eq!(&rel, expected.last().unwrap());
    server.shutdown();
}

/// Admission control isolates tenants: a tenant saturating its token bucket
/// collects `429`s (with `Retry-After`), while a generously provisioned
/// tenant sharing the server keeps being served with bounded latency.
#[test]
fn saturating_tenant_gets_429_while_light_tenant_stays_served() {
    let engine = engine(600);
    let full_budget = engine.catalog().budget(&ResourceSpec::FULL).unwrap() as f64;
    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            .workers(8)
            // the free tier can afford a couple of full-budget queries, then
            // refills far too slowly for the hammering below
            .tenant(
                "free",
                TenantPolicy::with_rate(full_budget / 10.0, full_budget * 2.0),
            )
            .tenant("gold", open_tenant()),
    );

    let saturator_429s = std::sync::atomic::AtomicUsize::new(0);
    let saturator_oks = std::sync::atomic::AtomicUsize::new(0);
    let mut gold_latencies: Vec<Duration> = Vec::new();

    std::thread::scope(|scope| {
        let server = &server;
        let saturator_429s = &saturator_429s;
        let saturator_oks = &saturator_oks;
        // 3 connections hammering the free tier with maximal-budget queries
        for _ in 0..3 {
            scope.spawn(move || {
                let mut c = client(server);
                let body = query_body(Some("free"), ResourceSpec::FULL, &nyc_hotels_json());
                for _ in 0..30 {
                    let response = c.post("/query", &body).unwrap();
                    match response.status {
                        200 => saturator_oks.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                        429 => {
                            let retry = response.header("retry-after").unwrap_or("");
                            assert!(
                                retry.parse::<u64>().map(|s| s >= 1).unwrap_or(false),
                                "429 must carry a positive Retry-After, got `{retry}`"
                            );
                            saturator_429s.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                        }
                        other => panic!("unexpected status {other}: {}", response.body),
                    };
                }
            });
        }
        // the compliant tenant keeps a modest request rate on its own
        // connection, concurrently with the saturators
        let mut c = client(server);
        let body = query_body(Some("gold"), ResourceSpec::Ratio(0.2), &nyc_hotels_json());
        for _ in 0..40 {
            let start = Instant::now();
            let response = c.post("/query", &body).unwrap();
            gold_latencies.push(start.elapsed());
            assert_eq!(
                response.status, 200,
                "the compliant tenant must never be rejected: {}",
                response.body
            );
        }
    });

    let rejected = saturator_429s.load(std::sync::atomic::Ordering::Relaxed);
    let admitted = saturator_oks.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        rejected > 0,
        "the saturating tenant must run out of budget (admitted {admitted})"
    );
    assert!(
        admitted >= 1,
        "the burst allowance must admit at least one request"
    );

    // p99 of the compliant tenant stays bounded while the saturator hammers:
    // rejections are answered at the door, so the gold lane never queues
    // behind free-tier work
    gold_latencies.sort();
    let p99 = gold_latencies[(gold_latencies.len() * 99 / 100).min(gold_latencies.len() - 1)];
    assert!(
        p99 < Duration::from_millis(1500),
        "compliant tenant p99 {p99:?} pushed past its bound by a saturating neighbour"
    );

    // the per-tenant metrics saw it all
    let mut c = client(&server);
    let metrics = c.get("/metrics").unwrap().json().unwrap();
    let free = metrics.get("tenants").unwrap().get("free").unwrap();
    let gold = metrics.get("tenants").unwrap().get("gold").unwrap();
    assert_eq!(
        free.get("rejected_budget").and_then(Json::as_i64),
        Some(rejected as i64)
    );
    assert_eq!(gold.get("rejected_budget").and_then(Json::as_i64), Some(0));
    assert_eq!(gold.get("completed").and_then(Json::as_i64), Some(40));
    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_not_a_hung_connection() {
    let engine = engine(60);
    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            .max_body_bytes(4096)
            .tenant("t", open_tenant())
            .default_tenant("t"),
    );

    // each case on a fresh connection (error paths may close it)
    let cases: Vec<(&str, &str, String, u16)> = vec![
        ("POST", "/query", "{not json".into(), 400),
        ("POST", "/query", "[1,2,3]".into(), 400), // not an object
        ("POST", "/query", r#"{"spec":"ratio:0.5"}"#.into(), 400), // no query
        (
            "POST",
            "/query",
            query_body(
                None,
                ResourceSpec::FULL,
                &parse_json(r#"{"type":"nope"}"#).unwrap(),
            ),
            400,
        ),
        (
            "POST",
            "/query",
            // bad spec string
            format!(r#"{{"spec":"ratio:2.5","query":{}}}"#, nyc_hotels_json()),
            400,
        ),
        (
            "POST",
            "/query",
            // unknown tenant
            format!(
                r#"{{"tenant":"nobody","spec":"ratio:0.5","query":{}}}"#,
                nyc_hotels_json()
            ),
            403,
        ),
        (
            "POST",
            "/query",
            // unknown relation inside the query
            query_body(
                None,
                ResourceSpec::FULL,
                &parse_json(
                    r#"{"type":"spc","atoms":[{"relation":"nope"}],
                        "outputs":[{"atom":"nope","attr":"x"}]}"#,
                )
                .unwrap(),
            ),
            400,
        ),
        ("POST", "/update", r#"{"inserts":"nope"}"#.into(), 400),
        (
            "POST",
            "/update",
            // wrong arity: validated before anything is applied
            r#"{"inserts":[{"relation":"poi","row":["hotel"]}]}"#.into(),
            400,
        ),
        (
            "POST",
            "/prepared/999/answer",
            r#"{"spec":"ratio:1"}"#.into(),
            404,
        ),
        (
            "POST",
            "/prepared/xyz/answer",
            r#"{"spec":"ratio:1"}"#.into(),
            400,
        ),
        ("POST", "/nope", "{}".into(), 404),
        ("GET", "/nope", String::new(), 404),
    ];
    for (method, path, body, expected_status) in cases {
        let mut c = client(&server);
        let response = match method {
            "GET" => c.get(path).unwrap(),
            _ => c.post(path, &body).unwrap(),
        };
        assert_eq!(
            response.status, expected_status,
            "{method} {path} with `{body}` → {}",
            response.body
        );
        assert!(
            response.json().unwrap().get("error").is_some() || expected_status == 200,
            "error responses carry an `error` field: {}",
            response.body
        );
    }

    // an oversized body is rejected with 413 before being buffered
    let mut c = client(&server);
    let huge = format!(
        r#"{{"spec":"ratio:1","query":{},"pad":"{}"}}"#,
        nyc_hotels_json(),
        "x".repeat(8 * 1024)
    );
    let response = c.post("/query", &huge).unwrap();
    assert_eq!(response.status, 413, "{}", response.body);

    // the database was never touched by any of the bad requests
    assert_eq!(engine.database().total_tuples(), 60);
    server.shutdown();
}

#[test]
fn prepare_is_admission_controlled_and_evicts_only_within_the_tenant() {
    let engine = engine(80);
    // max_prepared 4 across two tenants -> quota of 2 handles per tenant
    let server = start(
        Arc::clone(&engine),
        ServeConfig {
            max_prepared: 4,
            ..ServeConfig::default()
        }
        .tenant("a", open_tenant())
        .tenant("b", open_tenant())
        .default_tenant("a"),
    );
    let mut c = client(&server);
    let body_for =
        |tenant: &str| format!(r#"{{"tenant":"{tenant}","query":{}}}"#, nyc_hotels_json());

    // unknown tenants cannot touch the registry
    let forbidden = c.post("/prepare", &body_for("nobody")).unwrap();
    assert_eq!(forbidden.status, 403, "{}", forbidden.body);

    let id_of = |response: beas_serve::Response| {
        response
            .json()
            .unwrap()
            .get("id")
            .and_then(Json::as_i64)
            .unwrap()
    };
    // b registers one handle, then a floods its own quota
    let b_id = id_of(c.post("/prepare", &body_for("b")).unwrap());
    let a_first = id_of(c.post("/prepare", &body_for("a")).unwrap());
    let _a_second = id_of(c.post("/prepare", &body_for("a")).unwrap());
    let a_third = id_of(c.post("/prepare", &body_for("a")).unwrap());
    assert!(a_third > a_first);

    // a's overflow evicted a's own oldest ...
    let evicted = c
        .post(
            &format!("/prepared/{a_first}/answer"),
            r#"{"spec":"ratio:1"}"#,
        )
        .unwrap();
    assert_eq!(
        evicted.status, 404,
        "evicted ids answer 404: {}",
        evicted.body
    );
    let alive = c
        .post(
            &format!("/prepared/{a_third}/answer"),
            r#"{"spec":"ratio:1"}"#,
        )
        .unwrap();
    assert_eq!(alive.status, 200, "{}", alive.body);
    // ... and never b's: one tenant cannot flush another's prepared queries
    let b_alive = c
        .post(
            &format!("/prepared/{b_id}/answer"),
            r#"{"tenant":"b","spec":"ratio:1"}"#,
        )
        .unwrap();
    assert_eq!(
        b_alive.status, 200,
        "tenant b's handle must survive a's flood: {}",
        b_alive.body
    );
    // prepared handles are tenant-scoped: a cannot answer through b's id,
    // and gets the same 404 as a non-existent id (no information leak)
    let cross = c
        .post(
            &format!("/prepared/{b_id}/answer"),
            r#"{"tenant":"a","spec":"ratio:1"}"#,
        )
        .unwrap();
    assert_eq!(
        cross.status, 404,
        "another tenant's prepared id must read as unknown: {}",
        cross.body
    );
    server.shutdown();
}

#[test]
fn overlarge_request_cost_is_a_nonretryable_400() {
    let engine = engine(400);
    let full_budget = engine.catalog().budget(&ResourceSpec::FULL).unwrap() as f64;
    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            // burst far below one full-budget query: no amount of waiting
            // makes the request admissible
            .tenant("tiny", TenantPolicy::with_rate(1e9, full_budget / 4.0)),
    );
    let mut c = client(&server);
    let response = c
        .post(
            "/query",
            &query_body(Some("tiny"), ResourceSpec::FULL, &nyc_hotels_json()),
        )
        .unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(
        response.header("retry-after").is_none(),
        "a never-admissible request must not advertise Retry-After"
    );
    assert!(
        response.body.contains("burst capacity"),
        "{}",
        response.body
    );
    // a request within the burst still works
    let ok = c
        .post(
            "/query",
            &query_body(Some("tiny"), ResourceSpec::Tuples(10), &nyc_hotels_json()),
        )
        .unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);
    server.shutdown();
}

#[test]
fn http10_and_connection_close_are_honoured() {
    use std::io::{Read, Write};
    let engine = engine(50);
    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            .tenant("t", open_tenant())
            .default_tenant("t"),
    );
    // raw HTTP/1.0 request: the server must answer and close
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"status\":\"ok\""), "{response}");
    server.shutdown();
}

#[test]
fn streamed_query_refines_and_final_frame_matches_one_shot() {
    let engine = engine(600);
    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            .tenant("t", open_tenant())
            .default_tenant("t"),
    );
    let mut c = client(&server);

    // the one-shot reference at the schedule's final spec
    let spec = ResourceSpec::Ratio(0.5);
    let one_shot = c
        .post("/query", &query_body(None, spec, &nyc_hotels_json()))
        .unwrap();
    assert_eq!(one_shot.status, 200, "{}", one_shot.body);
    let one_shot_digest = one_shot
        .json()
        .unwrap()
        .get("digest")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // the streamed session: explicit schedule ending at the same spec
    let body = format!(
        r#"{{"schedule":["ratio:0.02","ratio:0.1","ratio:0.5"],"query":{}}}"#,
        nyc_hotels_json()
    );
    let streamed = c.post("/query/stream", &body).unwrap();
    assert_eq!(streamed.status, 200, "{}", streamed.body);
    assert_eq!(
        streamed.header("transfer-encoding"),
        Some("chunked"),
        "the stream must be chunked"
    );
    let frames: Vec<Json> = streamed
        .body
        .lines()
        .map(|line| parse_json(line).expect("frame JSON"))
        .collect();
    assert!(frames.len() >= 2, "got {} frames", frames.len());

    // frames carry eta / cumulative budget / digest, monotonically
    let mut last_eta = -1.0;
    let mut last_spent = 0i64;
    for frame in &frames {
        let eta = frame.get("eta").and_then(Json::as_f64).unwrap();
        let spent = frame.get("budget_spent").and_then(Json::as_i64).unwrap();
        assert!(eta >= last_eta, "eta must not decrease across the stream");
        assert!(spent >= last_spent, "budget_spent must not decrease");
        assert!(frame.get("digest").and_then(Json::as_str).is_some());
        last_eta = eta;
        last_spent = spent;
    }
    // the final frame is bit-for-bit the one-shot answer
    let last = frames.last().unwrap();
    assert_eq!(
        last.get("digest").and_then(Json::as_str),
        Some(one_shot_digest.as_str()),
        "final frame must equal the one-shot digest"
    );
    assert_eq!(last.get("spec").and_then(Json::as_str), Some("ratio:0.5"));
    assert_eq!(
        last.get("steps").and_then(Json::as_i64),
        Some(frames.len() as i64)
    );

    // a "spec"-only body streams the default ladder leading to that spec,
    // and the connection stays usable (keep-alive survives chunked bodies)
    let streamed = c
        .post("/query/stream", &query_body(None, spec, &nyc_hotels_json()))
        .unwrap();
    assert_eq!(streamed.status, 200);
    let lines: Vec<&str> = streamed.body.lines().collect();
    assert!(lines.len() >= 2);
    assert!(lines.last().unwrap().contains(&one_shot_digest));
    server.shutdown();
}

#[test]
fn streamed_query_rejects_bad_schedules_and_is_admission_controlled() {
    let engine = engine(400);
    let full_budget = engine.catalog().budget(&ResourceSpec::FULL).unwrap() as f64;
    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            .tenant("t", open_tenant())
            // the tiny tenant's burst cannot cover a full default ladder
            .tenant(
                "tiny",
                TenantPolicy::with_rate(full_budget / 10.0, full_budget),
            )
            .default_tenant("t"),
    );
    let mut c = client(&server);

    // malformed schedules are non-chunked 400s
    for bad in [
        r#"{"schedule":["ratio:0.5","ratio:0.1"],"query":{}}"#.to_string(),
        format!(r#"{{"schedule":[],"query":{}}}"#, nyc_hotels_json()),
        format!(r#"{{"schedule":["nope"],"query":{}}}"#, nyc_hotels_json()),
        format!(
            r#"{{"schedule":["ratio:0"],"query":{}}}"#,
            nyc_hotels_json()
        ),
    ] {
        let r = c.post("/query/stream", &bad).unwrap();
        assert_eq!(r.status, 400, "`{bad}` accepted: {}", r.body);
    }
    // missing query
    let r = c
        .post("/query/stream", r#"{"schedule":["ratio:0.1"]}"#)
        .unwrap();
    assert_eq!(r.status, 400);

    // the schedule's *total* budget is charged: a ladder summing past the
    // tiny tenant's burst is rejected outright as too expensive
    let body = format!(
        r#"{{"tenant":"tiny","schedule":["ratio:0.5","ratio:1"],"query":{}}}"#,
        nyc_hotels_json()
    );
    let r = c.post("/query/stream", &body).unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("burst"), "{}", r.body);

    // a single-step full schedule fits the burst and works; draining the
    // bucket then yields 429 + Retry-After
    let body = format!(
        r#"{{"tenant":"tiny","schedule":["ratio:1"],"query":{}}}"#,
        nyc_hotels_json()
    );
    let mut saw_429 = false;
    for _ in 0..4 {
        let r = c.post("/query/stream", &body).unwrap();
        if r.status == 429 {
            assert!(r.header("retry-after").is_some());
            saw_429 = true;
            break;
        }
        assert_eq!(r.status, 200, "{}", r.body);
    }
    assert!(saw_429, "the tiny tenant must eventually see a 429");
    server.shutdown();
}

#[test]
fn accuracy_targets_are_served_settled_and_reported_in_metrics() {
    let engine = engine(600);
    let full_budget = engine.catalog().budget(&ResourceSpec::FULL).unwrap();
    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            .tenant("t", open_tenant())
            .default_tenant("t"),
    );
    let mut c = client(&server);

    // `eta:` in the spec field redirects to `target` with a clear 400
    let r = c
        .post(
            "/query",
            &format!(r#"{{"spec":"eta:0.9","query":{}}}"#, nyc_hotels_json()),
        )
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("target"), "{}", r.body);

    // spec and target are mutually exclusive
    let r = c
        .post(
            "/query",
            &format!(
                r#"{{"spec":"ratio:0.5","target":"eta:0.9","query":{}}}"#,
                nyc_hotels_json()
            ),
        )
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("mutually exclusive"), "{}", r.body);

    // a bad target names the value and the valid range
    let r = c
        .post(
            "/query",
            &format!(r#"{{"target":"eta:2","query":{}}}"#, nyc_hotels_json()),
        )
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("(0, 1]"), "{}", r.body);

    // cold engine: the target is still met — never over-promised
    let target_body = format!(r#"{{"target":"eta:0.9","query":{}}}"#, nyc_hotels_json());
    let r = c.post("/query", &target_body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let a = r.json().unwrap();
    assert_eq!(a.get("feasible").and_then(Json::as_bool), Some(true));
    assert_eq!(a.get("curve_backed").and_then(Json::as_bool), Some(false));
    assert!(a.get("eta").and_then(Json::as_f64).unwrap() >= 0.9);
    assert!(a.get("target").and_then(Json::as_str) == Some("eta:0.9"));

    // warm the curves across the ladder, then the same target is curve-backed
    for _ in 0..3 {
        for spec in [
            ResourceSpec::Ratio(0.05),
            ResourceSpec::Ratio(0.2),
            ResourceSpec::Ratio(0.6),
            ResourceSpec::FULL,
        ] {
            let r = c
                .post("/query", &query_body(None, spec, &nyc_hotels_json()))
                .unwrap();
            assert_eq!(r.status, 200, "{}", r.body);
        }
    }
    let r = c.post("/query", &target_body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let a = r.json().unwrap();
    assert_eq!(a.get("feasible").and_then(Json::as_bool), Some(true));
    assert_eq!(a.get("curve_backed").and_then(Json::as_bool), Some(true));
    assert!(a.get("eta").and_then(Json::as_f64).unwrap() >= 0.9);
    assert!(a.get("spent").and_then(Json::as_i64).unwrap() <= full_budget as i64);

    // the streamed route accepts a target and its last frame meets it
    let streamed = c
        .post(
            "/query/stream",
            &format!(r#"{{"target":"eta:0.5","query":{}}}"#, nyc_hotels_json()),
        )
        .unwrap();
    assert_eq!(streamed.status, 200, "{}", streamed.body);
    let last = parse_json(streamed.body.lines().last().unwrap()).unwrap();
    assert!(last.get("eta").and_then(Json::as_f64).unwrap() >= 0.5);

    // prepared answers are budget-denominated only: targets get a clear 400
    let prepared = c
        .post(
            "/prepare",
            &Json::obj(vec![("query", nyc_hotels_json())]).to_string(),
        )
        .unwrap();
    let id = prepared
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_i64)
        .unwrap();
    let r = c
        .post(&format!("/prepared/{id}/answer"), r#"{"target":"eta:0.9"}"#)
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("not supported"), "{}", r.body);

    // metrics gained the slo object and it saw the traffic
    let metrics = c.get("/metrics").unwrap().json().unwrap();
    let slo = metrics
        .get("slo")
        .expect("metrics must carry an slo object");
    assert!(slo.get("fingerprints").and_then(Json::as_i64).unwrap() >= 1);
    assert!(slo.get("observations").and_then(Json::as_i64).unwrap() >= 10);
    assert!(slo.get("settlements").and_then(Json::as_i64).unwrap() >= 2);
    assert!(slo
        .get("mean_abs_spend_error")
        .and_then(Json::as_f64)
        .is_some());
    server.shutdown();
}

#[test]
fn oversized_responses_get_413_with_a_stream_hint() {
    let engine = engine(500);
    let server = start(
        Arc::clone(&engine),
        ServeConfig::default()
            .tenant("t", open_tenant())
            .default_tenant("t")
            // far below any real answer body
            .max_response_bytes(64),
    );
    let mut c = client(&server);

    let r = c
        .post(
            "/query",
            &query_body(None, ResourceSpec::FULL, &nyc_hotels_json()),
        )
        .unwrap();
    assert_eq!(r.status, 413, "{}", r.body);
    assert!(
        r.body.contains("/query/stream"),
        "the 413 must hint at the streamed route: {}",
        r.body
    );

    // the streamed route itself is exempt: frames are chunked, never one body
    let streamed = c
        .post(
            "/query/stream",
            &query_body(None, ResourceSpec::FULL, &nyc_hotels_json()),
        )
        .unwrap();
    assert_eq!(streamed.status, 200);
    assert!(streamed.body.lines().count() >= 2);

    // metrics surface the shared plan cache
    let metrics = c.get("/metrics").unwrap().json().unwrap();
    let engine_stats = metrics.get("engine").unwrap();
    assert!(
        engine_stats
            .get("plan_cache_capacity")
            .and_then(Json::as_i64)
            .unwrap()
            > 0
    );
    assert!(
        engine_stats
            .get("plan_cache_size")
            .and_then(Json::as_i64)
            .unwrap()
            >= 1
    );
    server.shutdown();
}
