//! Budget-proportional split of a plan's resolved tuple budget across shards.
//!
//! The coordinator resolves a query's budget once (`B = max(budget, tariff)`,
//! exactly what a single node enforces) and splits it so that:
//!
//! 1. every shard receives **at least the tariff of the plan nodes it owns**
//!    — a shard whose proportional share would round to 0 tuples still gets
//!    enough budget to contribute its exact small levels (the rounding bug
//!    class where tiny partitions silently return nothing);
//! 2. the remaining slack `B − tariff(ξ_α)` is distributed in proportion to
//!    shard fragment (partition) sizes by the **largest-remainder method**,
//!    so the integer shares always sum to exactly `B` — no tuple of the
//!    resolved budget is lost to rounding, none is minted.
//!
//! Since a node's actual fetch can never exceed its estimated tariff (the
//! estimate upper-bounds keys × `N` and caps at the level's stored tuples),
//! a shard enforcing its share can never trip its budget while executing the
//! plan a single node could execute under `B`.

use beas_access::Catalog;
use beas_core::BoundedPlan;

use crate::error::{ClusterError, Result};

/// The resolved budget split of one plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetSplit {
    /// The total the shares sum to: `max(plan.budget, plan.tariff)` — the
    /// same number a single node enforces for this plan.
    pub resolved: usize,
    /// Per-shard estimated tariff of the plan nodes the shard owns.
    pub tariffs: Vec<usize>,
    /// Per-shard budget share (`tariffs[s] ≤ shares[s]`, `Σ shares = resolved`).
    pub shares: Vec<usize>,
}

/// Splits `plan`'s resolved budget across `weights.len()` shards.
///
/// `family_owner[f]` is the shard owning family `f`; `weights[s]` is shard
/// `s`'s fragment size (its partition's tuple count), steering how slack
/// beyond the plan tariff is allocated. All-zero weights fall back to equal
/// weighting.
pub fn split_budget(
    plan: &BoundedPlan,
    catalog: &Catalog,
    family_owner: &[usize],
    weights: &[usize],
) -> Result<BudgetSplit> {
    let shards = weights.len();
    if shards == 0 {
        return Err(ClusterError::Config("no shards to split over".to_string()));
    }
    let resolved = plan.budget.max(plan.tariff);
    let mut tariffs = vec![0usize; shards];
    for node in &plan.fetch.nodes {
        let owner = family_owner.get(node.family).copied().ok_or_else(|| {
            ClusterError::Config(format!("family {} has no owning shard", node.family))
        })?;
        if owner >= shards {
            return Err(ClusterError::Config(format!(
                "family {} owned by shard {owner} of {shards}",
                node.family
            )));
        }
        tariffs[owner] = tariffs[owner].saturating_add(plan.fetch.node_tariff(catalog, node.id)?);
    }
    let total_tariff: usize = tariffs.iter().fold(0usize, |a, &t| a.saturating_add(t));
    let slack = resolved.saturating_sub(total_tariff);
    let slack_shares = largest_remainder(slack, weights);
    let shares: Vec<usize> = tariffs
        .iter()
        .zip(&slack_shares)
        .map(|(&t, &s)| t + s)
        .collect();
    Ok(BudgetSplit {
        resolved,
        tariffs,
        shares,
    })
}

/// Integer apportionment of `total` over `weights` by the largest-remainder
/// method: exact quotas are floored, then the leftover units go to the
/// largest fractional remainders (ties to the lower index), so the result
/// always sums to exactly `total` and is deterministic.
fn largest_remainder(total: usize, weights: &[usize]) -> Vec<usize> {
    let n = weights.len();
    let weight_sum: u128 = weights.iter().map(|&w| w as u128).sum();
    // all-zero weights: apportion over equal weights instead
    let ones = vec![1usize; n];
    let (weights, weight_sum) = if weight_sum == 0 {
        (&ones[..], n as u128)
    } else {
        (weights, weight_sum)
    };
    let mut shares = vec![0usize; n];
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(n);
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let numerator = total as u128 * w as u128;
        shares[i] = (numerator / weight_sum) as usize;
        assigned += shares[i];
        remainders.push((numerator % weight_sum, i));
    }
    // hand the leftover units to the largest remainders, lowest index first
    // on ties — deterministic, and leftover < n by construction
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for k in 0..total - assigned {
        shares[remainders[k].1] += 1;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn largest_remainder_sums_exactly_for_awkward_totals() {
        for total in [0usize, 1, 7, 99, 100, 101, 1000003] {
            for weights in [
                vec![1usize, 1, 1],
                vec![3, 1, 0],
                vec![0, 0, 0],
                vec![999_999, 1, 1],
                vec![2],
            ] {
                let shares = largest_remainder(total, &weights);
                assert_eq!(
                    shares.iter().sum::<usize>(),
                    total,
                    "total={total} weights={weights:?} shares={shares:?}"
                );
            }
        }
    }

    #[test]
    fn largest_remainder_is_proportional_and_deterministic() {
        let shares = largest_remainder(10, &[5, 3, 2]);
        assert_eq!(shares, vec![5, 3, 2]);
        // 7 over [1,1,1]: 2+2+2 floored, leftover 1 goes to the lowest index
        // (all remainders equal)
        assert_eq!(largest_remainder(7, &[1, 1, 1]), vec![3, 2, 2]);
    }
}
