//! The coordinator ↔ shard wire protocol, reusing `beas-serve`'s wire module
//! (the same JSON query/relation/value encoding the HTTP front-end speaks).
//!
//! Four operations, all request/response JSON objects tagged by `"op"`:
//!
//! * `open` — `{op, session, budget, share, threads, min_shard_rows, query}`:
//!   the shard plans the query itself against its copy of the cluster
//!   catalog (planning is deterministic, so no plan ever crosses the wire)
//!   and answers `{ok, shard, tariff, nodes, leaves}` — the coordinator
//!   cross-checks these against its own plan.
//! * `fetch` — `{op, session, node, keys}`: run one fetch node's lookup
//!   against the shard's partition under its budget share; answers
//!   `{ok, relation, billed, fetches, fetched_tuples, reused_tuples}` — the
//!   fragment plus the shard's running step accounting, so the coordinator
//!   always holds last-known-good numbers should the shard die later.
//!   A `fetch` retried after a lost response is served from the session's
//!   per-step ledger without re-billing, so delivery is effectively
//!   exactly-once for accounting purposes.
//! * `leaf` — `{op, session, leaf}`: evaluate one SPC leaf whose atoms all
//!   live on this shard; answers `{ok, relation, out_res, exact}` — the
//!   canonical leaf result plus its η contribution (per-output resolutions).
//! * `stats` / `close` — `{op, session}`: the shard's access accounting
//!   (`{ok, accessed, fetches, fetched_tuples, reused_tuples}`); `close`
//!   additionally drops the session.
//!
//! Failed responses are `{ok: false, error}` with an optional
//! machine-readable `code` ([`err_response_code`]); [`NO_SESSION`] signals
//! an unknown/evicted session token, which the coordinator heals by
//! re-opening the session on that shard.

use beas_relal::Value;
use beas_serve::{value_from_json, value_to_json, Json};

use crate::error::{ClusterError, Result};

/// Builds an `open` request.
pub fn open_request(
    session: u64,
    query: &Json,
    budget: usize,
    share: usize,
    threads: usize,
    min_shard_rows: usize,
) -> Json {
    Json::obj(vec![
        ("op", Json::Str("open".to_string())),
        ("session", Json::Int(session as i64)),
        ("budget", Json::Int(budget as i64)),
        ("share", Json::Int(share as i64)),
        ("threads", Json::Int(threads as i64)),
        ("min_shard_rows", Json::Int(min_shard_rows as i64)),
        ("query", query.clone()),
    ])
}

/// Builds a `fetch` request.
pub fn fetch_request(session: u64, node: usize, keys: &[Vec<Value>]) -> Json {
    Json::obj(vec![
        ("op", Json::Str("fetch".to_string())),
        ("session", Json::Int(session as i64)),
        ("node", Json::Int(node as i64)),
        ("keys", keys_to_json(keys)),
    ])
}

/// Builds a `leaf` request.
pub fn leaf_request(session: u64, leaf: usize) -> Json {
    Json::obj(vec![
        ("op", Json::Str("leaf".to_string())),
        ("session", Json::Int(session as i64)),
        ("leaf", Json::Int(leaf as i64)),
    ])
}

/// Builds a `stats` (`close: false`) or `close` request.
pub fn stats_request(session: u64, close: bool) -> Json {
    Json::obj(vec![
        (
            "op",
            Json::Str(if close { "close" } else { "stats" }.to_string()),
        ),
        ("session", Json::Int(session as i64)),
    ])
}

/// Encodes a fetch key list (values use the wire value encoding, so float
/// keys — including non-finite ones — round-trip bit-for-bit).
pub fn keys_to_json(keys: &[Vec<Value>]) -> Json {
    Json::Arr(
        keys.iter()
            .map(|k| Json::Arr(k.iter().map(value_to_json).collect()))
            .collect(),
    )
}

/// Decodes a fetch key list.
pub fn keys_from_json(v: &Json) -> Result<Vec<Vec<Value>>> {
    let rows = v
        .as_arr()
        .ok_or_else(|| ClusterError::Wire("keys must be an array".to_string()))?;
    rows.iter()
        .map(|row| {
            let cells = row
                .as_arr()
                .ok_or_else(|| ClusterError::Wire("each key must be an array".to_string()))?;
            cells
                .iter()
                .map(|c| value_from_json(c).map_err(ClusterError::from))
                .collect()
        })
        .collect()
}

/// Encodes a per-output resolution vector (η contributions). Resolutions are
/// plain `f64`s but may be `+∞` for positions a plan cannot bound, so they
/// ride the tagged value encoding rather than bare JSON numbers.
pub fn resolutions_to_json(res: &[f64]) -> Json {
    Json::Arr(
        res.iter()
            .map(|&r| value_to_json(&Value::Double(r)))
            .collect(),
    )
}

/// Decodes a per-output resolution vector.
pub fn resolutions_from_json(v: &Json) -> Result<Vec<f64>> {
    let arr = v
        .as_arr()
        .ok_or_else(|| ClusterError::Wire("out_res must be an array".to_string()))?;
    arr.iter()
        .map(|c| match value_from_json(c).map_err(ClusterError::from)? {
            Value::Double(d) => Ok(d),
            Value::Int(i) => Ok(i as f64),
            other => Err(ClusterError::Wire(format!(
                "resolution must be numeric, got {other:?}"
            ))),
        })
        .collect()
}

/// Wraps response fields in `{ok: true, ...}`.
pub fn ok_response(mut fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.append(&mut fields);
    Json::obj(all)
}

/// Builds an `{ok: false, error}` response.
pub fn err_response(message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}

/// The machine-readable error code a shard answers for an unknown session
/// token (evicted, or the shard restarted): the coordinator reacts by
/// re-sending `open` for the same session and retrying, re-establishing
/// session affinity instead of failing the query.
pub const NO_SESSION: &str = "no_session";

/// Builds an `{ok: false, error, code}` response — like [`err_response`] but
/// with a machine-readable code (e.g. [`NO_SESSION`]) the coordinator can
/// dispatch on without parsing prose.
pub fn err_response_code(message: &str, code: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
        ("code", Json::Str(code.to_string())),
    ])
}

/// The machine-readable error code of a failed response, if any.
pub fn error_code(response: &Json) -> Option<&str> {
    match response.get("ok").and_then(Json::as_bool) {
        Some(true) => None,
        _ => response.get("code").and_then(Json::as_str),
    }
}

/// Checks a response's `ok` flag, surfacing the shard's error message.
pub fn expect_ok(response: &Json) -> Result<()> {
    match response.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(()),
        _ => Err(ClusterError::Protocol(
            response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("shard response missing ok flag")
                .to_string(),
        )),
    }
}

/// Reads a required non-negative integer field.
pub fn req_usize(v: &Json, field: &str) -> Result<usize> {
    v.get(field)
        .and_then(Json::as_i64)
        .filter(|&n| n >= 0)
        .map(|n| n as usize)
        .ok_or_else(|| ClusterError::Wire(format!("missing or bad field `{field}`")))
}

/// Reads a required field.
pub fn req_field<'a>(v: &'a Json, field: &str) -> Result<&'a Json> {
    v.get(field)
        .ok_or_else(|| ClusterError::Wire(format!("missing field `{field}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beas_serve::parse_json;

    #[test]
    fn keys_round_trip_through_text_including_non_finite_floats() {
        let keys = vec![
            vec![Value::Int(3), Value::from("hotel")],
            vec![Value::Double(f64::NAN), Value::Double(f64::NEG_INFINITY)],
            vec![Value::Null, Value::Double(-0.0)],
        ];
        let text = keys_to_json(&keys).to_string();
        let back = keys_from_json(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], keys[0]);
        match (&back[1][0], &back[1][1]) {
            (Value::Double(a), Value::Double(b)) => {
                assert!(a.is_nan());
                assert_eq!(*b, f64::NEG_INFINITY);
            }
            other => panic!("bad floats: {other:?}"),
        }
        match &back[2][1] {
            Value::Double(z) => assert!(z.is_sign_negative() && *z == 0.0),
            other => panic!("bad -0.0: {other:?}"),
        }
    }

    #[test]
    fn resolutions_round_trip_and_reject_non_numeric() {
        let res = [0.0, 1.5, f64::INFINITY];
        let text = resolutions_to_json(&res).to_string();
        let back = resolutions_from_json(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(back, vec![0.0, 1.5, f64::INFINITY]);
        assert!(resolutions_from_json(&parse_json(r#"["x"]"#).unwrap()).is_err());
    }

    #[test]
    fn ok_and_error_responses_are_distinguished() {
        assert!(expect_ok(&ok_response(vec![("tariff", Json::Int(3))])).is_ok());
        let err = expect_ok(&err_response("no such session")).unwrap_err();
        assert!(err.to_string().contains("no such session"));
        assert!(expect_ok(&parse_json("{}").unwrap()).is_err());
    }
}
