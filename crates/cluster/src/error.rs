//! Error type of the cluster layer.
//!
//! Transport-level failures carry **per-shard context** — which shard, how
//! many attempts, elapsed time versus the deadline — so a partial-failure
//! cause is diagnosable from the coordinator's error alone, without shard
//! logs. [`ClusterError::is_retryable`] is the single classification the
//! retry driver consults.

use std::fmt;
use std::time::Duration;

use beas_core::BeasError;
use beas_serve::WireError;

/// Anything that can go wrong between a coordinator and its shards.
#[derive(Debug)]
pub enum ClusterError {
    /// An engine-side failure (planning, execution, budget enforcement).
    Engine(BeasError),
    /// A malformed wire message (query, relation or value encoding).
    Wire(String),
    /// A protocol violation: a shard answered something the coordinator did
    /// not expect (missing field, divergent plan, unknown session).
    Protocol(String),
    /// A bad cluster configuration (zero shards, unknown relation in a
    /// constraint spec).
    Config(String),
    /// An I/O failure of the metrics endpoint.
    Io(std::io::Error),
    /// One call to one shard failed at the transport layer (connect, send or
    /// receive) — retryable.
    Transport {
        /// The shard the call targeted.
        shard: usize,
        /// What the transport reported.
        message: String,
    },
    /// One call to one shard exceeded its deadline — retryable while overall
    /// time remains.
    Timeout {
        /// The shard the call targeted.
        shard: usize,
        /// Time spent before giving up.
        elapsed: Duration,
        /// The per-call deadline that was exceeded.
        deadline: Duration,
    },
    /// A shard exhausted its retry budget (terminal): the full per-shard
    /// context of the failed exchange.
    ShardFailed(Box<ShardFailure>),
}

/// The context of a shard giving up: everything the retry driver knew when it
/// stopped.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// The shard that failed.
    pub shard: usize,
    /// The protocol op the failed exchange carried (`open`, `fetch`, …).
    pub op: String,
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Wall-clock time spent across all attempts.
    pub elapsed: Duration,
    /// The overall deadline the retries ran under.
    pub deadline: Duration,
    /// The last per-attempt error observed.
    pub last_error: String,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} `{}` failed after {} attempt(s) in {:.1?} (deadline {:.1?}): {}",
            self.shard, self.op, self.attempts, self.elapsed, self.deadline, self.last_error
        )
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Engine(e) => write!(f, "engine error: {e}"),
            ClusterError::Wire(msg) => write!(f, "wire error: {msg}"),
            ClusterError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClusterError::Config(msg) => write!(f, "config error: {msg}"),
            ClusterError::Io(e) => write!(f, "io error: {e}"),
            ClusterError::Transport { shard, message } => {
                write!(f, "transport error (shard {shard}): {message}")
            }
            ClusterError::Timeout {
                shard,
                elapsed,
                deadline,
            } => write!(
                f,
                "timeout (shard {shard}): {elapsed:.1?} elapsed of {deadline:.1?} deadline"
            ),
            ClusterError::ShardFailed(failure) => write!(f, "{failure}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Engine(e) => Some(e),
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl ClusterError {
    /// Whether a retry of the same call could succeed. Transport failures,
    /// timeouts and garbled wire payloads are transient; engine, protocol
    /// and configuration errors are deterministic and final.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClusterError::Transport { .. }
                | ClusterError::Timeout { .. }
                | ClusterError::Wire(_)
                | ClusterError::Io(_)
        )
    }
}

impl From<BeasError> for ClusterError {
    fn from(e: BeasError) -> Self {
        ClusterError::Engine(e)
    }
}

impl From<beas_access::AccessError> for ClusterError {
    fn from(e: beas_access::AccessError) -> Self {
        ClusterError::Engine(BeasError::from(e))
    }
}

impl From<WireError> for ClusterError {
    fn from(e: WireError) -> Self {
        ClusterError::Wire(e.to_string())
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// Cluster result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;
