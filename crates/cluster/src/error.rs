//! Error type of the cluster layer.

use std::fmt;

use beas_core::BeasError;
use beas_serve::WireError;

/// Anything that can go wrong between a coordinator and its shards.
#[derive(Debug)]
pub enum ClusterError {
    /// An engine-side failure (planning, execution, budget enforcement).
    Engine(BeasError),
    /// A malformed wire message (query, relation or value encoding).
    Wire(String),
    /// A protocol violation: a shard answered something the coordinator did
    /// not expect (missing field, divergent plan, unknown session).
    Protocol(String),
    /// A bad cluster configuration (zero shards, unknown relation in a
    /// constraint spec).
    Config(String),
    /// An I/O failure of the metrics endpoint.
    Io(std::io::Error),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Engine(e) => write!(f, "engine error: {e}"),
            ClusterError::Wire(msg) => write!(f, "wire error: {msg}"),
            ClusterError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClusterError::Config(msg) => write!(f, "config error: {msg}"),
            ClusterError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Engine(e) => Some(e),
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BeasError> for ClusterError {
    fn from(e: BeasError) -> Self {
        ClusterError::Engine(e)
    }
}

impl From<beas_access::AccessError> for ClusterError {
    fn from(e: beas_access::AccessError) -> Self {
        ClusterError::Engine(BeasError::from(e))
    }
}

impl From<WireError> for ClusterError {
    fn from(e: WireError) -> Self {
        ClusterError::Wire(e.to_string())
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// Cluster result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;
