//! The cluster coordinator: query-facing API, catalog assembly, and the
//! scatter-gather driver.
//!
//! [`ClusterBuilder::build`] partitions the database round-robin by relation,
//! builds one full [`Beas`] engine per shard over its partition (offline
//! component C1 runs where the data is), then assembles the **cluster
//! catalog**: the shards' template families, `Arc`-shared, re-registered in
//! the exact order a single node building over the whole database would
//! produce — `A_t` families in schema order, then each constraint's families
//! in registration order. Planning over that catalog is therefore
//! *identical* to single-node planning, which is what makes shard-side
//! self-planning (no plan serialization) and bit-for-bit answer equality
//! possible.
//!
//! [`ClusterHandle::answer`] then drives one scatter-gather execution:
//! budget split (tariff floor + largest-remainder slack, see
//! [`crate::budget`]), per-node fetches routed to the owning shard,
//! shard-local evaluation of single-shard leaves, coordinator-side
//! evaluation of cross-shard leaves over the gathered fragments, and a
//! deterministic merge through the same composition the single-node
//! executor uses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use beas_access::{AtOptions, BudgetPolicy, Catalog};
use beas_core::{
    calibrated_min_shard_rows, compose_plan_answer, evaluate_plan_leaf, node_keys, Beas,
    BeasAnswer, BeasQuery, BoundedPlan, ConstraintSpec, ExecOptions, ExecState, ExecutionOutcome,
    LeafEval, LeafPlan, PlanFragments, Planner, RefinementSchedule, ResourceSpec,
};
use beas_relal::{Database, DatabaseSchema};
use beas_serve::{query_from_json, query_to_json, relation_from_json, Json};

use crate::budget::split_budget;
use crate::error::{ClusterError, Result};
use crate::metrics::{serve_metrics, ClusterMetrics, MetricsServer};
use crate::partition::Partitioning;
use crate::protocol;
use crate::shard::ShardNode;
use crate::transport::{InProcessTransport, ShardTransport};

/// Builds a cluster: N shard engines over a relation partitioning plus the
/// coordinator handle.
#[derive(Debug)]
pub struct ClusterBuilder {
    db: Database,
    shards: usize,
    constraints: Vec<ConstraintSpec>,
    threads: Option<usize>,
    min_shard_rows: Option<usize>,
    policy: BudgetPolicy,
    options: AtOptions,
}

impl ClusterBuilder {
    /// A builder over `db` with `shards` shard nodes.
    pub fn new(db: Database, shards: usize) -> Self {
        ClusterBuilder {
            db,
            shards,
            constraints: Vec::new(),
            threads: None,
            min_shard_rows: None,
            policy: BudgetPolicy::default(),
            options: AtOptions::default(),
        }
    }

    /// Registers an access constraint (owned by the shard owning its
    /// relation).
    pub fn constraint(mut self, spec: ConstraintSpec) -> Self {
        self.constraints.push(spec);
        self
    }

    /// Registers several constraints in order.
    pub fn constraints<I: IntoIterator<Item = ConstraintSpec>>(mut self, specs: I) -> Self {
        self.constraints.extend(specs);
        self
    }

    /// Per-shard execution threads (defaults to available parallelism, like
    /// a single-node engine).
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Minimum sharded-atom size for parallel leaf evaluation (propagated to
    /// every shard so all nodes evaluate identically).
    pub fn min_shard_rows(mut self, rows: usize) -> Self {
        self.min_shard_rows = Some(rows.max(1));
        self
    }

    /// The cluster-wide budget policy.
    pub fn budget_policy(mut self, policy: BudgetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Access-template build options (propagated to every shard).
    pub fn at_options(mut self, options: AtOptions) -> Self {
        self.options = options;
        self
    }

    /// Builds the shard engines, assembles the cluster catalog and returns
    /// the coordinator handle (in-process transport).
    pub fn build(self) -> Result<ClusterHandle> {
        let schema = self.db.schema.clone();
        let total_tuples = self.db.total_tuples();
        let partitioning = Partitioning::round_robin(&schema, self.shards)?;
        let threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let min_shard_rows = self
            .min_shard_rows
            .unwrap_or_else(calibrated_min_shard_rows);

        // offline C1, per shard: a full engine over the shard's partition,
        // with the constraints whose relations it owns (registration order
        // preserved within each shard)
        let mut engines: Vec<Beas> = Vec::with_capacity(self.shards);
        let mut partition_sizes: Vec<usize> = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let sub = partitioning.sub_database(&self.db, shard)?;
            partition_sizes.push(sub.total_tuples());
            let mut owned_specs: Vec<ConstraintSpec> = Vec::new();
            for spec in &self.constraints {
                if partitioning.owner_of(&schema, &spec.relation)? == shard {
                    owned_specs.push(spec.clone());
                }
            }
            engines.push(
                Beas::builder(sub)
                    .constraints(owned_specs)
                    .num_threads(threads)
                    .min_shard_rows(min_shard_rows)
                    .budget_policy(self.policy)
                    .at_options(self.options.clone())
                    .build()?,
            );
        }

        // assemble the cluster catalog in canonical single-node order,
        // Arc-sharing each shard's families, and record family ownership
        let shard_catalogs: Vec<Arc<Catalog>> = engines.iter().map(|e| e.catalog()).collect();
        let mut catalog = Catalog::new(schema.clone(), total_tuples);
        catalog.policy = self.policy;
        let mut family_owner: Vec<usize> = Vec::new();
        // A_t families, one per relation in schema order
        for (rel_idx, rel) in schema.relations.iter().enumerate() {
            let shard = partitioning.owner_of_relation(rel_idx)?;
            let fid = shard_catalogs[shard]
                .at_family_for(&rel.name)
                .ok_or_else(|| {
                    ClusterError::Config(format!(
                        "shard {shard} built no A_t family for `{}`",
                        rel.name
                    ))
                })?;
            catalog.add_family_arc(Arc::clone(shard_catalogs[shard].family_arc(fid)?));
            family_owner.push(shard);
        }
        // constraint families in registration order; each shard's catalog
        // lists its spec families after its A_t block, in the same order
        let mut cursors: Vec<usize> = (0..self.shards)
            .map(|s| partitioning.owned_relations(s).len())
            .collect();
        for spec in &self.constraints {
            let shard = partitioning.owner_of(&schema, &spec.relation)?;
            for _ in 0..families_per_spec(&schema, spec)? {
                let fid = cursors[shard];
                cursors[shard] += 1;
                catalog.add_family_arc(Arc::clone(shard_catalogs[shard].family_arc(fid)?));
                family_owner.push(shard);
            }
        }
        debug_assert_eq!(
            catalog.len(),
            shard_catalogs.iter().map(|c| c.len()).sum::<usize>()
        );

        let catalog = Arc::new(catalog);
        let nodes: Vec<Arc<ShardNode>> = engines
            .into_iter()
            .enumerate()
            .map(|(shard, engine)| {
                let owned: Vec<bool> = family_owner.iter().map(|&o| o == shard).collect();
                Arc::new(ShardNode::new(shard, engine, Arc::clone(&catalog), owned))
            })
            .collect();
        let metrics = Arc::new(ClusterMetrics::new(self.shards));
        let transport: Arc<dyn ShardTransport> = Arc::new(InProcessTransport::new(nodes.clone()));
        Ok(ClusterHandle {
            catalog,
            nodes,
            transport,
            family_owner,
            partition_sizes,
            threads,
            min_shard_rows,
            metrics,
            next_session: AtomicU64::new(1),
        })
    }
}

/// Number of families `BeasBuilder::build` derives from one constraint spec:
/// the constraint itself, plus (when extending) the multi-resolution
/// template on `X → Y` and — if attributes remain — the derived template on
/// `X ∪ Y → rest`.
fn families_per_spec(schema: &DatabaseSchema, spec: &ConstraintSpec) -> Result<usize> {
    if !spec.extend {
        return Ok(1);
    }
    let rel = schema
        .relation(&spec.relation)
        .map_err(beas_core::BeasError::from)?;
    let rest = rel
        .attr_names()
        .into_iter()
        .any(|a| !spec.x.contains(&a) && !spec.y.contains(&a));
    Ok(if rest { 3 } else { 2 })
}

/// This step's accounting, gathered from the shards.
#[derive(Debug, Clone, Copy, Default)]
struct StepStats {
    /// Tuples billed against this step's shares (fresh + reused).
    accessed: usize,
    /// Fetch operations executed this step.
    fetches: usize,
    /// Cumulative tuples materialized by the shards' session states.
    fetched_cum: usize,
    /// Cumulative tuples served from the shards' session states.
    reused_cum: usize,
}

/// The query-facing handle of a cluster: scatter-gather answering with the
/// single-node answer contract (see the crate docs for the determinism
/// guarantee).
pub struct ClusterHandle {
    catalog: Arc<Catalog>,
    nodes: Vec<Arc<ShardNode>>,
    transport: Arc<dyn ShardTransport>,
    /// Cluster family id → owning shard.
    family_owner: Vec<usize>,
    /// Per-shard partition tuple counts (the slack-split weights).
    partition_sizes: Vec<usize>,
    threads: usize,
    min_shard_rows: usize,
    metrics: Arc<ClusterMetrics>,
    next_session: AtomicU64,
}

impl std::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterHandle")
            .field("shards", &self.nodes.len())
            .field("catalog_families", &self.catalog.len())
            .field("partition_sizes", &self.partition_sizes)
            .finish()
    }
}

impl ClusterHandle {
    /// Starts a cluster builder (round-robin relation partitioning over
    /// `shards` nodes).
    pub fn builder(db: Database, shards: usize) -> ClusterBuilder {
        ClusterBuilder::new(db, shards)
    }

    /// Number of shard nodes.
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// The shard nodes (in-process handles).
    pub fn nodes(&self) -> &[Arc<ShardNode>] {
        &self.nodes
    }

    /// The assembled cluster catalog (identical planning surface to a single
    /// node over the whole database).
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The cluster schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.catalog.schema
    }

    /// Per-shard partition sizes (tuples).
    pub fn partition_sizes(&self) -> &[usize] {
        &self.partition_sizes
    }

    /// Coordinator metrics (per-shard allocation/latency, merge time).
    pub fn metrics(&self) -> &Arc<ClusterMetrics> {
        &self.metrics
    }

    /// Serves [`ClusterMetrics`] under `GET /metrics` on `bind`.
    pub fn serve_metrics(&self, bind: &str) -> Result<MetricsServer> {
        serve_metrics(Arc::clone(&self.metrics), bind)
    }

    /// Answers `query` under `spec` with one scatter-gather execution.
    ///
    /// Bit-for-bit equal — relation, η, `accessed`, the lot — to
    /// [`Beas::answer`] on a single node holding the whole database, at the
    /// same total budget.
    pub fn answer(&self, query: &BeasQuery, spec: ResourceSpec) -> Result<BeasAnswer> {
        let (qjson, normalized) = self.normalize(query)?;
        let budget = self.catalog.budget(&spec)?;
        if budget == 0 {
            // zero budget: no plan may access any tuple — the canonical
            // empty answer, exactly like a single node
            return Ok(BeasAnswer::empty(normalized.output_columns()));
        }
        let plan = Planner::new(&self.catalog).plan_with_budget(&normalized, budget)?;
        let session = self.next_session.fetch_add(1, Ordering::Relaxed);
        let mut state = ExecState::new();
        let result = self.run_step(session, &qjson, &plan, &mut state);
        self.close_all(session);
        result.map(|(answer, _)| answer)
    }

    /// Opens a progressive refinement session over `schedule`: each step
    /// answers at the next budget, reusing fragments fetched by earlier
    /// steps on every shard — the distributed counterpart of
    /// [`beas_core::AnswerSession`].
    pub fn session(
        &self,
        query: &BeasQuery,
        schedule: RefinementSchedule,
    ) -> Result<ClusterSession<'_>> {
        let (qjson, normalized) = self.normalize(query)?;
        let mut steps: Vec<(ResourceSpec, usize)> = Vec::with_capacity(schedule.len());
        for &spec in schedule.specs() {
            let budget = self.catalog.budget(&spec)?;
            if budget == 0 {
                return Err(ClusterError::Config(format!(
                    "refinement schedule step {spec} resolves to a zero budget"
                )));
            }
            match steps.last_mut() {
                Some((last_spec, last_budget)) if *last_budget == budget => *last_spec = spec,
                Some((_, last_budget)) if budget < *last_budget => {
                    return Err(ClusterError::Config(format!(
                        "refinement schedule budgets must not decrease: \
                         {spec} resolves to {budget} after {last_budget}"
                    )));
                }
                _ => steps.push((spec, budget)),
            }
        }
        Ok(ClusterSession {
            handle: self,
            qjson,
            query: normalized,
            steps,
            state: ExecState::new(),
            session: self.next_session.fetch_add(1, Ordering::Relaxed),
            next: 0,
            last_reused_cum: 0,
        })
    }

    /// Canonicalises a query by a round-trip through the wire encoding: the
    /// form the coordinator plans is byte-identical to the form every shard
    /// decodes, so self-planned shard plans can never diverge on query
    /// representation.
    fn normalize(&self, query: &BeasQuery) -> Result<(Json, BeasQuery)> {
        let qjson = query_to_json(query, &self.catalog.schema)?;
        let normalized = query_from_json(&qjson, &self.catalog.schema)?;
        normalized
            .validate(&self.catalog.schema)
            .map_err(ClusterError::from)?;
        Ok((qjson, normalized))
    }

    /// One scatter-gather execution of `plan` under session `session`.
    fn run_step(
        &self,
        session: u64,
        qjson: &Json,
        plan: &BoundedPlan,
        state: &mut ExecState,
    ) -> Result<(BeasAnswer, StepStats)> {
        let split = split_budget(
            plan,
            &self.catalog,
            &self.family_owner,
            &self.partition_sizes,
        )?;
        self.metrics
            .record_allocation(&split.shares, &split.tariffs);

        // open every shard: each plans the query for itself and must land on
        // the coordinator's plan (cross-checked by shape)
        for shard in 0..self.shards() {
            let request = protocol::open_request(
                session,
                qjson,
                plan.budget,
                split.shares[shard],
                self.threads,
                self.min_shard_rows,
            );
            let response = self.call(shard, &request)?;
            let tariff = protocol::req_usize(&response, "tariff")?;
            let nodes = protocol::req_usize(&response, "nodes")?;
            let leaves = protocol::req_usize(&response, "leaves")?;
            if tariff != plan.tariff
                || nodes != plan.fetch.nodes.len()
                || leaves != plan.leaves.len()
            {
                return Err(ClusterError::Protocol(format!(
                    "shard {shard} planned divergently: tariff {tariff} vs {}, \
                     {nodes} nodes vs {}, {leaves} leaves vs {}",
                    plan.tariff,
                    plan.fetch.nodes.len(),
                    plan.leaves.len()
                )));
            }
        }

        // scatter: stream every fetch node from its owning shard, adopting
        // the returned fragments into the coordinator state (no re-billing —
        // the shard billed its share)
        let mut fragments = PlanFragments::for_plan(plan);
        for node in &plan.fetch.nodes {
            let keys = node_keys(node, &fragments)?;
            let owner = self.owner_of_family(node.family)?;
            let response = self.call(owner, &protocol::fetch_request(session, node.id, &keys))?;
            let rel = Arc::new(relation_from_json(protocol::req_field(
                &response, "relation",
            )?)?);
            let fragment = state.adopt_fragment(node.family, node.level, keys, Arc::clone(&rel));
            fragments.set(node.id, fragment, rel);
        }

        // gather: leaves whose atoms all live on one shard are evaluated
        // there (canonical leaf result + η contribution over the wire);
        // cross-shard leaves are evaluated here over the gathered fragments
        let options = ExecOptions::budgeted(split.resolved)
            .with_threads(self.threads)
            .with_min_shard_rows(self.min_shard_rows);
        let mut leaves: Vec<LeafEval> = Vec::with_capacity(plan.leaves.len());
        for (index, leaf_plan) in plan.leaves.iter().enumerate() {
            match self.sole_owner(plan, leaf_plan)? {
                Some(shard) => {
                    let response = self.call(shard, &protocol::leaf_request(session, index))?;
                    let rel = Arc::new(relation_from_json(protocol::req_field(
                        &response, "relation",
                    )?)?);
                    let out_res = protocol::resolutions_from_json(protocol::req_field(
                        &response, "out_res",
                    )?)?;
                    let exact = protocol::req_field(&response, "exact")?
                        .as_bool()
                        .ok_or_else(|| ClusterError::Wire("exact must be a bool".to_string()))?;
                    leaves.push(LeafEval {
                        rel,
                        out_res,
                        exact,
                    });
                }
                None => leaves.push(evaluate_plan_leaf(
                    index,
                    plan,
                    &self.catalog,
                    &fragments,
                    &options,
                    state,
                )?),
            }
        }

        // merge: deterministic composition, same path as a single node
        let merge_start = Instant::now();
        let (answers, eta) = compose_plan_answer(plan, &self.catalog, &leaves)?;
        self.metrics.record_merge(merge_start.elapsed());

        // accounting: the cluster accessed what its shards billed
        let mut stats = StepStats::default();
        for shard in 0..self.shards() {
            let response = self.call(shard, &protocol::stats_request(session, false))?;
            stats.accessed += protocol::req_usize(&response, "accessed")?;
            stats.fetches += protocol::req_usize(&response, "fetches")?;
            stats.fetched_cum += protocol::req_usize(&response, "fetched_tuples")?;
            stats.reused_cum += protocol::req_usize(&response, "reused_tuples")?;
        }
        let outcome = ExecutionOutcome {
            answers,
            eta,
            accessed: stats.accessed,
            fetches: stats.fetches,
        };
        Ok((BeasAnswer::from_execution(plan, outcome), stats))
    }

    /// One timed transport call, with `ok` checking.
    fn call(&self, shard: usize, request: &Json) -> Result<Json> {
        let start = Instant::now();
        let response = self.transport.call(shard, request)?;
        self.metrics.record_shard_call(shard, start.elapsed());
        protocol::expect_ok(&response)?;
        Ok(response)
    }

    fn owner_of_family(&self, family: usize) -> Result<usize> {
        self.family_owner
            .get(family)
            .copied()
            .ok_or_else(|| ClusterError::Config(format!("family {family} has no owning shard")))
    }

    /// The single shard owning every atom node of `leaf_plan`, if any.
    fn sole_owner(&self, plan: &BoundedPlan, leaf_plan: &LeafPlan) -> Result<Option<usize>> {
        let mut owner: Option<usize> = None;
        for &node in &leaf_plan.atom_nodes {
            let family = plan.fetch.node(node)?.family;
            let shard = self.owner_of_family(family)?;
            match owner {
                None => owner = Some(shard),
                Some(s) if s == shard => {}
                Some(_) => return Ok(None),
            }
        }
        Ok(owner)
    }

    /// Closes session `session` on every shard, ignoring per-shard errors
    /// (a shard that never opened it answers with a protocol error).
    fn close_all(&self, session: u64) {
        for shard in 0..self.shards() {
            let _ = self
                .transport
                .call(shard, &protocol::stats_request(session, true));
        }
    }
}

/// One step of a [`ClusterSession`]: the answer at this budget plus the
/// session's distributed accounting (mirrors
/// [`beas_core::RefinementStep`]).
#[derive(Debug, Clone)]
pub struct ClusterStep {
    /// The spec this step answered under.
    pub spec: ResourceSpec,
    /// The answer — bit-for-bit what a single-node session step returns.
    pub answer: BeasAnswer,
    /// The accuracy lower bound η of this step.
    pub eta: f64,
    /// The tuple budget this step's plan complied with.
    pub budget: usize,
    /// Cumulative tuples actually materialized across all shards up to and
    /// including this step.
    pub budget_spent: usize,
    /// Tuples this step served from shard session states instead of
    /// re-fetching.
    pub reused_tuples: usize,
    /// This step's position (1-based).
    pub step: usize,
    /// Total steps in the schedule.
    pub steps: usize,
}

/// A progressive refinement session against a cluster: shard `ExecState`s
/// stay open across steps, so refinement reuses fragments where they were
/// fetched. Dropping the session closes it on every shard.
pub struct ClusterSession<'h> {
    handle: &'h ClusterHandle,
    qjson: Json,
    query: BeasQuery,
    steps: Vec<(ResourceSpec, usize)>,
    state: ExecState,
    session: u64,
    next: usize,
    last_reused_cum: usize,
}

impl ClusterSession<'_> {
    /// The resolved `(spec, budget)` trajectory.
    pub fn trajectory(&self) -> &[(ResourceSpec, usize)] {
        &self.steps
    }

    /// Steps remaining.
    pub fn remaining(&self) -> usize {
        self.steps.len() - self.next
    }

    /// Runs the next step; `None` when the schedule is exhausted.
    pub fn next_step(&mut self) -> Option<Result<ClusterStep>> {
        if self.next >= self.steps.len() {
            return None;
        }
        let (spec, budget) = self.steps[self.next];
        self.next += 1;
        Some(self.run(spec, budget))
    }

    fn run(&mut self, spec: ResourceSpec, budget: usize) -> Result<ClusterStep> {
        let plan = Planner::new(&self.handle.catalog).plan_with_budget(&self.query, budget)?;
        let (answer, stats) =
            self.handle
                .run_step(self.session, &self.qjson, &plan, &mut self.state)?;
        let reused = stats.reused_cum.saturating_sub(self.last_reused_cum);
        self.last_reused_cum = stats.reused_cum;
        Ok(ClusterStep {
            spec,
            eta: answer.eta,
            budget: answer.budget,
            budget_spent: stats.fetched_cum,
            reused_tuples: reused,
            step: self.next,
            steps: self.steps.len(),
            answer,
        })
    }
}

impl Drop for ClusterSession<'_> {
    fn drop(&mut self) {
        self.handle.close_all(self.session);
    }
}

impl std::fmt::Debug for ClusterSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSession")
            .field("session", &self.session)
            .field("steps", &self.steps)
            .field("next", &self.next)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beas_relal::{
        AggFunc, Attribute, Database, DatabaseSchema, RelationSchema, SpcQueryBuilder, Value,
    };

    /// Three relations so a 3-shard cluster owns one each: people, pois and
    /// visits (the float column carries NaN and ±∞).
    fn demo_db() -> Database {
        let schema = DatabaseSchema::new(vec![
            RelationSchema::new(
                "person",
                vec![Attribute::categorical("city"), Attribute::int("age")],
            ),
            RelationSchema::new(
                "poi",
                vec![Attribute::categorical("city"), Attribute::int("stars")],
            ),
            RelationSchema::new(
                "visit",
                vec![Attribute::categorical("city"), Attribute::double("spend")],
            ),
        ]);
        let cities = ["nyc", "la", "chi", "bos"];
        let mut db = Database::new(schema);
        for i in 0..32i64 {
            db.insert_row(
                "person",
                vec![Value::from(cities[(i % 4) as usize]), Value::Int(20 + i)],
            )
            .unwrap();
        }
        for i in 0..40i64 {
            db.insert_row(
                "poi",
                vec![Value::from(cities[(i % 3) as usize]), Value::Int(i % 5)],
            )
            .unwrap();
        }
        for i in 0..28i64 {
            let spend = match i % 9 {
                7 => f64::NAN,
                8 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                _ => 10.0 + i as f64 * 0.5,
            };
            db.insert_row(
                "visit",
                vec![Value::from(cities[(i % 4) as usize]), Value::Double(spend)],
            )
            .unwrap();
        }
        db
    }

    fn single_atom_query(schema: &DatabaseSchema) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(schema);
        let p = b.atom("poi", "p").unwrap();
        b.bind_const(p, "city", "nyc").unwrap();
        b.output(p, "stars", "stars").unwrap();
        b.build().unwrap().into()
    }

    fn join_query(schema: &DatabaseSchema) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(schema);
        let p = b.atom("person", "p").unwrap();
        let q = b.atom("poi", "q").unwrap();
        b.join((p, "city"), (q, "city")).unwrap();
        b.output(p, "age", "age").unwrap();
        b.output(q, "stars", "stars").unwrap();
        b.build().unwrap().into()
    }

    fn sum_query(schema: &DatabaseSchema) -> BeasQuery {
        let mut b = SpcQueryBuilder::new(schema);
        let v = b.atom("visit", "v").unwrap();
        b.output(v, "city", "city").unwrap();
        b.output(v, "spend", "spend").unwrap();
        let inner = beas_core::RaQuery::Spc(b.build().unwrap());
        beas_core::AggQuery::new(
            inner,
            vec!["city".to_string()],
            AggFunc::Sum,
            "spend",
            "total",
        )
        .unwrap()
        .into()
    }

    fn cluster_and_single(shards: usize) -> (ClusterHandle, Beas) {
        let db = demo_db();
        let spec = ConstraintSpec::new("poi", &["city"], &["stars"]);
        let cluster = ClusterHandle::builder(db.clone(), shards)
            .constraint(spec.clone())
            .num_threads(2)
            .min_shard_rows(2)
            .build()
            .unwrap();
        let single = Beas::builder(db)
            .constraint(spec)
            .num_threads(2)
            .min_shard_rows(2)
            .build()
            .unwrap();
        (cluster, single)
    }

    fn assert_same(a: &BeasAnswer, b: &BeasAnswer) {
        assert_eq!(a.answers.digest(), b.answers.digest());
        assert_eq!(a.eta.to_bits(), b.eta.to_bits());
        assert_eq!(a.exact, b.exact);
        assert_eq!(a.accessed, b.accessed);
        assert_eq!(a.budget, b.budget);
    }

    #[test]
    fn cluster_catalog_mirrors_single_node_layout() {
        let (cluster, single) = cluster_and_single(3);
        assert_eq!(cluster.catalog().len(), single.catalog().len());
        for (c, s) in cluster
            .catalog()
            .families()
            .iter()
            .zip(single.catalog().families().iter())
        {
            assert_eq!(c.relation, s.relation);
            assert_eq!(c.levels.len(), s.levels.len());
        }
    }

    #[test]
    fn shard_local_and_cross_shard_leaves_match_single_node() {
        let (cluster, single) = cluster_and_single(3);
        for query in [
            single_atom_query(cluster.schema()),
            join_query(cluster.schema()),
            sum_query(cluster.schema()),
        ] {
            for spec in [
                ResourceSpec::Tuples(9),
                ResourceSpec::Ratio(0.3),
                ResourceSpec::FULL,
            ] {
                let a = cluster.answer(&query, spec).unwrap();
                let b = single.answer(&query, spec).unwrap();
                assert_same(&a, &b);
            }
        }
        // every shard session was closed again
        for node in cluster.nodes() {
            assert_eq!(node.open_sessions(), 0);
        }
    }

    #[test]
    fn zero_budget_yields_the_canonical_empty_answer() {
        let (cluster, single) = cluster_and_single(2);
        let query = join_query(cluster.schema());
        let a = cluster.answer(&query, ResourceSpec::Tuples(0)).unwrap();
        let b = single.answer(&query, ResourceSpec::Tuples(0)).unwrap();
        assert_eq!(a.answers.digest(), b.answers.digest());
        assert_eq!(a.answers.len(), 0);
        assert_eq!(a.eta.to_bits(), b.eta.to_bits());
        assert_eq!(a.accessed, 0);
    }

    #[test]
    fn cluster_session_mirrors_single_node_refinement() {
        let (cluster, single) = cluster_and_single(3);
        let query = join_query(cluster.schema());
        let schedule = RefinementSchedule::tuples(&[8, 24, 72]).unwrap();
        let mut cs = cluster.session(&query, schedule.clone()).unwrap();
        let prepared = single.prepare(&query).unwrap();
        let mut ss = prepared.session(schedule).unwrap();
        let mut steps = 0;
        while let Some(cstep) = cs.next_step() {
            let cstep = cstep.unwrap();
            let sstep = ss.next_step().unwrap().unwrap();
            assert_eq!(cstep.answer.answers.digest(), sstep.answer.answers.digest());
            assert_eq!(cstep.eta.to_bits(), sstep.eta.to_bits());
            assert_eq!(cstep.budget, sstep.budget);
            assert_eq!(cstep.budget_spent, sstep.budget_spent);
            assert_eq!(cstep.reused_tuples, sstep.reused_tuples);
            assert_eq!((cstep.step, cstep.steps), (sstep.step, sstep.steps));
            steps += 1;
        }
        assert!(ss.next_step().is_none());
        assert!(steps >= 2, "schedule should resolve to multiple steps");
        // later steps must actually have reused earlier fragments somewhere
        drop(cs);
        for node in cluster.nodes() {
            assert_eq!(node.open_sessions(), 0);
        }
    }

    #[test]
    fn shards_refuse_foreign_family_fetches() {
        let (cluster, _) = cluster_and_single(3);
        let query = single_atom_query(cluster.schema());
        let (qjson, normalized) = cluster.normalize(&query).unwrap();
        let budget = cluster.catalog().budget(&ResourceSpec::Ratio(0.3)).unwrap();
        let plan = Planner::new(cluster.catalog())
            .plan_with_budget(&normalized, budget)
            .unwrap();
        let owner = cluster.owner_of_family(plan.fetch.nodes[0].family).unwrap();
        let wrong = (owner + 1) % cluster.shards();
        let wrong_node = &cluster.nodes()[wrong];
        let open = wrong_node.handle(&protocol::open_request(99, &qjson, budget, 10, 1, 2));
        protocol::expect_ok(&open).unwrap();
        let fetch = wrong_node.handle(&protocol::fetch_request(99, plan.fetch.nodes[0].id, &[]));
        let err = protocol::expect_ok(&fetch).unwrap_err();
        assert!(err.to_string().contains("does not own"), "{err}");
    }

    #[test]
    fn metrics_capture_allocation_latency_and_merge() {
        let (cluster, _) = cluster_and_single(3);
        let query = join_query(cluster.schema());
        cluster.answer(&query, ResourceSpec::Ratio(0.4)).unwrap();
        let metrics = cluster.metrics();
        assert_eq!(metrics.queries(), 1);
        let json = metrics.to_json();
        let shards = json.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(shards.len(), 3);
        let share_sum: i64 = shards
            .iter()
            .map(|s| s.get("budget_last_share").and_then(Json::as_i64).unwrap())
            .sum();
        let budget = cluster.catalog().budget(&ResourceSpec::Ratio(0.4)).unwrap();
        let plan = Planner::new(cluster.catalog())
            .plan_with_budget(&query, budget)
            .unwrap();
        assert_eq!(share_sum as usize, plan.budget.max(plan.tariff));
        for s in shards {
            assert!(s.get("calls").and_then(Json::as_i64).unwrap() > 0);
        }
        let merge = json.get("merge").unwrap();
        assert_eq!(merge.get("count").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn tiny_shard_with_zero_proportional_share_still_serves_its_levels() {
        // shard 1 owns a 3-row relation next to shard 0's 400-row one: any
        // proportional split of a small budget rounds shard 1's share to
        // zero, so only the tariff floor lets it serve its exact levels
        let schema = DatabaseSchema::new(vec![
            RelationSchema::new(
                "big",
                vec![Attribute::categorical("city"), Attribute::int("v")],
            ),
            RelationSchema::new(
                "tiny",
                vec![Attribute::categorical("city"), Attribute::int("w")],
            ),
        ]);
        let mut db = Database::new(schema);
        for i in 0..400i64 {
            db.insert_row(
                "big",
                vec![Value::from(["a", "b"][(i % 2) as usize]), Value::Int(i)],
            )
            .unwrap();
        }
        for i in 0..3i64 {
            db.insert_row("tiny", vec![Value::from("a"), Value::Int(100 + i)])
                .unwrap();
        }
        let cluster = ClusterHandle::builder(db.clone(), 2).build().unwrap();
        let single = Beas::builder(db).build().unwrap();
        let mut b = SpcQueryBuilder::new(cluster.schema());
        let t = b.atom("tiny", "t").unwrap();
        b.bind_const(t, "city", "a").unwrap();
        b.output(t, "w", "w").unwrap();
        let query: BeasQuery = b.build().unwrap().into();
        let spec = ResourceSpec::Tuples(5);
        let a = cluster.answer(&query, spec).unwrap();
        let b = single.answer(&query, spec).unwrap();
        assert_same(&a, &b);
        assert!(!a.answers.is_empty(), "the tiny shard must have answered");
        // and the recorded split shows the rounding story: the proportional
        // share of shard 1 is 0, its tariff floor is not
        let plan = Planner::new(cluster.catalog())
            .plan_with_budget(&query, 5)
            .unwrap();
        let split = split_budget(
            &plan,
            cluster.catalog(),
            &(0..cluster.catalog().len())
                .map(|f| if cluster.nodes()[1].owns(f) { 1 } else { 0 })
                .collect::<Vec<_>>(),
            cluster.partition_sizes(),
        )
        .unwrap();
        assert!(split.tariffs[1] > 0, "tiny shard's tariff floor: {split:?}");
        assert_eq!(
            split.shares.iter().sum::<usize>(),
            split.resolved,
            "shares must sum to the resolved budget: {split:?}"
        );
        assert!(
            split.shares[1] >= split.tariffs[1],
            "share must never fall below the tariff floor: {split:?}"
        );
    }

    #[test]
    fn builder_rejects_zero_shards_and_session_rejects_zero_budget_steps() {
        let db = demo_db();
        assert!(ClusterHandle::builder(db.clone(), 0).build().is_err());
        let cluster = ClusterHandle::builder(db, 2).build().unwrap();
        let query = single_atom_query(cluster.schema());
        // mixed-unit schedules can resolve to decreasing budgets even though
        // the schedule itself cannot compare them — the session must catch it
        let decreasing =
            RefinementSchedule::from_specs(vec![ResourceSpec::Ratio(0.9), ResourceSpec::Tuples(2)])
                .unwrap();
        let err = cluster.session(&query, decreasing).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("must not decrease"), "{err}");
        // a capped policy can resolve every spec to zero — the session must
        // refuse rather than open shard sessions that may never fetch
        let capped = ClusterHandle::builder(demo_db(), 2)
            .budget_policy(BudgetPolicy::capped(0))
            .build()
            .unwrap();
        let query = single_atom_query(capped.schema());
        let err = capped
            .session(
                &query,
                RefinementSchedule::from_specs(vec![ResourceSpec::Ratio(0.5)]).unwrap(),
            )
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("zero budget"), "{err}");
    }
}
